//! **Fig 5** — spatial distribution of the vertical congestion metrics for
//! Face Detection: low at the device margins, high in the middle.

use crate::designs::{face_detection, Effort};
use rosetta_gen::face_detection::FdVariant;
use std::fmt::Write;

/// Fig 5 result: the per-row vertical-congestion profile.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Mean vertical congestion per device row (bottom to top).
    pub row_profile: Vec<f64>,
    /// Mean over the margin rows (bottom/top 15 %).
    pub margin_mean: f64,
    /// Mean over the central rows (middle 40 %).
    pub center_mean: f64,
}

impl Fig5 {
    /// The paper's observation: "lower congestion metrics are distributed at
    /// the margin of the device compared to the higher values in the middle".
    pub fn center_exceeds_margin(&self) -> bool {
        self.center_mean > self.margin_mean
    }

    /// Render as an ASCII bar chart (one bar per row band).
    pub fn render(&self) -> String {
        let mut out = String::from("FIG 5. VERTICAL CONGESTION BY DEVICE ROW\n");
        let max = self.row_profile.iter().copied().fold(1e-9, f64::max);
        let bands = 20usize;
        let per = self.row_profile.len().div_ceil(bands).max(1);
        for (b, chunk) in self.row_profile.chunks(per).enumerate() {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let width = ((mean / max) * 50.0).round() as usize;
            let _ = writeln!(
                out,
                "row {:>3}+ {:>7.2}% |{}",
                b * per,
                mean,
                "#".repeat(width)
            );
        }
        let _ = writeln!(
            out,
            "margin mean = {:.2}%, center mean = {:.2}%",
            self.margin_mean, self.center_mean
        );
        out
    }
}

/// Run the Fig 5 experiment.
pub fn run(effort: Effort) -> Fig5 {
    let flow = effort.flow();
    let (_, res) = flow
        .implement(&face_detection(FdVariant::Optimized))
        .expect("synthesis must succeed");
    let profile = res.congestion.row_profile(true);
    from_profile(profile)
}

/// Compute the margin/center statistics of a row profile.
pub fn from_profile(row_profile: Vec<f64>) -> Fig5 {
    let n = row_profile.len();
    let margin_n = (n as f64 * 0.15).round() as usize;
    let margin: Vec<f64> = row_profile[..margin_n]
        .iter()
        .chain(row_profile[n - margin_n..].iter())
        .copied()
        .collect();
    let c0 = (n as f64 * 0.3) as usize;
    let c1 = (n as f64 * 0.7) as usize;
    let center = &row_profile[c0..c1];
    Fig5 {
        margin_mean: margin.iter().sum::<f64>() / margin.len().max(1) as f64,
        center_mean: center.iter().sum::<f64>() / center.len().max(1) as f64,
        row_profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_statistics() {
        // A synthetic center-heavy profile.
        let profile: Vec<f64> = (0..100)
            .map(|y| {
                let d = (y as f64 - 50.0).abs();
                100.0 - d
            })
            .collect();
        let f = from_profile(profile);
        assert!(f.center_exceeds_margin());
        assert!(f.render().contains("FIG 5"));
    }

    #[test]
    fn fd_profile_is_center_heavy() {
        let f = run(Effort::Fast);
        assert_eq!(f.row_profile.len(), 120);
        assert!(
            f.center_exceeds_margin(),
            "center {:.2} vs margin {:.2}",
            f.center_mean,
            f.margin_mean
        );
    }
}
