//! **Table V** — important feature categories per congestion metric,
//! measured by GBRT split counts aggregated per category (the paper's
//! importance definition), excluding the trivial Bitwidth/Timing singletons
//! from the ranking just as the paper lists only the informative groups.
//!
//! Expected shape: #Resource/ΔTcs and Resource lead for every metric, with
//! Interconnection and Global following.

use crate::designs::Effort;
use congestion_core::dataset::Target;
use congestion_core::features::FeatureCategory;
use congestion_core::predict::{CongestionPredictor, ModelKind};
use congestion_core::CongestionDataset;
use std::fmt::Write;

/// Ranked categories for one target metric.
#[derive(Debug, Clone)]
pub struct CategoryRanking {
    /// Target name.
    pub target: String,
    /// `(category name, importance share)` in descending importance.
    pub ranking: Vec<(String, f64)>,
}

/// Table V result.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// One ranking per target (V, H, Avg).
    pub rankings: Vec<CategoryRanking>,
}

impl Table5 {
    /// The top-`k` category names for a target index.
    pub fn top(&self, target: usize, k: usize) -> Vec<&str> {
        self.rankings[target]
            .ranking
            .iter()
            .take(k)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "TABLE V. IMPORTANT FEATURE CATEGORIES");
        for r in &self.rankings {
            let _ = writeln!(out, "{}:", r.target);
            for (i, (name, share)) in r.ranking.iter().enumerate() {
                let _ = writeln!(out, "  {}. {:<20} {:>6.1}%", i + 1, name, share * 100.0);
            }
        }
        out
    }
}

/// Aggregate per-feature importance into per-category shares.
pub fn category_importance(importance: &[f64]) -> Vec<(FeatureCategory, f64)> {
    let mut by_cat: Vec<(FeatureCategory, f64)> = FeatureCategory::ALL
        .iter()
        .map(|&c| {
            let share: f64 = c.range().map(|i| importance[i]).sum();
            (c, share)
        })
        .collect();
    by_cat.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    by_cat
}

/// Run Table V on a prebuilt dataset.
pub fn run_on(dataset: &CongestionDataset, effort: Effort) -> Table5 {
    let opts = effort.train(false);
    let mut rankings = Vec::new();
    for target in Target::ALL {
        let p = CongestionPredictor::train(ModelKind::Gbrt, target, dataset, &opts);
        let importance = p
            .feature_importance()
            .expect("GBRT always reports importance");
        let ranking = category_importance(&importance)
            .into_iter()
            .filter(|(c, _)| {
                // The paper's table lists the informative multi-feature
                // groups; singleton categories are omitted.
                !matches!(c, FeatureCategory::Bitwidth | FeatureCategory::Timing)
            })
            .map(|(c, share)| {
                if c == FeatureCategory::Global {
                    // The paper annotates the Global row with its dominant
                    // subgroup: multiplexer vs memory statistics.
                    let g = c.range();
                    let mem: f64 = (g.end - 8..g.end - 4).map(|i| importance[i]).sum();
                    let mux: f64 = (g.end - 4..g.end).map(|i| importance[i]).sum();
                    let label = if mux >= mem {
                        "Global (Mux)"
                    } else {
                        "Global (Memory)"
                    };
                    (label.to_string(), share)
                } else {
                    (c.name().to_string(), share)
                }
            })
            .collect();
        rankings.push(CategoryRanking {
            target: target.name().to_string(),
            ranking,
        });
    }
    Table5 { rankings }
}

/// Build the dataset and run Table V.
pub fn run(effort: Effort) -> Table5 {
    let (_, ds) = crate::table3::run(effort);
    let filtered = congestion_core::filter::filter_marginal(&ds, &Default::default());
    run_on(&filtered.kept, effort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_aggregation_sums_ranges() {
        let mut imp = vec![0.0; congestion_core::FEATURE_COUNT];
        // Put all mass in the Resource range.
        for i in FeatureCategory::Resource.range() {
            imp[i] = 1.0 / FeatureCategory::Resource.range().len() as f64;
        }
        let by_cat = category_importance(&imp);
        assert_eq!(by_cat[0].0, FeatureCategory::Resource);
        assert!((by_cat[0].1 - 1.0).abs() < 1e-9);
        assert!(by_cat[1].1.abs() < 1e-12);
    }
}
