//! **Table IV** — congestion estimation accuracy: {Linear, ANN, GBRT} ×
//! {not filtering, filtering} × {Vertical, Horizontal, Avg} × {MAE, MedAE}.
//!
//! Protocol (paper §IV-A): 80/20 split, k-fold CV + grid search on the
//! training set only, metrics on the untouched test set.
//!
//! Expected shape: GBRT ≤ ANN ≤ Linear on every metric, and filtering
//! improves every model.

use crate::designs::Effort;
use congestion_core::dataset::Target;
use congestion_core::filter::{filter_marginal, FilterOptions};
use congestion_core::predict::{Accuracy, CongestionPredictor, ModelKind};
use congestion_core::CongestionDataset;
use std::fmt::Write;

/// One cell pair of the table.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Mean absolute error.
    pub mae: f64,
    /// Median absolute error.
    pub medae: f64,
}

/// Table IV result.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// `rows[filtering][model][target]`, with filtering 0 = off, 1 = on.
    pub rows: Vec<Vec<Vec<Cell>>>,
    /// Samples before / after filtering.
    pub samples: (usize, usize),
    /// Fraction removed by the filter.
    pub filtered_fraction: f64,
}

impl Table4 {
    /// The cell for (filtering, model, target).
    pub fn cell(&self, filtering: bool, model: ModelKind, target: Target) -> Cell {
        let f = filtering as usize;
        let m = ModelKind::ALL.iter().position(|&k| k == model).unwrap();
        let t = Target::ALL.iter().position(|&k| k == target).unwrap();
        self.rows[f][m][t]
    }

    /// Does GBRT win on every target (the paper's headline)?
    pub fn gbrt_wins(&self) -> bool {
        for f in 0..2 {
            for t in 0..Target::ALL.len() {
                let gbrt = self.rows[f][2][t].mae;
                if gbrt > self.rows[f][0][t].mae || gbrt > self.rows[f][1][t].mae {
                    return false;
                }
            }
        }
        true
    }

    /// Does filtering improve (or at least not hurt) every model on MAE?
    pub fn filtering_helps(&self) -> bool {
        for m in 0..ModelKind::ALL.len() {
            for t in 0..Target::ALL.len() {
                if self.rows[1][m][t].mae > self.rows[0][m][t].mae * 1.02 {
                    return false;
                }
            }
        }
        true
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE IV. CONGESTION ESTIMATION RESULTS ({} -> {} samples after filtering, {:.1}% removed)",
            self.samples.0,
            self.samples.1,
            self.filtered_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "{:<14} {:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "", "Model", "V MAE", "V MedAE", "H MAE", "H MedAE", "A MAE", "A MedAE"
        );
        for (fi, flabel) in [(0usize, "Not Filtering"), (1, "Filtering")] {
            for (mi, model) in ModelKind::ALL.iter().enumerate() {
                let r = &self.rows[fi][mi];
                let _ = writeln!(
                    out,
                    "{:<14} {:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                    if mi == 0 { flabel } else { "" },
                    model.name(),
                    r[0].mae,
                    r[0].medae,
                    r[1].mae,
                    r[1].medae,
                    r[2].mae,
                    r[2].medae
                );
            }
        }
        out
    }
}

/// Run the Table IV experiment on a prebuilt dataset.
pub fn run_on(dataset: &CongestionDataset, effort: Effort, grid_search: bool) -> Table4 {
    run_with(dataset, &effort.train(grid_search))
}

/// [`run_on`] with explicit training options — the entry point the
/// `experiments` CLI uses so `--gbrt-kernel` / `--gbrt-bins` reach the
/// fitted models.
pub fn run_with(
    dataset: &CongestionDataset,
    opts: &congestion_core::predict::TrainOptions,
) -> Table4 {
    let filtered = filter_marginal(dataset, &FilterOptions::default());
    let mut rows = Vec::new();
    for data in [dataset, &filtered.kept] {
        let (train, test) = data.split(0.2, 17);
        let mut per_model = Vec::new();
        for model in ModelKind::ALL {
            let mut per_target = Vec::new();
            for target in Target::ALL {
                let p = CongestionPredictor::train(model, target, &train, opts);
                let Accuracy { mae, medae } = p.evaluate(&test);
                per_target.push(Cell { mae, medae });
            }
            per_model.push(per_target);
        }
        rows.push(per_model);
    }
    Table4 {
        rows,
        samples: (dataset.len(), filtered.kept.len()),
        filtered_fraction: filtered.removed_fraction,
    }
}

/// Build the dataset from the training suite and run Table IV.
pub fn run(effort: Effort, grid_search: bool) -> Table4 {
    let (_, ds) = crate::table3::run(effort);
    run_on(&ds, effort, grid_search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion_core::features::FEATURE_COUNT;
    use congestion_core::Sample;
    use hls_ir::{FuncId, OpId, ReplicaTag};

    /// A synthetic dataset with learnable structure + marginal outliers.
    fn synthetic() -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..400usize {
            let a = (i % 11) as f64;
            let b = ((i * 3) % 17) as f64;
            let mut features = vec![0.0; FEATURE_COUNT];
            features[0] = a;
            features[2] = b;
            // A step term keeps the target far from linear — trees must win.
            let label = 40.0 + 4.0 * a + 0.3 * b * b + if b > 8.0 { 35.0 } else { 0.0 };
            let marginal = i % 29 == 0;
            ds.push(
                Sample {
                    design: "synthetic".into(),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: 1,
                    replica: Some(ReplicaTag {
                        group: (i / 8) as u32,
                        index: (i % 8) as u32,
                        total: 8,
                    }),
                    vertical: if marginal { 4.0 } else { label },
                    horizontal: if marginal { 3.0 } else { label * 0.8 },
                },
                &features,
            );
        }
        ds
    }

    #[test]
    fn table4_shape_on_synthetic_data() {
        let t = run_on(&synthetic(), Effort::Fast, false);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].len(), 3);
        assert_eq!(t.rows[0][0].len(), 3);
        assert!(t.samples.1 < t.samples.0, "filter removes outliers");
        // GBRT must beat Linear on the quadratic term (vertical target,
        // filtered).
        let gbrt = t.cell(true, ModelKind::Gbrt, Target::Vertical).mae;
        let lin = t.cell(true, ModelKind::Linear, Target::Vertical).mae;
        assert!(gbrt < lin, "gbrt {gbrt} vs linear {lin}");
        // Filtering must help GBRT.
        let unfiltered = t.cell(false, ModelKind::Gbrt, Target::Vertical).mae;
        assert!(
            gbrt <= unfiltered,
            "filtering helps: {gbrt} vs {unfiltered}"
        );
        let text = t.render();
        assert!(text.contains("Not Filtering"));
        assert!(text.contains("GBRT"));
    }
}
