//! Head-to-head placement-kernel benchmark: the delta-cost annealing
//! kernel against the reference full-recompute annealer it replaced, on
//! the in-tree designs. Produces the rows recorded in `BENCH_place.json`.

use crate::designs::Effort;
use fpga_fabric::place::{place, PlaceKernel, Placement, PlacerOptions};
use fpga_fabric::route::route;
use fpga_fabric::{Device, RouterOptions, RoutingUtilization};
use hls_ir::frontend::compile_named;
use hls_ir::Module;
use hls_synth::{HlsFlow, HlsOptions, RtlDesign};
use std::time::Instant;

/// One kernel's result on one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// Place-stage wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Final placement cost (weighted HPWL + density penalty).
    pub cost: f64,
    /// Moves proposed by the annealer.
    pub proposed: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// Net-bounding-box rescans (the delta kernel's O(degree) fallback).
    pub bbox_recomputes: u64,
    /// Tiles left over 100 % utilization after routing this placement with
    /// the default router.
    pub overflowed_tiles: usize,
}

/// Delta vs reference annealing on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceBenchRow {
    /// Design name.
    pub design: String,
    /// Placed cells.
    pub cells: usize,
    /// The delta-cost kernel (the default).
    pub delta: KernelRun,
    /// The reference full-recompute kernel.
    pub reference: KernelRun,
}

impl PlaceBenchRow {
    /// Place-stage speedup of the delta kernel over the reference kernel.
    pub fn speedup(&self) -> f64 {
        if self.delta.wall_ms > 0.0 {
            self.reference.wall_ms / self.delta.wall_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The benchmark corpus: name and MiniHLS source (or generated module).
fn corpus(effort: Effort) -> Vec<(String, Module)> {
    let src = |s: &str, n: &str| compile_named(s, n).expect("bench source must compile");
    let mut out = vec![
        (
            "mac16".to_string(),
            src(
                "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
                "mac16",
            ),
        ),
        (
            "unroll64".to_string(),
            src(
                "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
                "unroll64",
            ),
        ),
    ];
    if effort == Effort::Full {
        out.push((
            "wide256".to_string(),
            src(
                "int32 f(int32 a[256], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 256; i++) { s = s + a[i] * k; } return s; }",
                "wide256",
            ),
        ));
        out.push((
            "fd_opt".to_string(),
            rosetta_gen::face_detection::benchmark(
                rosetta_gen::face_detection::FdVariant::Optimized,
            )
            .build()
            .expect("face detection generator must compile"),
        ));
    }
    out
}

fn kernel_run(rtl: &RtlDesign, p: &Placement, wall_ms: f64, device: &Device) -> KernelRun {
    let routed = route(rtl, p, device, &RouterOptions::default());
    KernelRun {
        wall_ms,
        cost: p.cost,
        proposed: p.stats.proposed,
        accepted: p.stats.accepted,
        bbox_recomputes: p.stats.bbox_recomputes,
        overflowed_tiles: RoutingUtilization::new(&routed, device).overflowed_tiles,
    }
}

/// Place every corpus design with both kernels and time the place stage.
///
/// Both kernels get identical options apart from the kernel selector (same
/// seed, same moves-per-cell budget); the timed region is the `place` call
/// alone. Each placement is then routed with the default router so rows
/// also compare downstream overflow.
pub fn run(effort: Effort) -> Vec<PlaceBenchRow> {
    let device = Device::xc7z020();
    let base = match effort {
        Effort::Fast => PlacerOptions::fast(),
        Effort::Full => PlacerOptions::default(),
    };
    let mut rows = Vec::new();
    for (name, module) in corpus(effort) {
        let design = HlsFlow::new(HlsOptions::default())
            .run(&module)
            .expect("bench design must synthesize");
        let time = |kernel: PlaceKernel| {
            let opts = base.clone().with_kernel(kernel);
            let t = Instant::now();
            let p = place(&design.rtl, &device, &opts);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            (p, ms)
        };
        let (d, d_ms) = time(PlaceKernel::DeltaAnneal);
        let (r, r_ms) = time(PlaceKernel::ReferenceAnneal);
        debug_assert_eq!(d.pos.len(), r.pos.len());
        rows.push(PlaceBenchRow {
            design: name,
            cells: d.pos.len(),
            delta: kernel_run(&design.rtl, &d, d_ms, &device),
            reference: kernel_run(&design.rtl, &r, r_ms, &device),
        });
    }
    rows
}

/// Fold the rows into an [`obskit::MetricsSnapshot`] under the shared
/// `place_bench.<design>.<kernel>.<metric>` naming scheme. Deterministic
/// annealing counters become counters; wall-clock, final cost, and derived
/// speedup become gauges (gauges are excluded from `deterministic_digest`,
/// matching the timing-metric convention).
/// Corpus-wide place-stage speedup: total reference wall over total delta
/// wall (robust to sub-millisecond noise on the smallest designs).
pub fn total_speedup(rows: &[PlaceBenchRow]) -> f64 {
    let delta: f64 = rows.iter().map(|r| r.delta.wall_ms).sum();
    let reference: f64 = rows.iter().map(|r| r.reference.wall_ms).sum();
    if delta > 0.0 {
        reference / delta
    } else {
        f64::INFINITY
    }
}

pub fn to_metrics(rows: &[PlaceBenchRow]) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    reg.set_gauge("place_bench.total.speedup", total_speedup(rows));
    for r in rows {
        let base = format!("place_bench.{}", r.design);
        reg.inc(&format!("{base}.cells"), r.cells as u64);
        reg.set_gauge(&format!("{base}.speedup"), r.speedup());
        for (kernel, k) in [("delta", &r.delta), ("reference_anneal", &r.reference)] {
            reg.set_gauge(&format!("{base}.{kernel}.wall_ms"), k.wall_ms);
            reg.set_gauge(&format!("{base}.{kernel}.cost"), k.cost);
            reg.inc(&format!("{base}.{kernel}.proposed_moves"), k.proposed);
            reg.inc(&format!("{base}.{kernel}.accepted_moves"), k.accepted);
            reg.inc(
                &format!("{base}.{kernel}.bbox_recomputes"),
                k.bbox_recomputes,
            );
            reg.inc(
                &format!("{base}.{kernel}.overflowed_tiles"),
                k.overflowed_tiles as u64,
            );
        }
    }
    reg.into_snapshot()
}

/// Serialize the rows through the workspace-wide `obskit.metrics.v1` JSON
/// schema (the same format `hls-congest --metrics-out` writes), so
/// `BENCH_place.json` and pipeline metrics snapshots share tooling. The
/// meta block carries the active kernel stamps via
/// [`crate::artifact::bench_json`].
pub fn to_json(rows: &[PlaceBenchRow], effort: Effort) -> String {
    crate::artifact::bench_json("experiments place-bench", effort, &to_metrics(rows))
}

/// Human-readable table for stdout.
pub fn render(rows: &[PlaceBenchRow]) -> String {
    let mut out = String::from("PLACER KERNELS: DELTA-COST VS REFERENCE FULL-RECOMPUTE ANNEAL\n");
    out.push_str(&format!(
        "{:<10} {:>7} {:>12} {:>12} {:>14} {:>14} {:>8} {:>10} {:>10}\n",
        "design",
        "cells",
        "delta ms",
        "ref ms",
        "delta cost",
        "ref cost",
        "speedup",
        "delta over",
        "ref over"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>7} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>7.2}x {:>10} {:>10}\n",
            r.design,
            r.cells,
            r.delta.wall_ms,
            r.reference.wall_ms,
            r.delta.cost,
            r.reference.cost,
            r.speedup(),
            r.delta.overflowed_tiles,
            r.reference.overflowed_tiles,
        ));
    }
    out.push_str(&format!("total speedup: {:.2}x\n", total_speedup(rows)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bench_runs_and_delta_does_not_regress_quality() {
        let rows = run(Effort::Fast);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.cells > 0);
            assert!(r.delta.proposed > 0 && r.reference.proposed > 0);
            assert!(
                r.delta.cost <= r.reference.cost * 1.02,
                "{}: delta kernel must not regress final cost ({} vs {})",
                r.design,
                r.delta.cost,
                r.reference.cost
            );
            assert!(
                r.delta.overflowed_tiles <= r.reference.overflowed_tiles,
                "{}: delta kernel must not leave more routed overflow ({} vs {})",
                r.design,
                r.delta.overflowed_tiles,
                r.reference.overflowed_tiles
            );
        }
    }

    fn sample_rows() -> Vec<PlaceBenchRow> {
        vec![PlaceBenchRow {
            design: "d".into(),
            cells: 5,
            delta: KernelRun {
                wall_ms: 1.0,
                cost: 90.0,
                proposed: 100,
                accepted: 40,
                bbox_recomputes: 7,
                overflowed_tiles: 0,
            },
            reference: KernelRun {
                wall_ms: 4.0,
                cost: 100.0,
                proposed: 100,
                accepted: 42,
                bbox_recomputes: 0,
                overflowed_tiles: 1,
            },
        }]
    }

    #[test]
    fn metrics_follow_shared_naming_scheme() {
        let snap = to_metrics(&sample_rows());
        assert_eq!(snap.counters["place_bench.d.cells"], 5);
        assert_eq!(snap.counters["place_bench.d.delta.proposed_moves"], 100);
        assert_eq!(
            snap.counters["place_bench.d.reference_anneal.accepted_moves"],
            42
        );
        assert_eq!(snap.gauges["place_bench.d.speedup"], 4.0);
        assert_eq!(snap.gauges["place_bench.d.delta.cost"], 90.0);
    }

    #[test]
    fn json_uses_obskit_metrics_schema() {
        let j = to_json(&sample_rows(), Effort::Fast);
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""), "{j}");
        assert!(j.contains("\"tool\": \"experiments place-bench\""), "{j}");
        assert!(j.contains("place_bench.d.delta.proposed_moves"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
