//! Shared design construction and flow configuration for all experiments.

use congestion_core::pipeline::CongestionFlow;
use fpga_fabric::par::ParOptions;
use hls_ir::Module;
use rosetta_gen::{face_detection::FdVariant, suite, Preset};

/// Experiment effort level: `Fast` for tests/benches, `Full` for the
/// numbers recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced placer effort and small models.
    Fast,
    /// Paper-protocol effort.
    Full,
}

impl Effort {
    /// Canonical meta/ledger spelling (`fast` | `full`).
    pub fn name(&self) -> &'static str {
        match self {
            Effort::Fast => "fast",
            Effort::Full => "full",
        }
    }

    /// The implementation flow for this effort.
    pub fn flow(&self) -> CongestionFlow {
        let mut flow = CongestionFlow::new();
        flow.par = match self {
            Effort::Fast => ParOptions::fast(),
            Effort::Full => ParOptions::default(),
        };
        flow
    }

    /// Training options for this effort.
    pub fn train(&self, grid_search: bool) -> congestion_core::predict::TrainOptions {
        match self {
            Effort::Fast => congestion_core::predict::TrainOptions {
                grid_search: false,
                ..congestion_core::predict::TrainOptions::fast()
            },
            Effort::Full => congestion_core::predict::TrainOptions {
                grid_search,
                cv_folds: 10,
                ..Default::default()
            },
        }
    }
}

/// Compile a Face Detection variant.
///
/// # Panics
/// Panics if the generator emits invalid MiniHLS (a bug).
pub fn face_detection(variant: FdVariant) -> Module {
    rosetta_gen::face_detection::benchmark(variant)
        .build()
        .expect("face detection generator must compile")
}

/// The paper's three training-suite groups in the optimized configuration.
///
/// # Panics
/// Panics if a generator emits invalid MiniHLS (a bug).
pub fn training_suite() -> Vec<Module> {
    suite::groups(Preset::Optimized)
        .into_iter()
        .map(|b| b.build().expect("suite generator must compile"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_three_groups() {
        let s = training_suite();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|m| m.total_ops() > 100));
    }

    #[test]
    fn efforts_differ_in_placer_moves() {
        let fast = Effort::Fast.flow();
        let full = Effort::Full.flow();
        assert!(fast.par.placer.moves_per_cell < full.par.placer.moves_per_cell);
    }
}
