//! `congestd` serving benchmark: in-process load generation against the
//! real [`servekit::Server`]. Produces the rows recorded in
//! `BENCH_serve.json`.
//!
//! Two phases:
//!
//! 1. **Throughput** — a burst of batched predict requests against an
//!    unconstrained queue; reports p50/p99 request latency (from the
//!    server's own DDSketch) and predictions/second.
//! 2. **2× overload** — a single worker whose per-request service time is
//!    pinned by an injected `serve.predict` delay, driven by a paced
//!    arrival loop at twice the service rate against a small queue. Under
//!    sustained 2× overload the shed-oldest policy must shed roughly half
//!    the offered load — and *every* submitted request must still receive
//!    exactly one typed reply (`ok` or `overloaded`, never a stall).
//!
//! The model under test is a real GBRT ensemble fitted on a synthetic
//! 302-wide dataset, so the predict path exercises the compiled flat-node
//! inference kernel, not a stub.

use crate::designs::Effort;
use faultkit::{serve_stages, FaultKind, FaultPlan, FaultRule};
use mlkit::{GbrtOptions, GbrtRegressor, Matrix, Regressor};
use servekit::{ModelArtifact, ReplyStatus, Request, ServeConfig, Server};
use std::time::{Duration, Instant};

/// Results of the paced 2× overload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRun {
    /// Requests submitted by the load generator.
    pub submitted: usize,
    /// `overloaded` replies (shed-oldest victims).
    pub shed: usize,
    /// `ok` replies.
    pub ok: usize,
    /// Any other typed reply (degraded / deadline / error).
    pub other: usize,
    /// Injected per-request service time, milliseconds.
    pub service_ms: u64,
    /// Admission queue capacity.
    pub queue_capacity: usize,
}

impl OverloadRun {
    /// Fraction of the offered load that was shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }

    /// True when every submitted request received exactly one typed reply.
    pub fn every_request_answered(&self) -> bool {
        self.shed + self.ok + self.other == self.submitted
    }
}

/// The full serve-bench result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Throughput-phase request count.
    pub requests: usize,
    /// Feature rows per predict request.
    pub batch_rows: usize,
    /// Feature columns (the paper's 302).
    pub features: usize,
    /// Boosting stages per target ensemble.
    pub trees: usize,
    /// Median request latency, milliseconds (server-side sketch).
    pub p50_ms: f64,
    /// Tail request latency, milliseconds.
    pub p99_ms: f64,
    /// Throughput-phase wall clock, milliseconds.
    pub wall_ms: f64,
    /// Per-op predictions per second ((requests × batch) / wall).
    pub predictions_per_sec: f64,
    /// The overload phase.
    pub overload: OverloadRun,
}

/// Deterministic synthetic feature matrix + labels (no RNG dependency:
/// a splitmix-style integer mix keyed by (row, col)).
fn synthetic(rows: usize, cols: usize) -> (Matrix, Vec<f64>) {
    let mix = |a: u64, b: u64| {
        let mut z = a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z ^= z >> 30;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z
    };
    let mut x = Matrix::with_cols(cols);
    let mut y = Vec::with_capacity(rows);
    let mut row = vec![0.0f64; cols];
    for i in 0..rows {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (mix(i as u64, j as u64) % 1000) as f64 / 100.0;
        }
        // Label mixes a linear term, an interaction, and a threshold —
        // enough structure that the GBRT grows real trees.
        y.push(3.0 * row[1] + 0.8 * row[5] * row[9] + if row[40] > 5.0 { 12.0 } else { 0.0 });
        x.push_row(&row);
    }
    (x, y)
}

fn fitted_artifact(train_rows: usize, cols: usize, trees: usize) -> ModelArtifact {
    let (x, y) = synthetic(train_rows, cols);
    let fit = |seed_shift: f64| {
        let shifted: Vec<f64> = y.iter().map(|v| v * seed_shift).collect();
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: trees,
            workers: 1,
            ..Default::default()
        });
        m.fit(&x, &shifted);
        m.compiled().clone()
    };
    ModelArtifact {
        name: "gbrt-bench".into(),
        version: 1,
        feature_count: cols,
        trained_on: "synthetic".into(),
        vertical: fit(1.0),
        horizontal: fit(0.5),
    }
}

/// Run the serve benchmark at `effort`.
pub fn run(effort: Effort) -> ServeBench {
    let cols = congestion_core::features::FEATURE_COUNT;
    let (train_rows, trees, requests, batch_rows, overload_requests) = match effort {
        Effort::Full => (600, 120, 120, 64, 240),
        Effort::Fast => (150, 20, 24, 16, 60),
    };
    let artifact = fitted_artifact(train_rows, cols, trees);
    let (batch_x, _) = synthetic(batch_rows, cols);
    let batch: Vec<Vec<f64>> = batch_x.iter_rows().map(<[f64]>::to_vec).collect();

    // Phase 1: throughput. Queue sized to the burst, two workers.
    let mut cfg = ServeConfig {
        queue_capacity: requests.max(8),
        workers: 2,
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    let (server, report) = Server::start(cfg, Some(artifact.clone()), None).expect("start");
    assert!(report.install_error.is_none(), "{report:?}");
    let started = Instant::now();
    let rxs: Vec<_> = (0..requests)
        .map(|i| server.submit(Request::predict(i as u64, batch.clone())))
        .collect();
    for rx in rxs {
        let reply = rx.recv().expect("throughput reply");
        assert_eq!(reply.status, ReplyStatus::Ok, "{reply:?}");
    }
    let wall = started.elapsed();
    let snap = server.metrics();
    let gauge = |k: &str| snap.gauges.get(k).copied().unwrap_or(0.0);
    let (p50_ms, p99_ms) = (gauge("serve.latency_ms.p50"), gauge("serve.latency_ms.p99"));
    server.shutdown();
    let predictions_per_sec = (requests * batch_rows) as f64 / wall.as_secs_f64().max(1e-9);

    // Phase 2: 2× overload. One worker, service time pinned by an injected
    // delay at serve.predict, arrivals paced at twice the service rate.
    let service_ms = 4u64;
    let queue_capacity = 8usize;
    let mut cfg = ServeConfig {
        queue_capacity,
        workers: 1,
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    cfg.plan = Some(std::sync::Arc::new(
        FaultPlan::new(7).with_rule(
            FaultRule::once(
                "*",
                serve_stages::PREDICT,
                FaultKind::Delay(Duration::from_millis(service_ms)),
            )
            .for_attempts(u32::MAX),
        ),
    ));
    let (server, _) = Server::start(cfg, Some(artifact), None).expect("start overload");
    let interval = Duration::from_millis(service_ms) / 2;
    let small_batch: Vec<Vec<f64>> = batch.iter().take(4).cloned().collect();
    let rxs: Vec<_> = (0..overload_requests)
        .map(|i| {
            let rx = server.submit(Request::predict(i as u64, small_batch.clone()));
            std::thread::sleep(interval);
            rx
        })
        .collect();
    let mut overload = OverloadRun {
        submitted: overload_requests,
        shed: 0,
        ok: 0,
        other: 0,
        service_ms,
        queue_capacity,
    };
    // An unanswered request fails every_request_answered below.
    for rx in rxs {
        if let Ok(reply) = rx.recv_timeout(Duration::from_secs(30)) {
            match reply.status {
                ReplyStatus::Overloaded => overload.shed += 1,
                ReplyStatus::Ok => overload.ok += 1,
                _ => overload.other += 1,
            }
        }
    }
    server.shutdown();

    ServeBench {
        requests,
        batch_rows,
        features: cols,
        trees,
        p50_ms,
        p99_ms,
        wall_ms: wall.as_secs_f64() * 1e3,
        predictions_per_sec,
        overload,
    }
}

/// Flatten into the `obskit.metrics.v1` counter/gauge namespace.
pub fn to_metrics(b: &ServeBench) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    reg.inc("serve_bench.throughput.requests", b.requests as u64);
    reg.inc(
        "serve_bench.throughput.predictions",
        (b.requests * b.batch_rows) as u64,
    );
    reg.inc("serve_bench.model.features", b.features as u64);
    reg.inc("serve_bench.model.trees", b.trees as u64);
    reg.set_gauge("serve_bench.throughput.p50_ms", b.p50_ms);
    reg.set_gauge("serve_bench.throughput.p99_ms", b.p99_ms);
    reg.set_gauge("serve_bench.throughput.wall_ms", b.wall_ms);
    reg.set_gauge(
        "serve_bench.throughput.predictions_per_sec",
        b.predictions_per_sec,
    );
    reg.inc(
        "serve_bench.overload.submitted",
        b.overload.submitted as u64,
    );
    reg.inc("serve_bench.overload.shed", b.overload.shed as u64);
    reg.inc("serve_bench.overload.ok", b.overload.ok as u64);
    reg.inc(
        "serve_bench.overload.answered",
        (b.overload.shed + b.overload.ok + b.overload.other) as u64,
    );
    reg.inc(
        "serve_bench.overload.every_request_answered",
        u64::from(b.overload.every_request_answered()),
    );
    reg.set_gauge("serve_bench.overload.shed_rate", b.overload.shed_rate());
    reg.inc("serve_bench.overload.service_ms", b.overload.service_ms);
    reg.inc(
        "serve_bench.overload.queue_capacity",
        b.overload.queue_capacity as u64,
    );
    reg.into_snapshot()
}

/// Serialize through the canonical bench-artifact writer schema.
pub fn to_json(b: &ServeBench, effort: Effort) -> String {
    crate::artifact::bench_json("experiments serve-bench", effort, &to_metrics(b))
}

/// Human-readable report.
pub fn render(b: &ServeBench) -> String {
    let mut out = String::from("SERVE BENCH (congestd, in-process)\n");
    out.push_str(&format!(
        "  throughput: {} requests x {} rows ({} features, {} trees/target)\n",
        b.requests, b.batch_rows, b.features, b.trees
    ));
    out.push_str(&format!(
        "    p50 {:.2} ms | p99 {:.2} ms | {:.0} predictions/s ({:.0} ms wall)\n",
        b.p50_ms, b.p99_ms, b.predictions_per_sec, b.wall_ms
    ));
    out.push_str(&format!(
        "  2x overload: {} submitted at {} ms service / {} queue -> {} ok, {} shed, {} other\n",
        b.overload.submitted,
        b.overload.service_ms,
        b.overload.queue_capacity,
        b.overload.ok,
        b.overload.shed,
        b.overload.other
    ));
    out.push_str(&format!(
        "    shed rate {:.2} | every request answered: {}\n",
        b.overload.shed_rate(),
        b.overload.every_request_answered()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_serve_bench_sheds_under_overload_and_answers_everything() {
        let b = run(Effort::Fast);
        assert!(b.predictions_per_sec > 0.0);
        assert!(b.p99_ms >= b.p50_ms);
        assert!(
            b.overload.every_request_answered(),
            "no request may be dropped without a typed reply: {:?}",
            b.overload
        );
        assert!(
            b.overload.shed > 0,
            "2x overload must shed: {:?}",
            b.overload
        );
        let snap = to_metrics(&b);
        assert_eq!(
            snap.counters["serve_bench.overload.every_request_answered"],
            1
        );
        let json = to_json(&b, Effort::Fast);
        assert!(json.contains("\"schema\": \"obskit.metrics.v1\""));
        assert!(json.contains("serve_bench.overload.shed_rate"));
    }
}
