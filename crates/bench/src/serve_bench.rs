//! `congestd` serving benchmark: in-process load generation against the
//! real [`servekit::Server`]. Produces the rows recorded in
//! `BENCH_serve.json`.
//!
//! Four phases:
//!
//! 1. **Throughput** — a burst of batched predict requests against an
//!    unconstrained queue; reports p50/p99 request latency (from the
//!    server's own DDSketch) and predictions/second.
//! 2. **Coalescing** — the same saturated burst of single-row requests
//!    drained twice, with micro-batch coalescing off (`batch_max_rows=1`)
//!    and on. Workers are held on a [`WorkGate`] until every request is
//!    queued, so both runs drain an identical queue; the phase reports
//!    the per-request vs merged `predict_into` throughput ratio and
//!    asserts the replies are **bitwise identical**. This phase serves a
//!    deliberately light ensemble: coalescing amortizes *dispatch*
//!    overhead (supervision, registry lock, metrics, reply channel), so
//!    the model must not be so heavy that predict compute — identical
//!    per row in both runs — drowns the quantity under test.
//! 3. **Feature cache** — repeated `source` requests over a small design
//!    set, then a hot swap: reports `serve.cache.*` hit/miss accounting,
//!    the swap-invalidation count, and pins hit replies bit-for-bit to
//!    their miss-path twins.
//! 4. **2× overload** — a virtual-clock trace player: arrivals and drains
//!    alternate in lockstep (two arrivals per released drain permit, no
//!    wall-clock sleeps), so the shed set reproduces
//!    [`servekit::shed_plan`] *exactly* and the recorded shed rate is a
//!    pure function of (trace, queue capacity) — it cannot flake on a
//!    slow runner. Every submitted request must still receive exactly one
//!    typed reply (`ok` or `overloaded`, never a stall).
//!
//! The model under test is a real GBRT ensemble fitted on a synthetic
//! 302-wide dataset, so the predict path exercises the compiled flat-node
//! inference kernel, not a stub.

use crate::designs::Effort;
use mlkit::{GbrtOptions, GbrtRegressor, Matrix, Regressor};
use servekit::{
    coalesce_plan, shed_plan, ModelArtifact, Reply, ReplyStatus, Request, RequestBody, ServeConfig,
    Server, SourceExtractor, TraceStep, WorkGate,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Results of the virtual-clock 2× overload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRun {
    /// Requests submitted by the trace player.
    pub submitted: usize,
    /// `overloaded` replies (shed-oldest victims).
    pub shed: usize,
    /// `ok` replies.
    pub ok: usize,
    /// Any other typed reply (degraded / deadline / error).
    pub other: usize,
    /// Trace steps played (two arrivals, one drain each).
    pub steps: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// True when the live shed id set equals `shed_plan(capacity, trace)`.
    pub matches_plan: bool,
}

impl OverloadRun {
    /// Fraction of the offered load that was shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }

    /// True when every submitted request received exactly one typed reply.
    pub fn every_request_answered(&self) -> bool {
        self.shed + self.ok + self.other == self.submitted
    }
}

/// Results of the coalescing comparison phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalesceRun {
    /// Single-row requests drained per run.
    pub requests: usize,
    /// Row budget per micro-batch in the batched run.
    pub batch_budget_rows: usize,
    /// Multi-request batches the batched run formed.
    pub batches_formed: u64,
    /// Drain throughput with coalescing off, predictions/second.
    pub unbatched_pps: f64,
    /// Drain throughput with coalescing on, predictions/second.
    pub batched_pps: f64,
    /// True when every batched reply is bit-for-bit the unbatched reply.
    pub identical: bool,
}

impl CoalesceRun {
    /// Batched over unbatched throughput.
    pub fn speedup(&self) -> f64 {
        if self.unbatched_pps <= 0.0 {
            return 0.0;
        }
        self.batched_pps / self.unbatched_pps
    }
}

/// Results of the feature-cache phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRun {
    /// Distinct designs in the request mix.
    pub designs: usize,
    /// `source` requests issued (pre-swap).
    pub requests: usize,
    /// `serve.cache.*` counters at shutdown.
    pub lookups: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Entries dropped by the hot swap.
    pub invalidations: u64,
    /// True when hit replies matched their miss-path twins bit-for-bit.
    pub identical: bool,
}

impl CacheRun {
    /// Hits over lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }
}

/// The full serve-bench result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Throughput-phase request count.
    pub requests: usize,
    /// Feature rows per predict request.
    pub batch_rows: usize,
    /// Feature columns (the paper's 302).
    pub features: usize,
    /// Boosting stages per target ensemble.
    pub trees: usize,
    /// Median request latency, milliseconds (server-side sketch).
    pub p50_ms: f64,
    /// Tail request latency, milliseconds.
    pub p99_ms: f64,
    /// Throughput-phase wall clock, milliseconds.
    pub wall_ms: f64,
    /// Per-op predictions per second ((requests × batch) / wall).
    pub predictions_per_sec: f64,
    /// The coalescing comparison phase.
    pub coalesce: CoalesceRun,
    /// The feature-cache phase.
    pub cache: CacheRun,
    /// The overload phase.
    pub overload: OverloadRun,
}

/// Deterministic synthetic feature matrix + labels (no RNG dependency:
/// a splitmix-style integer mix keyed by (row, col)).
fn synthetic(rows: usize, cols: usize) -> (Matrix, Vec<f64>) {
    let mix = |a: u64, b: u64| {
        let mut z = a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z ^= z >> 30;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z
    };
    let mut x = Matrix::with_cols(cols);
    let mut y = Vec::with_capacity(rows);
    let mut row = vec![0.0f64; cols];
    for i in 0..rows {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (mix(i as u64, j as u64) % 1000) as f64 / 100.0;
        }
        // Label mixes a linear term, an interaction, and a threshold —
        // enough structure that the GBRT grows real trees.
        y.push(3.0 * row[1] + 0.8 * row[5] * row[9] + if row[40] > 5.0 { 12.0 } else { 0.0 });
        x.push_row(&row);
    }
    (x, y)
}

fn fitted_artifact(train_rows: usize, cols: usize, trees: usize) -> ModelArtifact {
    let (x, y) = synthetic(train_rows, cols);
    let fit = |seed_shift: f64| {
        let shifted: Vec<f64> = y.iter().map(|v| v * seed_shift).collect();
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: trees,
            workers: 1,
            ..Default::default()
        });
        m.fit(&x, &shifted);
        m.compiled().clone()
    };
    ModelArtifact {
        name: "gbrt-bench".into(),
        version: 1,
        feature_count: cols,
        trained_on: "synthetic".into(),
        vertical: fit(1.0),
        horizontal: fit(0.5),
    }
}

fn reply_bits(r: &Reply) -> (u64, ReplyStatus, Vec<u64>, Vec<u64>) {
    (
        r.id,
        r.status,
        r.vertical.iter().map(|v| v.to_bits()).collect(),
        r.horizontal.iter().map(|v| v.to_bits()).collect(),
    )
}

/// Drain `reqs` through a one-worker server whose drain is held on a
/// [`WorkGate`] until everything is queued, then measure wall time from
/// gate-open to last reply. Returns (predictions/sec, replies in id
/// order, multi-request batches formed).
fn gated_drain(
    artifact: &ModelArtifact,
    cols: usize,
    batch_max_rows: usize,
    reqs: &[Request],
) -> (f64, Vec<Reply>, u64) {
    let gate = Arc::new(WorkGate::closed());
    let mut cfg = ServeConfig {
        queue_capacity: reqs.len().max(8),
        workers: 1,
        batch_max_rows,
        pace_gate: Some(gate.clone()),
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    let (server, report) = Server::start(cfg, Some(artifact.clone()), None).expect("start drain");
    assert!(report.install_error.is_none(), "{report:?}");
    let rxs: Vec<_> = reqs.iter().map(|r| server.submit(r.clone())).collect();
    let started = Instant::now();
    gate.open();
    let mut replies: Vec<Reply> = rxs
        .into_iter()
        .map(|rx| rx.recv().expect("drain reply"))
        .collect();
    let wall = started.elapsed();
    let summary = server.shutdown();
    replies.sort_by_key(|r| r.id);
    let rows: usize = reqs
        .iter()
        .map(|r| match &r.body {
            RequestBody::Predict { rows } => rows.len(),
            _ => 0,
        })
        .sum();
    (
        rows as f64 / wall.as_secs_f64().max(1e-9),
        replies,
        summary.metrics.batches,
    )
}

/// Phase 2: identical saturated queues drained with coalescing off/on.
fn coalesce_phase(artifact: &ModelArtifact, cols: usize, requests: usize) -> CoalesceRun {
    let budget = 256usize;
    let (x, _) = synthetic(requests, cols);
    let reqs: Vec<Request> = x
        .iter_rows()
        .enumerate()
        .map(|(i, row)| Request::predict(i as u64, vec![row.to_vec()]))
        .collect();
    let (unbatched_pps, base, base_batches) = gated_drain(artifact, cols, 1, &reqs);
    assert_eq!(base_batches, 0, "budget 1 must never coalesce");
    let (batched_pps, merged, batches_formed) = gated_drain(artifact, cols, budget, &reqs);
    // The whole queue is present at drain time, so the live partition is
    // the coalesce_plan partition: all-singleton weights, fixed budget.
    let plan = coalesce_plan(budget, &vec![1usize; requests]);
    assert_eq!(
        batches_formed,
        plan.iter().filter(|b| b.len() > 1).count() as u64,
        "live batch partition must match coalesce_plan"
    );
    let identical = base.len() == merged.len()
        && base
            .iter()
            .zip(&merged)
            .all(|(a, b)| reply_bits(a) == reply_bits(b));
    CoalesceRun {
        requests,
        batch_budget_rows: budget,
        batches_formed,
        unbatched_pps,
        batched_pps,
        identical,
    }
}

/// Phase 3: repeated `source` requests + a hot swap. The extractor is a
/// synthetic stand-in (deterministic rows per design) — the cache sits in
/// front of it exactly as it would in front of MiniHLS extraction.
fn cache_phase(artifact: &ModelArtifact, cols: usize, designs: usize, requests: usize) -> CacheRun {
    let extractor: Arc<SourceExtractor> = Arc::new(move |name: &str, _text: &str| {
        // Rows keyed off the design name so every design answers
        // differently and a stale entry would be visible.
        let seed = name.bytes().map(u64::from).sum::<u64>() as usize;
        let (x, _) = synthetic(4 + seed % 3, cols);
        let rows: Vec<Vec<f64>> = x.iter_rows().map(<[f64]>::to_vec).collect();
        let lines = (1..=rows.len() as u32).collect();
        Ok((rows, lines))
    });
    let mut cfg = ServeConfig {
        queue_capacity: requests.max(8),
        workers: 1,
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    let (server, _) = Server::start(cfg, Some(artifact.clone()), Some(extractor)).expect("start");
    let src = |id: u64, d: usize| Request {
        id,
        deadline_ms: None,
        body: RequestBody::Source {
            name: format!("design-{d}"),
            text: format!("// synthetic design {d}"),
        },
    };
    // Round-robin over the design set: first pass misses, rest hit.
    let mut first_reply: Vec<Option<Reply>> = vec![None; designs];
    let mut identical = true;
    for i in 0..requests {
        let d = i % designs;
        let reply = server.call(src(i as u64, d));
        assert_eq!(reply.status, ReplyStatus::Ok, "{reply:?}");
        match &first_reply[d] {
            None => first_reply[d] = Some(reply),
            Some(first) => {
                let (_, s, v, h) = reply_bits(&reply);
                let (_, fs, fv, fh) = reply_bits(first);
                identical &= s == fs && v == fv && h == fh;
            }
        }
    }
    // Hot swap: bumps the model epoch, must clear the cache.
    let dir = std::env::temp_dir().join(format!("serve-bench-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let mut v2 = artifact.clone();
    v2.version = 2;
    let path = dir.join("v2.json");
    v2.save(&path).expect("save v2");
    let swap = server.call(Request {
        id: (requests + 1) as u64,
        deadline_ms: None,
        body: RequestBody::Swap {
            path: path.to_string_lossy().into_owned(),
        },
    });
    assert_eq!(swap.status, ReplyStatus::Ok, "{swap:?}");
    // Post-swap re-request: must re-extract (miss), answered by v2.
    let post = server.call(src((requests + 2) as u64, 0));
    assert_eq!(post.model, v2.display_name(), "{post:?}");
    assert_eq!(
        post.info.get("cache").map(String::as_str),
        Some("miss"),
        "swap must invalidate the cache"
    );
    let stats = server.cache_stats();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(stats.hits + stats.misses, stats.lookups, "{stats:?}");
    CacheRun {
        designs,
        requests,
        lookups: stats.lookups,
        hits: stats.hits,
        misses: stats.misses,
        invalidations: stats.invalidations,
        identical,
    }
}

/// Phase 4: the virtual-clock 2× overload player. Each step pushes two
/// arrivals (shed decided instantly at admission), then releases exactly
/// one drain permit and waits for that completion — completions, not
/// wall-clock sleeps, are the clock. The resulting shed set is
/// `shed_plan(capacity, trace)` verbatim.
fn overload_phase(artifact: &ModelArtifact, cols: usize, total: usize) -> OverloadRun {
    let queue_capacity = 8usize;
    let steps = total / 2;
    let gate = Arc::new(WorkGate::closed());
    let mut cfg = ServeConfig {
        queue_capacity,
        workers: 1,
        batch_max_rows: 1, // per-request drain: one permit, one pop
        pace_gate: Some(gate.clone()),
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    let (server, _) = Server::start(cfg, Some(artifact.clone()), None).expect("start overload");
    let (x, _) = synthetic(4, cols);
    let small_batch: Vec<Vec<f64>> = x.iter_rows().map(<[f64]>::to_vec).collect();
    let mut rxs = Vec::with_capacity(total);
    let mut drained = 0u64;
    for _ in 0..steps {
        for _ in 0..2 {
            let id = rxs.len() as u64;
            rxs.push(server.submit(Request::predict(id, small_batch.clone())));
        }
        gate.release(1);
        drained += 1;
        // Completion-paced, not time-paced: wait until the worker has
        // consumed the permit (the polling sleep only throttles the
        // metric reads; it cannot change the shed partition).
        while server
            .metrics()
            .counters
            .get("serve.completed")
            .copied()
            .unwrap_or(0)
            < drained
        {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    gate.open(); // shutdown drains the remainder
    let mut shed_ids = Vec::new();
    let mut overload = OverloadRun {
        submitted: total,
        shed: 0,
        ok: 0,
        other: 0,
        steps,
        queue_capacity,
        matches_plan: false,
    };
    for (id, rx) in rxs.into_iter().enumerate() {
        // An unanswered request fails every_request_answered below.
        if let Ok(reply) = rx.recv_timeout(Duration::from_secs(30)) {
            match reply.status {
                ReplyStatus::Overloaded => {
                    overload.shed += 1;
                    shed_ids.push(id as u64);
                }
                ReplyStatus::Ok => overload.ok += 1,
                _ => overload.other += 1,
            }
        }
    }
    server.shutdown();
    let trace = vec![
        TraceStep {
            arrivals: 2,
            drains: 1,
        };
        steps
    ];
    let (_, planned_shed) = shed_plan(queue_capacity, &trace);
    overload.matches_plan = shed_ids == planned_shed;
    overload
}

/// Run the serve benchmark at `effort`.
pub fn run(effort: Effort) -> ServeBench {
    let cols = congestion_core::features::FEATURE_COUNT;
    let (train_rows, trees, requests, batch_rows, coalesce_requests, overload_requests) =
        match effort {
            Effort::Full => (600, 120, 120, 64, 1024, 240),
            Effort::Fast => (150, 20, 24, 16, 128, 60),
        };
    let artifact = fitted_artifact(train_rows, cols, trees);
    let (batch_x, _) = synthetic(batch_rows, cols);
    let batch: Vec<Vec<f64>> = batch_x.iter_rows().map(<[f64]>::to_vec).collect();

    // Phase 1: throughput. Queue sized to the burst, two workers.
    let mut cfg = ServeConfig {
        queue_capacity: requests.max(8),
        workers: 2,
        ..Default::default()
    };
    cfg.gate.expected_features = cols;
    let (server, report) = Server::start(cfg, Some(artifact.clone()), None).expect("start");
    assert!(report.install_error.is_none(), "{report:?}");
    let started = Instant::now();
    let rxs: Vec<_> = (0..requests)
        .map(|i| server.submit(Request::predict(i as u64, batch.clone())))
        .collect();
    for rx in rxs {
        let reply = rx.recv().expect("throughput reply");
        assert_eq!(reply.status, ReplyStatus::Ok, "{reply:?}");
    }
    let wall = started.elapsed();
    let snap = server.metrics();
    let gauge = |k: &str| snap.gauges.get(k).copied().unwrap_or(0.0);
    let (p50_ms, p99_ms) = (gauge("serve.latency_ms.p50"), gauge("serve.latency_ms.p99"));
    server.shutdown();
    let predictions_per_sec = (requests * batch_rows) as f64 / wall.as_secs_f64().max(1e-9);

    // A light ensemble for the coalescing comparison — see the module
    // docs: the phase measures dispatch-overhead amortization, and both
    // runs pay the identical per-row predict cost regardless of size.
    let light = fitted_artifact(train_rows.min(200), cols, 8);
    let coalesce = coalesce_phase(&light, cols, coalesce_requests);
    let (cache_designs, cache_requests) = match effort {
        Effort::Full => (8, 64),
        Effort::Fast => (4, 16),
    };
    let cache = cache_phase(&artifact, cols, cache_designs, cache_requests);
    let overload = overload_phase(&artifact, cols, overload_requests);

    ServeBench {
        requests,
        batch_rows,
        features: cols,
        trees,
        p50_ms,
        p99_ms,
        wall_ms: wall.as_secs_f64() * 1e3,
        predictions_per_sec,
        coalesce,
        cache,
        overload,
    }
}

/// Flatten into the `obskit.metrics.v1` counter/gauge namespace.
pub fn to_metrics(b: &ServeBench) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    reg.inc("serve_bench.throughput.requests", b.requests as u64);
    reg.inc(
        "serve_bench.throughput.predictions",
        (b.requests * b.batch_rows) as u64,
    );
    reg.inc("serve_bench.model.features", b.features as u64);
    reg.inc("serve_bench.model.trees", b.trees as u64);
    reg.set_gauge("serve_bench.throughput.p50_ms", b.p50_ms);
    reg.set_gauge("serve_bench.throughput.p99_ms", b.p99_ms);
    reg.set_gauge("serve_bench.throughput.wall_ms", b.wall_ms);
    reg.set_gauge(
        "serve_bench.throughput.predictions_per_sec",
        b.predictions_per_sec,
    );
    reg.inc("serve_bench.coalesce.requests", b.coalesce.requests as u64);
    reg.inc(
        "serve_bench.coalesce.batch_budget_rows",
        b.coalesce.batch_budget_rows as u64,
    );
    reg.inc("serve_bench.coalesce.batches", b.coalesce.batches_formed);
    reg.inc(
        "serve_bench.coalesce.identical",
        u64::from(b.coalesce.identical),
    );
    reg.set_gauge(
        "serve_bench.coalesce.unbatched_pps",
        b.coalesce.unbatched_pps,
    );
    reg.set_gauge("serve_bench.coalesce.batched_pps", b.coalesce.batched_pps);
    reg.set_gauge("serve_bench.coalesce.speedup", b.coalesce.speedup());
    reg.inc("serve_bench.cache.designs", b.cache.designs as u64);
    reg.inc("serve_bench.cache.requests", b.cache.requests as u64);
    reg.inc("serve_bench.cache.lookups", b.cache.lookups);
    reg.inc("serve_bench.cache.hits", b.cache.hits);
    reg.inc("serve_bench.cache.misses", b.cache.misses);
    reg.inc("serve_bench.cache.invalidations", b.cache.invalidations);
    reg.inc("serve_bench.cache.identical", u64::from(b.cache.identical));
    reg.set_gauge("serve_bench.cache.hit_rate", b.cache.hit_rate());
    reg.inc(
        "serve_bench.overload.submitted",
        b.overload.submitted as u64,
    );
    reg.inc("serve_bench.overload.shed", b.overload.shed as u64);
    reg.inc("serve_bench.overload.ok", b.overload.ok as u64);
    reg.inc(
        "serve_bench.overload.answered",
        (b.overload.shed + b.overload.ok + b.overload.other) as u64,
    );
    reg.inc(
        "serve_bench.overload.every_request_answered",
        u64::from(b.overload.every_request_answered()),
    );
    reg.inc(
        "serve_bench.overload.matches_shed_plan",
        u64::from(b.overload.matches_plan),
    );
    reg.set_gauge("serve_bench.overload.shed_rate", b.overload.shed_rate());
    reg.inc("serve_bench.overload.steps", b.overload.steps as u64);
    reg.inc(
        "serve_bench.overload.queue_capacity",
        b.overload.queue_capacity as u64,
    );
    reg.into_snapshot()
}

/// Serialize through the canonical bench-artifact writer schema.
pub fn to_json(b: &ServeBench, effort: Effort) -> String {
    crate::artifact::bench_json("experiments serve-bench", effort, &to_metrics(b))
}

/// Human-readable report.
pub fn render(b: &ServeBench) -> String {
    let mut out = String::from("SERVE BENCH (congestd, in-process)\n");
    out.push_str(&format!(
        "  throughput: {} requests x {} rows ({} features, {} trees/target)\n",
        b.requests, b.batch_rows, b.features, b.trees
    ));
    out.push_str(&format!(
        "    p50 {:.2} ms | p99 {:.2} ms | {:.0} predictions/s ({:.0} ms wall)\n",
        b.p50_ms, b.p99_ms, b.predictions_per_sec, b.wall_ms
    ));
    out.push_str(&format!(
        "  coalescing: {} x 1-row requests, budget {} rows -> {:.0} pps batched vs {:.0} unbatched ({:.2}x, bitwise-identical: {})\n",
        b.coalesce.requests,
        b.coalesce.batch_budget_rows,
        b.coalesce.batched_pps,
        b.coalesce.unbatched_pps,
        b.coalesce.speedup(),
        b.coalesce.identical,
    ));
    out.push_str(&format!(
        "  cache: {} designs x {} requests -> {}/{} hits ({:.0}% hit rate), {} invalidated on swap\n",
        b.cache.designs,
        b.cache.requests,
        b.cache.hits,
        b.cache.lookups,
        100.0 * b.cache.hit_rate(),
        b.cache.invalidations,
    ));
    out.push_str(&format!(
        "  2x overload (virtual clock): {} submitted over {} steps / {} queue -> {} ok, {} shed, {} other\n",
        b.overload.submitted,
        b.overload.steps,
        b.overload.queue_capacity,
        b.overload.ok,
        b.overload.shed,
        b.overload.other
    ));
    out.push_str(&format!(
        "    shed rate {:.2} | matches shed_plan: {} | every request answered: {}\n",
        b.overload.shed_rate(),
        b.overload.matches_plan,
        b.overload.every_request_answered()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_serve_bench_sheds_under_overload_and_answers_everything() {
        let b = run(Effort::Fast);
        assert!(b.predictions_per_sec > 0.0);
        assert!(b.p99_ms >= b.p50_ms);
        assert!(
            b.overload.every_request_answered(),
            "no request may be dropped without a typed reply: {:?}",
            b.overload
        );
        assert!(
            b.overload.shed > 0,
            "2x overload must shed: {:?}",
            b.overload
        );
        assert!(
            b.overload.matches_plan,
            "virtual-clock shed set must equal shed_plan: {:?}",
            b.overload
        );
        assert!(
            b.coalesce.identical,
            "batched replies must be bit-identical"
        );
        assert!(b.coalesce.batches_formed > 0);
        assert!(b.cache.identical, "cache-hit replies must be bit-identical");
        assert_eq!(b.cache.hits + b.cache.misses, b.cache.lookups);
        assert!(b.cache.hits > 0);
        let snap = to_metrics(&b);
        assert_eq!(
            snap.counters["serve_bench.overload.every_request_answered"],
            1
        );
        assert_eq!(snap.counters["serve_bench.overload.matches_shed_plan"], 1);
        assert_eq!(snap.counters["serve_bench.coalesce.identical"], 1);
        assert_eq!(snap.counters["serve_bench.cache.identical"], 1);
        let json = to_json(&b, Effort::Fast);
        assert!(json.contains("\"schema\": \"obskit.metrics.v1\""));
        assert!(json.contains("serve_bench.overload.shed_rate"));
        assert!(json.contains("serve_bench.coalesce.speedup"));
        assert!(json.contains("serve_bench.cache.hit_rate"));
    }
}
