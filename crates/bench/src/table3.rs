//! **Table III** — property summary of the benchmark suite: max/min/avg of
//! WNS, Fmax over the three implementations, and of the per-CLB congestion
//! labels over the whole dataset.

use crate::designs::{training_suite, Effort};
use crate::metrics::DesignMetrics;
use congestion_core::CongestionDataset;
use std::fmt::Write;

/// Max/min/avg triple.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub avg: f64,
}

impl Summary {
    fn of(values: &[f64]) -> Summary {
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
        Summary { max, min, avg }
    }
}

/// Table III result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Per-design metrics (three groups).
    pub designs: Vec<DesignMetrics>,
    /// WNS summary over designs.
    pub wns: Summary,
    /// Fmax summary over designs.
    pub freq: Summary,
    /// Vertical congestion summary over dataset samples.
    pub vertical: Summary,
    /// Horizontal congestion summary over dataset samples.
    pub horizontal: Summary,
    /// Avg(V,H) summary over dataset samples.
    pub average: Summary,
    /// Total dataset size (paper: 8111 samples).
    pub samples: usize,
}

impl Table3 {
    /// Render as the paper's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE III. PROPERTY SUMMARY OF BENCHMARKS ({} samples)\n\
             {:<8} {:>9} {:>10} {:>16} {:>18} {:>14}",
            self.samples,
            "Metrics",
            "WNS(ns)",
            "Freq.(MHz)",
            "Vertical Cong(%)",
            "Horizontal Cong(%)",
            "Avg.(V,H)(%)"
        );
        for (label, pick) in [("Max", 0usize), ("Min", 1), ("Avg.", 2)] {
            let get = |s: &Summary| match pick {
                0 => s.max,
                1 => s.min,
                _ => s.avg,
            };
            let _ = writeln!(
                out,
                "{:<8} {:>9.3} {:>10.1} {:>16.2} {:>18.2} {:>14.2}",
                label,
                get(&self.wns),
                get(&self.freq),
                get(&self.vertical),
                get(&self.horizontal),
                get(&self.average)
            );
        }
        out
    }
}

/// Run the Table III experiment; also returns the dataset so downstream
/// experiments (Table IV/V) can reuse it.
pub fn run(effort: Effort) -> (Table3, CongestionDataset) {
    let flow = effort.flow();
    // One suite group per worker; results merge in suite order, so the
    // dataset is identical to the serial loop's.
    let modules = training_suite();
    let per_design = parkit::par_map(&modules, |module| {
        let (metrics, design, res) = DesignMetrics::measure(&flow, module);
        let mut part = CongestionDataset::new();
        part.add_design(&design, &res, &flow.device)
            .expect("training-suite designs back-trace cleanly");
        (metrics, part)
    });
    let mut designs = Vec::new();
    let mut ds = CongestionDataset::new();
    for (metrics, part) in per_design {
        ds.extend(&part);
        designs.push(metrics);
    }
    let wns = Summary::of(&designs.iter().map(|d| d.wns_ns).collect::<Vec<_>>());
    let freq = Summary::of(&designs.iter().map(|d| d.fmax_mhz).collect::<Vec<_>>());
    let v: Vec<f64> = ds.samples.iter().map(|s| s.vertical).collect();
    let h: Vec<f64> = ds.samples.iter().map(|s| s.horizontal).collect();
    let a: Vec<f64> = ds.samples.iter().map(|s| s.average()).collect();
    let table = Table3 {
        wns,
        freq,
        vertical: Summary::of(&v),
        horizontal: Summary::of(&h),
        average: Summary::of(&a),
        samples: ds.len(),
        designs,
    };
    (table, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats() {
        let s = Summary::of(&[1.0, 5.0, 3.0]);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.avg, 3.0);
    }

    #[test]
    #[ignore = "multi-minute full-suite run; exercised by the experiments binary"]
    fn table3_full() {
        let (t, ds) = run(Effort::Fast);
        assert_eq!(t.designs.len(), 3);
        assert!(ds.len() > 500);
        // The per-design merge must carry the feature matrix along with
        // the samples (they live in separate SoA containers).
        assert_eq!(ds.features().rows(), ds.len());
        assert!(t.vertical.max >= t.vertical.avg);
    }
}
