//! Head-to-head routing-kernel benchmark: the windowed A* maze kernel
//! against the reference full-grid Dijkstra it replaced, on the in-tree
//! designs. Produces the rows recorded in `BENCH_route.json`.

use crate::designs::Effort;
use fpga_fabric::place::{place, PlacerOptions};
use fpga_fabric::route::{route, RouteResult};
use fpga_fabric::{Device, RouterOptions, RoutingUtilization};
use hls_ir::frontend::compile_named;
use hls_ir::Module;
use hls_synth::{HlsFlow, HlsOptions};
use std::time::Instant;

/// One kernel's result on one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// Route-stage wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Nodes popped from the priority queue.
    pub expanded_nodes: u64,
    /// Nodes pushed onto the priority queue.
    pub heap_pushes: u64,
    /// Connections ripped up and rerouted across all passes.
    pub rerouted_conns: u64,
    /// Tiles left over 100 % utilization in either direction.
    pub overflowed_tiles: usize,
}

/// A* vs reference Dijkstra on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterBenchRow {
    /// Design name.
    pub design: String,
    /// Routed connections.
    pub conns: usize,
    /// The windowed A* kernel (the default).
    pub astar: KernelRun,
    /// The reference full-grid Dijkstra kernel.
    pub reference: KernelRun,
}

impl RouterBenchRow {
    /// Route-stage speedup of A* over the reference kernel.
    pub fn speedup(&self) -> f64 {
        if self.astar.wall_ms > 0.0 {
            self.reference.wall_ms / self.astar.wall_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The benchmark corpus: name and MiniHLS source (or generated module).
fn corpus(effort: Effort) -> Vec<(String, Module)> {
    let src = |s: &str, n: &str| compile_named(s, n).expect("bench source must compile");
    let mut out = vec![
        (
            "mac16".to_string(),
            src(
                "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
                "mac16",
            ),
        ),
        (
            "unroll64".to_string(),
            src(
                "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
                "unroll64",
            ),
        ),
    ];
    if effort == Effort::Full {
        out.push((
            "wide256".to_string(),
            src(
                "int32 f(int32 a[256], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 256; i++) { s = s + a[i] * k; } return s; }",
                "wide256",
            ),
        ));
        out.push((
            "fd_opt".to_string(),
            rosetta_gen::face_detection::benchmark(
                rosetta_gen::face_detection::FdVariant::Optimized,
            )
            .build()
            .expect("face detection generator must compile"),
        ));
    }
    out
}

fn kernel_run(result: &RouteResult, wall_ms: f64, device: &Device) -> KernelRun {
    KernelRun {
        wall_ms,
        expanded_nodes: result.stats.expanded_nodes,
        heap_pushes: result.stats.heap_pushes,
        rerouted_conns: result.stats.rerouted_conns,
        overflowed_tiles: RoutingUtilization::new(result, device).overflowed_tiles,
    }
}

/// Route every corpus design with both maze kernels and time the route stage.
///
/// Placement runs once per design so both kernels see identical input; the
/// timed region is the `route` call alone.
pub fn run(effort: Effort) -> Vec<RouterBenchRow> {
    let device = Device::xc7z020();
    let mut rows = Vec::new();
    for (name, module) in corpus(effort) {
        let design = HlsFlow::new(HlsOptions::default())
            .run(&module)
            .expect("bench design must synthesize");
        let placement = place(&design.rtl, &device, &PlacerOptions::fast());
        let time = |opts: &RouterOptions| {
            let t = Instant::now();
            let r = route(&design.rtl, &placement, &device, opts);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            (r, ms)
        };
        let (a, a_ms) = time(&RouterOptions::with_maze(2));
        let (d, d_ms) = time(&RouterOptions::with_reference_maze(2));
        debug_assert_eq!(a.conns.len(), d.conns.len());
        rows.push(RouterBenchRow {
            design: name,
            conns: a.conns.len(),
            astar: kernel_run(&a, a_ms, &device),
            reference: kernel_run(&d, d_ms, &device),
        });
    }
    rows
}

/// Fold the rows into an [`obskit::MetricsSnapshot`] under the shared
/// `router_bench.<design>.<kernel>.<metric>` naming scheme. Deterministic
/// search counters become counters; wall-clock and derived speedup become
/// gauges (gauges are excluded from `deterministic_digest`, matching the
/// timing-metric convention).
pub fn to_metrics(rows: &[RouterBenchRow]) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    for r in rows {
        let base = format!("router_bench.{}", r.design);
        reg.inc(&format!("{base}.conns"), r.conns as u64);
        reg.set_gauge(&format!("{base}.speedup"), r.speedup());
        for (kernel, k) in [("astar", &r.astar), ("reference_dijkstra", &r.reference)] {
            reg.set_gauge(&format!("{base}.{kernel}.wall_ms"), k.wall_ms);
            reg.inc(&format!("{base}.{kernel}.expanded_nodes"), k.expanded_nodes);
            reg.inc(&format!("{base}.{kernel}.heap_pushes"), k.heap_pushes);
            reg.inc(&format!("{base}.{kernel}.rerouted_conns"), k.rerouted_conns);
            reg.inc(
                &format!("{base}.{kernel}.overflowed_tiles"),
                k.overflowed_tiles as u64,
            );
        }
    }
    reg.into_snapshot()
}

/// Serialize the rows through the workspace-wide `obskit.metrics.v1` JSON
/// schema (the same format `hls-congest --metrics-out` writes), so
/// `BENCH_route.json` and pipeline metrics snapshots share tooling.
pub fn to_json(rows: &[RouterBenchRow], effort: Effort) -> String {
    crate::artifact::bench_json("experiments router-bench", effort, &to_metrics(rows))
}

/// Human-readable table for stdout.
pub fn render(rows: &[RouterBenchRow]) -> String {
    let mut out =
        String::from("ROUTER KERNELS: WINDOWED A* VS REFERENCE DIJKSTRA (maze, 2 passes)\n");
    out.push_str(&format!(
        "{:<10} {:>7} {:>12} {:>12} {:>14} {:>14} {:>8} {:>10} {:>10}\n",
        "design",
        "conns",
        "astar ms",
        "ref ms",
        "astar expand",
        "ref expand",
        "speedup",
        "astar over",
        "ref over"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>7} {:>12.1} {:>12.1} {:>14} {:>14} {:>7.2}x {:>10} {:>10}\n",
            r.design,
            r.conns,
            r.astar.wall_ms,
            r.reference.wall_ms,
            r.astar.expanded_nodes,
            r.reference.expanded_nodes,
            r.speedup(),
            r.astar.overflowed_tiles,
            r.reference.overflowed_tiles,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bench_runs_and_astar_searches_less() {
        let rows = run(Effort::Fast);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.conns > 0);
            assert!(
                r.astar.expanded_nodes <= r.reference.expanded_nodes,
                "{}: A* must not search more than the full-grid kernel ({} vs {})",
                r.design,
                r.astar.expanded_nodes,
                r.reference.expanded_nodes
            );
            assert!(
                r.astar.overflowed_tiles <= r.reference.overflowed_tiles,
                "{}: A* must not leave more overflow",
                r.design
            );
        }
    }

    fn sample_rows() -> Vec<RouterBenchRow> {
        vec![RouterBenchRow {
            design: "d".into(),
            conns: 3,
            astar: KernelRun {
                wall_ms: 1.5,
                expanded_nodes: 10,
                heap_pushes: 20,
                rerouted_conns: 2,
                overflowed_tiles: 0,
            },
            reference: KernelRun {
                wall_ms: 3.0,
                expanded_nodes: 40,
                heap_pushes: 80,
                rerouted_conns: 2,
                overflowed_tiles: 1,
            },
        }]
    }

    #[test]
    fn metrics_follow_shared_naming_scheme() {
        let snap = to_metrics(&sample_rows());
        assert_eq!(snap.counters["router_bench.d.conns"], 3);
        assert_eq!(snap.counters["router_bench.d.astar.expanded_nodes"], 10);
        assert_eq!(
            snap.counters["router_bench.d.reference_dijkstra.expanded_nodes"],
            40
        );
        assert_eq!(snap.gauges["router_bench.d.speedup"], 2.0);
        assert_eq!(snap.gauges["router_bench.d.astar.wall_ms"], 1.5);
    }

    #[test]
    fn json_uses_obskit_metrics_schema() {
        let j = to_json(&sample_rows(), Effort::Fast);
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""), "{j}");
        assert!(j.contains("\"tool\": \"experiments router-bench\""), "{j}");
        assert!(j.contains("router_bench.d.astar.expanded_nodes"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
