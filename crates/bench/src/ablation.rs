//! Ablations of the design choices called out in DESIGN.md §6:
//! two-hop features, shared-node merging, router refinement passes, and
//! per-category feature knock-outs.

use crate::designs::Effort;
use congestion_core::dataset::Target;
use congestion_core::features::FeatureCategory;
use congestion_core::predict::{CongestionPredictor, ModelKind};
use congestion_core::CongestionDataset;

/// MAE with a feature subset zeroed out vs the full vector.
#[derive(Debug, Clone)]
pub struct KnockoutResult {
    /// Knocked-out category.
    pub category: String,
    /// Test MAE with that category zeroed.
    pub mae: f64,
    /// Baseline MAE with all features.
    pub baseline_mae: f64,
}

impl KnockoutResult {
    /// MAE degradation caused by removing the category.
    pub fn delta(&self) -> f64 {
        self.mae - self.baseline_mae
    }
}

/// Zero out one feature category in a dataset copy.
pub fn knock_out(data: &CongestionDataset, cat: FeatureCategory) -> CongestionDataset {
    let mut out = data.clone();
    let x = out.features_mut();
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        for i in cat.range() {
            row[i] = 0.0;
        }
    }
    out
}

/// Run the category knock-out ablation: train GBRT on the vertical target
/// with each category removed in turn.
pub fn category_knockout(data: &CongestionDataset, effort: Effort) -> Vec<KnockoutResult> {
    let opts = effort.train(false);
    let (train, test) = data.split(0.2, 23);
    let baseline = CongestionPredictor::train(ModelKind::Gbrt, Target::Vertical, &train, &opts)
        .evaluate(&test)
        .mae;
    // Each knock-out trains an independent model — one category per worker.
    parkit::par_map(&FeatureCategory::ALL, |&cat| {
        let ko_train = knock_out(&train, cat);
        let ko_test = knock_out(&test, cat);
        let mae = CongestionPredictor::train(ModelKind::Gbrt, Target::Vertical, &ko_train, &opts)
            .evaluate(&ko_test)
            .mae;
        KnockoutResult {
            category: cat.name().to_string(),
            mae,
            baseline_mae: baseline,
        }
    })
}

/// MAE when training only on 1-hop features (two-hop ablation): zeroes the
/// 2-hop halves of the Interconnection / Resource / #Resource-ΔTcs
/// categories.
pub fn without_two_hop(data: &CongestionDataset) -> CongestionDataset {
    let mut out = data.clone();
    let x = out.features_mut();
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        // Interconnection: second 9 of 18.
        let ic = FeatureCategory::Interconnection.range();
        for v in &mut row[ic.start + 9..ic.end] {
            *v = 0.0;
        }
        // Resource: per type (25), the last 11 are 2-hop.
        let rr = FeatureCategory::Resource.range();
        for t in 0..4 {
            let base = rr.start + t * 25;
            for v in &mut row[base + 14..base + 25] {
                *v = 0.0;
            }
        }
        // #Resource/dTcs: per type (18), the last 9 are 2-hop.
        let rd = FeatureCategory::ResourcePerDtcs.range();
        for t in 0..4 {
            let base = rd.start + t * 18;
            for v in &mut row[base + 9..base + 18] {
                *v = 0.0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion_core::features::FEATURE_COUNT;
    use congestion_core::Sample;
    use hls_ir::{FuncId, OpId};

    fn toy() -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..200usize {
            let mut features = vec![1.0; FEATURE_COUNT];
            features[0] = (i % 9) as f64;
            ds.push(
                Sample {
                    design: "t".into(),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: 1,
                    replica: None,
                    vertical: 10.0 * (i % 9) as f64,
                    horizontal: 5.0,
                },
                &features,
            );
        }
        ds
    }

    #[test]
    fn knockout_zeroes_category() {
        let ds = toy();
        let ko = knock_out(&ds, FeatureCategory::Bitwidth);
        assert!(ko.features().iter_rows().all(|r| r[0] == 0.0));
        // Other categories untouched.
        assert!(ko.features().iter_rows().all(|r| r[1] == 1.0));
    }

    #[test]
    fn removing_the_informative_category_hurts() {
        let results = category_knockout(&toy(), Effort::Fast);
        let bitwidth = results.iter().find(|r| r.category == "Bitwidth").unwrap();
        assert!(
            bitwidth.delta() > 1.0,
            "label depends on bitwidth; knockout must hurt (delta {})",
            bitwidth.delta()
        );
    }

    #[test]
    fn two_hop_ablation_zeroes_expected_slices() {
        let ds = toy();
        let ab = without_two_hop(&ds);
        let row = ab.features_of(0);
        let ic = FeatureCategory::Interconnection.range();
        assert_eq!(row[ic.start + 8], 1.0, "1-hop kept");
        assert_eq!(row[ic.start + 9], 0.0, "2-hop zeroed");
        let rr = FeatureCategory::Resource.range();
        assert_eq!(row[rr.start + 13], 1.0);
        assert_eq!(row[rr.start + 14], 0.0);
    }
}
