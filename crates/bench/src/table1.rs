//! **Table I** — performance comparison of Face Detection with and without
//! HLS directives.
//!
//! Expected shape (paper): the directive-optimized implementation has far
//! lower latency but much worse WNS/Fmax and much higher max congestion.

use crate::designs::{face_detection, Effort};
use crate::metrics::DesignMetrics;
use rosetta_gen::face_detection::FdVariant;
use std::fmt::Write;

/// Table I result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// "With Directives" row.
    pub with_directives: DesignMetrics,
    /// "Without Directives" row.
    pub without_directives: DesignMetrics,
}

impl Table1 {
    /// Whether the paper's qualitative shape holds.
    pub fn shape_holds(&self) -> bool {
        let w = &self.with_directives;
        let wo = &self.without_directives;
        w.latency_cycles < wo.latency_cycles
            && w.fmax_mhz < wo.fmax_mhz
            && w.max_congestion() > wo.max_congestion()
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE I. PERFORMANCE COMPARISON (Face Detection)\n\
             {:<22} {:>9} {:>14} {:>16} {:>18}",
            "Implementation", "WNS(ns)", "Max Freq.(MHz)", "Latency(cycles)", "Max Congestion(%)"
        );
        for (label, m) in [
            ("With Directives", &self.with_directives),
            ("Without Directives", &self.without_directives),
        ] {
            let _ = writeln!(
                out,
                "{:<22} {:>9.3} {:>14.1} {:>16} {:>18.2}",
                label,
                m.wns_ns,
                m.fmax_mhz,
                m.latency_cycles,
                m.max_congestion()
            );
        }
        out
    }
}

/// Run the Table I experiment.
pub fn run(effort: Effort) -> Table1 {
    let flow = effort.flow();
    let variants = [FdVariant::Optimized, FdVariant::Plain];
    let mut metrics = parkit::par_map(&variants, |&v| {
        DesignMetrics::measure(&flow, &face_detection(v)).0
    })
    .into_iter();
    Table1 {
        with_directives: metrics.next().unwrap(),
        without_directives: metrics.next().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let t = run(Effort::Fast);
        assert!(
            t.with_directives.latency_cycles < t.without_directives.latency_cycles,
            "directives must cut latency: {} vs {}",
            t.with_directives.latency_cycles,
            t.without_directives.latency_cycles
        );
        assert!(
            t.with_directives.max_congestion() > t.without_directives.max_congestion(),
            "directives must increase congestion: {} vs {}",
            t.with_directives.max_congestion(),
            t.without_directives.max_congestion()
        );
        let text = t.render();
        assert!(text.contains("With Directives"));
    }
}
