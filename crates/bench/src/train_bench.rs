//! Head-to-head GBRT training-kernel benchmark: the histogram engine
//! (serial and with the full worker pool) against the exact-split
//! reference it replaced, plus batched vs per-row inference, on the
//! paper's training suite. Produces the rows recorded in
//! `BENCH_train.json`.

use crate::designs::{self, Effort};
use congestion_core::dataset::{CongestionDataset, Target};
use mlkit::metrics::mae;
use mlkit::{GbrtKernel, GbrtOptions, GbrtRegressor, Regressor};
use std::time::Instant;

/// One kernel's fit on one target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitRun {
    /// Fit wall-clock in milliseconds.
    pub fit_ms: f64,
    /// Held-out MAE (percentage points of congestion).
    pub mae: f64,
    /// Boosting stages fitted.
    pub trees: u64,
    /// Total split nodes across the ensemble.
    pub splits: u64,
}

/// Histogram vs exact-split training (and batched vs per-row inference)
/// on one congestion target.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainBenchRow {
    /// Target metric name (`vertical` / `horizontal`).
    pub target: String,
    /// Training rows.
    pub samples: usize,
    /// Feature columns.
    pub features: usize,
    /// Histogram kernel with the full parkit worker pool (production).
    pub hist: FitRun,
    /// Histogram kernel pinned to one worker (isolates the algorithm).
    pub hist_serial: FitRun,
    /// Exact-split reference kernel.
    pub exact: FitRun,
    /// Batched compiled-table prediction of the test set, milliseconds.
    pub predict_batched_ms: f64,
    /// Per-row `predict_one` loop over the same test set, milliseconds.
    pub predict_per_row_ms: f64,
}

impl TrainBenchRow {
    /// Fit speedup of the parallel histogram kernel over the reference.
    pub fn fit_speedup(&self) -> f64 {
        if self.hist.fit_ms > 0.0 {
            self.exact.fit_ms / self.hist.fit_ms
        } else {
            f64::INFINITY
        }
    }

    /// Fit speedup of the *serial* histogram kernel over the reference
    /// (pure algorithmic gain, no parallelism).
    pub fn serial_fit_speedup(&self) -> f64 {
        if self.hist_serial.fit_ms > 0.0 {
            self.exact.fit_ms / self.hist_serial.fit_ms
        } else {
            f64::INFINITY
        }
    }

    /// Inference speedup of the compiled batched engine over per-row
    /// pointer-chasing.
    pub fn predict_speedup(&self) -> f64 {
        if self.predict_batched_ms > 0.0 {
            self.predict_per_row_ms / self.predict_batched_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The benchmark dataset: the paper's training suite through the
/// implementation flow (all three groups at Full effort, the first at
/// Fast so CI smoke stays cheap).
fn dataset(effort: Effort) -> CongestionDataset {
    let mut modules = designs::training_suite();
    if effort == Effort::Fast {
        modules.truncate(1);
    }
    effort
        .flow()
        .build_dataset(&modules)
        .expect("bench suite must implement")
}

fn gbrt_opts(effort: Effort, kernel: GbrtKernel, workers: usize) -> GbrtOptions {
    GbrtOptions {
        n_estimators: match effort {
            Effort::Fast => 30,
            Effort::Full => 250,
        },
        kernel,
        workers,
        ..Default::default()
    }
}

/// Fit both kernels on both congestion targets and time fit + inference.
///
/// The dataset is built once; each kernel sees identical training rows and
/// the same RNG schedule, so the serial/parallel histogram fits are
/// bit-identical and any MAE gap against the reference is pure binning.
pub fn run(effort: Effort) -> Vec<TrainBenchRow> {
    let ds = dataset(effort);
    let (train, test) = ds.split(0.25, 42);
    let mut rows = Vec::new();
    for target in [Target::Vertical, Target::Horizontal] {
        let tr = train.to_ml(target);
        let te = test.to_ml(target);
        let fit = |kernel, workers| {
            let mut m = GbrtRegressor::new(gbrt_opts(effort, kernel, workers));
            let t = Instant::now();
            m.fit(&tr.x, &tr.y);
            let fit_ms = t.elapsed().as_secs_f64() * 1e3;
            let run = FitRun {
                fit_ms,
                mae: mae(&te.y, &m.predict(&te.x)),
                trees: m.n_trees() as u64,
                splits: m
                    .compiled()
                    .n_nodes()
                    .saturating_sub(m.compiled().n_trees()) as u64
                    / 2,
            };
            (m, run)
        };
        let (model, hist) = fit(GbrtKernel::Histogram, parkit::num_threads());
        let (_, hist_serial) = fit(GbrtKernel::Histogram, 1);
        let (_, exact) = fit(GbrtKernel::ReferenceExact, 1);

        // Inference: the compiled batched path vs the per-row walk, over
        // enough repetitions to rise above timer noise.
        let reps = match effort {
            Effort::Fast => 3,
            Effort::Full => 20,
        };
        let mut out = vec![0.0; te.x.rows()];
        let t = Instant::now();
        for _ in 0..reps {
            model.predict_into(&te.x, &mut out);
        }
        let predict_batched_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let t = Instant::now();
        for _ in 0..reps {
            for (o, row) in out.iter_mut().zip(te.x.iter_rows()) {
                *o = model.predict_one(row);
            }
        }
        let predict_per_row_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

        rows.push(TrainBenchRow {
            target: target.name().to_lowercase(),
            samples: tr.x.rows(),
            features: tr.x.cols(),
            hist,
            hist_serial,
            exact,
            predict_batched_ms,
            predict_per_row_ms,
        });
    }
    rows
}

/// Fold the rows into an [`obskit::MetricsSnapshot`] under the shared
/// `train_bench.<target>.<kernel>.<metric>` naming scheme. Deterministic
/// model-shape counts become counters; wall-clock, MAE, and derived
/// speedups become gauges (excluded from `deterministic_digest`, matching
/// the timing-metric convention).
pub fn to_metrics(rows: &[TrainBenchRow]) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    for r in rows {
        let base = format!("train_bench.{}", r.target);
        reg.inc(&format!("{base}.samples"), r.samples as u64);
        reg.inc(&format!("{base}.features"), r.features as u64);
        reg.set_gauge(&format!("{base}.fit_speedup"), r.fit_speedup());
        reg.set_gauge(
            &format!("{base}.serial_fit_speedup"),
            r.serial_fit_speedup(),
        );
        reg.set_gauge(&format!("{base}.predict_speedup"), r.predict_speedup());
        reg.set_gauge(&format!("{base}.predict.batched_ms"), r.predict_batched_ms);
        reg.set_gauge(&format!("{base}.predict.per_row_ms"), r.predict_per_row_ms);
        for (kernel, k) in [
            ("histogram", &r.hist),
            ("histogram_serial", &r.hist_serial),
            ("reference_exact", &r.exact),
        ] {
            reg.set_gauge(&format!("{base}.{kernel}.fit_ms"), k.fit_ms);
            reg.set_gauge(&format!("{base}.{kernel}.mae"), k.mae);
            reg.inc(&format!("{base}.{kernel}.trees"), k.trees);
            reg.inc(&format!("{base}.{kernel}.splits"), k.splits);
        }
    }
    reg.into_snapshot()
}

/// Serialize the rows through the workspace-wide `obskit.metrics.v1` JSON
/// schema, so `BENCH_train.json` and pipeline metrics snapshots share
/// tooling.
pub fn to_json(rows: &[TrainBenchRow], effort: Effort) -> String {
    crate::artifact::bench_json("experiments train-bench", effort, &to_metrics(rows))
}

/// Human-readable table for stdout.
pub fn render(rows: &[TrainBenchRow]) -> String {
    let mut out = String::from("GBRT KERNELS: HISTOGRAM VS REFERENCE EXACT-SPLIT\n");
    out.push_str(&format!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8}\n",
        "target",
        "rows",
        "hist ms",
        "ser ms",
        "exact ms",
        "speedup",
        "hist mae",
        "exact mae",
        "bat ms",
        "row ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>7.2}x {:>9.3} {:>9.3} {:>8.2} {:>8.2}\n",
            r.target,
            r.samples,
            r.hist.fit_ms,
            r.hist_serial.fit_ms,
            r.exact.fit_ms,
            r.fit_speedup(),
            r.hist.mae,
            r.exact.mae,
            r.predict_batched_ms,
            r.predict_per_row_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bench_runs_and_kernels_agree() {
        let rows = run(Effort::Fast);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.samples > 0 && r.features > 0);
            assert!(r.hist.trees > 0 && r.exact.trees > 0);
            // Serial and parallel histogram fits are the same model.
            assert_eq!(
                r.hist.mae.to_bits(),
                r.hist_serial.mae.to_bits(),
                "{}: worker count changed the model",
                r.target
            );
            assert_eq!(
                (r.hist.trees, r.hist.splits),
                (r.hist_serial.trees, r.hist_serial.splits)
            );
            // Binning must not wreck accuracy even at smoke scale.
            assert!(
                (r.hist.mae - r.exact.mae).abs() <= 0.25 * r.exact.mae.max(1.0),
                "{}: hist mae {} vs exact {}",
                r.target,
                r.hist.mae,
                r.exact.mae
            );
        }
    }

    fn sample_rows() -> Vec<TrainBenchRow> {
        vec![TrainBenchRow {
            target: "vertical".into(),
            samples: 100,
            features: 302,
            hist: FitRun {
                fit_ms: 10.0,
                mae: 3.0,
                trees: 50,
                splits: 300,
            },
            hist_serial: FitRun {
                fit_ms: 25.0,
                mae: 3.0,
                trees: 50,
                splits: 300,
            },
            exact: FitRun {
                fit_ms: 100.0,
                mae: 2.9,
                trees: 50,
                splits: 310,
            },
            predict_batched_ms: 0.5,
            predict_per_row_ms: 2.0,
        }]
    }

    #[test]
    fn speedups_divide_the_right_way() {
        let r = &sample_rows()[0];
        assert_eq!(r.fit_speedup(), 10.0);
        assert_eq!(r.serial_fit_speedup(), 4.0);
        assert_eq!(r.predict_speedup(), 4.0);
    }

    #[test]
    fn metrics_follow_shared_naming_scheme() {
        let snap = to_metrics(&sample_rows());
        assert_eq!(snap.counters["train_bench.vertical.samples"], 100);
        assert_eq!(snap.counters["train_bench.vertical.histogram.trees"], 50);
        assert_eq!(
            snap.counters["train_bench.vertical.reference_exact.splits"],
            310
        );
        assert_eq!(snap.gauges["train_bench.vertical.fit_speedup"], 10.0);
        assert_eq!(snap.gauges["train_bench.vertical.histogram.fit_ms"], 10.0);
        assert_eq!(snap.gauges["train_bench.vertical.histogram.mae"], 3.0);
    }

    #[test]
    fn json_uses_obskit_metrics_schema() {
        let j = to_json(&sample_rows(), Effort::Fast);
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""), "{j}");
        assert!(j.contains("\"tool\": \"experiments train-bench\""), "{j}");
        assert!(j.contains("train_bench.vertical.histogram.fit_ms"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
