//! Dataset-build benchmark: the SoA feature-extraction kernel against the
//! reference per-node path, and the new build stack (cross-stage pipelined
//! executor + SoA extraction) against the pre-optimisation stack (serial
//! per-design loop + reference extraction) at equal worker counts.
//! Produces the rows recorded in `BENCH_pipeline.json`.
//!
//! Every row also carries a bit-identity verdict: the optimised stack must
//! reproduce the baseline dataset byte for byte (CSV serialization) and
//! the baseline metrics digest exactly — a speedup that changes the answer
//! is a bug, not a result.

use crate::designs::Effort;
use congestion_core::features::ExtractKernel;
use congestion_core::persist::write_csv;
use congestion_core::pipeline::CongestionFlow;
use congestion_core::CongestionDataset;
use fpga_fabric::par::ParOptions;
use hls_ir::frontend::compile_named;
use hls_ir::Module;
use std::time::Instant;

/// Feature-kernel head-to-head on one implemented design.
///
/// Two granularities per kernel: `extract_*_ms` times the extraction loop
/// alone — the exact seam the [`ExtractKernel`] selector switches — and
/// `stage_*_ms` times the whole features stage (`add_design_with`:
/// back-trace, graph + CSR construction, extraction, sample pushes). The
/// stage numbers include per-design setup that is identical for both
/// kernels by construction, so the stage ratio is a lower bound on the
/// kernel ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureKernelRow {
    /// Design name.
    pub design: String,
    /// Samples the stage produces.
    pub samples: usize,
    /// Reference kernel (per-node allocation) extraction loop, milliseconds.
    pub extract_reference_ms: f64,
    /// SoA kernel (flat-row `extract_into`) extraction loop, milliseconds.
    pub extract_soa_ms: f64,
    /// Whole features stage with the reference kernel, milliseconds.
    pub stage_reference_ms: f64,
    /// Whole features stage with the SoA kernel, milliseconds.
    pub stage_soa_ms: f64,
    /// Both kernels produced bitwise-identical datasets.
    pub identical: bool,
}

impl FeatureKernelRow {
    /// Extraction-kernel speedup of the SoA kernel over the reference.
    pub fn speedup(&self) -> f64 {
        if self.extract_soa_ms > 0.0 {
            self.extract_reference_ms / self.extract_soa_ms
        } else {
            f64::INFINITY
        }
    }

    /// Whole-features-stage speedup (includes the shared setup work).
    pub fn stage_speedup(&self) -> f64 {
        if self.stage_soa_ms > 0.0 {
            self.stage_reference_ms / self.stage_soa_ms
        } else {
            f64::INFINITY
        }
    }
}

/// End-to-end dataset build at one worker count: pre-optimisation stack
/// (serial executor + reference extraction) vs the new stack (pipelined
/// executor + SoA extraction).
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndRow {
    /// Worker threads given to both stacks.
    pub workers: usize,
    /// Pre-optimisation stack wall-clock, milliseconds.
    pub serial_ms: f64,
    /// New stack wall-clock, milliseconds.
    pub pipelined_ms: f64,
    /// Dataset CSV bytes and metrics digest match the 1-worker serial
    /// baseline exactly.
    pub identical: bool,
}

impl EndToEndRow {
    /// End-to-end speedup of the new stack at this worker count.
    pub fn speedup(&self) -> f64 {
        if self.pipelined_ms > 0.0 {
            self.serial_ms / self.pipelined_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBench {
    /// Per-design feature-kernel comparison.
    pub features: Vec<FeatureKernelRow>,
    /// Per-worker-count end-to-end comparison.
    pub e2e: Vec<EndToEndRow>,
}

impl PipelineBench {
    /// Corpus-wide extraction-kernel speedup (total reference wall over
    /// total SoA wall — robust to sub-millisecond noise on small designs).
    pub fn features_speedup(&self) -> f64 {
        let soa: f64 = self.features.iter().map(|r| r.extract_soa_ms).sum();
        let reference: f64 = self.features.iter().map(|r| r.extract_reference_ms).sum();
        if soa > 0.0 {
            reference / soa
        } else {
            f64::INFINITY
        }
    }

    /// Corpus-wide whole-stage speedup (same totals over the stage times).
    pub fn stage_speedup(&self) -> f64 {
        let soa: f64 = self.features.iter().map(|r| r.stage_soa_ms).sum();
        let reference: f64 = self.features.iter().map(|r| r.stage_reference_ms).sum();
        if soa > 0.0 {
            reference / soa
        } else {
            f64::INFINITY
        }
    }

    /// End-to-end speedup summed over the worker-count rows.
    pub fn e2e_speedup(&self) -> f64 {
        let piped: f64 = self.e2e.iter().map(|r| r.pipelined_ms).sum();
        let serial: f64 = self.e2e.iter().map(|r| r.serial_ms).sum();
        if piped > 0.0 {
            serial / piped
        } else {
            f64::INFINITY
        }
    }

    /// Every row's bit-identity verdict holds.
    pub fn all_identical(&self) -> bool {
        self.features.iter().all(|r| r.identical) && self.e2e.iter().all(|r| r.identical)
    }
}

/// The benchmark flow: both stacks run with [`ParOptions::fast`] place and
/// route regardless of effort, so the features stage keeps the share it
/// has in the extraction-bound regime this optimisation targets. The two
/// stacks always get identical PAR settings — the comparison is fair at
/// any effort; effort only scales the corpus and repetition counts.
fn bench_flow() -> CongestionFlow {
    let mut flow = CongestionFlow::new();
    flow.par = ParOptions::fast();
    flow
}

/// The benchmark corpus: unroll- and partition-heavy designs whose replica
/// groups give nodes dense one- and two-hop neighborhoods, which is what
/// makes dataset builds feature-bound (the regime this optimisation
/// targets). `unroll32` stays sparse as the contrast case.
fn corpus(effort: Effort) -> Vec<(String, Module)> {
    let src = |s: &str, n: &str| compile_named(s, n).expect("bench source must compile");
    let mut out = vec![
        (
            "unroll32".to_string(),
            src(
                "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=8\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
                "unroll32",
            ),
        ),
        (
            "mac64".to_string(),
            src(
                "int32 f(int32 a[64], int32 b[64]) {\n#pragma HLS array_partition variable=a complete\n#pragma HLS array_partition variable=b complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * b[i]; } return s; }",
                "mac64",
            ),
        ),
    ];
    if effort == Effort::Full {
        out.push((
            "mac128".to_string(),
            src(
                "int32 f(int32 a[128], int32 b[128]) {\n#pragma HLS array_partition variable=a cyclic factor=32\n#pragma HLS array_partition variable=b cyclic factor=32\nint32 s = 0;\n#pragma HLS unroll factor=32\nfor (i = 0; i < 128; i++) { s = s + a[i] * b[i]; } return s; }",
                "mac128",
            ),
        ));
        out.push((
            "mac256".to_string(),
            src(
                "int32 f(int32 a[256], int32 b[256]) {\n#pragma HLS array_partition variable=a cyclic factor=64\n#pragma HLS array_partition variable=b cyclic factor=64\nint32 s = 0;\n#pragma HLS unroll factor=64\nfor (i = 0; i < 256; i++) { s = s + a[i] * b[i]; } return s; }",
                "mac256",
            ),
        ));
    }
    out
}

/// Time the features stage (back-trace + extraction) with both kernels on
/// every corpus design. Each design is implemented once; each kernel runs
/// `reps` times and reports the minimum — scheduler noise on a shared box
/// only ever inflates a wall-clock, so the minimum is the robust estimate
/// of the true stage cost.
pub fn feature_rows(effort: Effort) -> Vec<FeatureKernelRow> {
    let flow = bench_flow();
    let reps = match effort {
        Effort::Fast => 3,
        Effort::Full => 20,
    };
    corpus(effort)
        .into_iter()
        .map(|(name, module)| {
            let (design, impl_result) = flow
                .implement(&module)
                .expect("bench design must implement");
            let time_stage = |kernel: ExtractKernel| {
                let mut best_ms = f64::INFINITY;
                let mut out = CongestionDataset::new();
                for _ in 0..reps {
                    let mut ds = CongestionDataset::new();
                    let t = Instant::now();
                    ds.add_design_with(&design, &impl_result, &flow.device, kernel)
                        .expect("features stage must succeed");
                    best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
                    out = ds;
                }
                (best_ms, out)
            };
            let (stage_reference_ms, reference) = time_stage(ExtractKernel::Reference);
            let (stage_soa_ms, soa) = time_stage(ExtractKernel::Soa);
            let (extract_reference_ms, extract_soa_ms) =
                time_extract_loops(&design, &impl_result, &flow, reps);
            FeatureKernelRow {
                design: name,
                samples: soa.len(),
                extract_reference_ms,
                extract_soa_ms,
                stage_reference_ms,
                stage_soa_ms,
                identical: soa == reference,
            }
        })
        .collect()
}

/// Time the two extraction loops in isolation: the same per-function
/// graph/ctx/labels setup `add_design_with` performs, then `extract` vs
/// `extract_into` over exactly the labelled nodes. Minimum over `reps`.
fn time_extract_loops(
    design: &hls_synth::SynthesizedDesign,
    impl_result: &fpga_fabric::ImplResult,
    flow: &CongestionFlow,
    reps: usize,
) -> (f64, f64) {
    use congestion_core::backtrace::backtrace_labels;
    use congestion_core::features::ExtractCtx;
    use congestion_core::graph::DepGraph;
    let labels = backtrace_labels(design, impl_result).expect("bench design must back-trace");
    let mut reference_ms = 0.0;
    let mut soa_ms = 0.0;
    for fid in design.module.bottom_up_order() {
        let f = design.module.function(fid);
        let graph = DepGraph::build(f, Some(&design.bindings[&fid]), true);
        let ctx = ExtractCtx::new(&graph, design, fid, &flow.device);
        let nodes: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_port && n.ops.iter().any(|o| labels.contains_key(&(fid, *o))))
            .map(|(i, _)| i)
            .collect();
        let mut best_ref = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            for &n in &nodes {
                std::hint::black_box(ctx.extract(n));
            }
            best_ref = best_ref.min(t.elapsed().as_secs_f64() * 1e3);
        }
        let mut row = vec![0.0f64; congestion_core::FEATURE_COUNT];
        let mut best_soa = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            for &n in &nodes {
                ctx.extract_into(n, &mut row);
            }
            best_soa = best_soa.min(t.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&row);
        }
        reference_ms += best_ref;
        soa_ms += best_soa;
    }
    (reference_ms, soa_ms)
}

/// One dataset build repeated `reps` times; returns the minimum wall-clock
/// (noise-robust, see [`feature_rows`]) plus the identity evidence of the
/// last run (serialized dataset bytes and the deterministic metrics
/// digest).
fn build(flow: &CongestionFlow, modules: &[Module], reps: usize) -> (f64, Vec<u8>, String) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let report = flow.build_dataset_report(modules);
        assert_eq!(
            report.failed(),
            0,
            "bench corpus designs must all implement"
        );
        best_ms = best_ms.min(report.wall.as_secs_f64() * 1e3);
        let mut bytes = Vec::new();
        write_csv(&report.dataset, &mut bytes).expect("in-memory csv");
        last = Some((bytes, report.obs.metrics.deterministic_digest()));
    }
    let (bytes, digest) = last.expect("reps >= 1");
    (best_ms, bytes, digest)
}

/// End-to-end build comparison at 1, 2, and 8 workers. Identity is judged
/// against the 1-worker serial baseline: same CSV bytes, same digest, for
/// every configuration.
pub fn e2e_rows(effort: Effort) -> Vec<EndToEndRow> {
    let modules: Vec<Module> = corpus(effort).into_iter().map(|(_, m)| m).collect();
    let reps = match effort {
        Effort::Fast => 3,
        Effort::Full => 7,
    };
    let serial_flow = |w: usize| {
        bench_flow()
            .with_workers(w)
            .with_extract_kernel(ExtractKernel::Reference)
    };
    let pipelined_flow = |w: usize| {
        bench_flow()
            .with_workers(w)
            .with_pipeline_depth(2)
            .with_extract_kernel(ExtractKernel::Soa)
    };
    let (_, base_bytes, base_digest) = build(&serial_flow(1), &modules, 1);
    [1usize, 2, 8]
        .into_iter()
        .map(|workers| {
            let (serial_ms, s_bytes, s_digest) = build(&serial_flow(workers), &modules, reps);
            let (pipelined_ms, p_bytes, p_digest) = build(&pipelined_flow(workers), &modules, reps);
            EndToEndRow {
                workers,
                serial_ms,
                pipelined_ms,
                identical: s_bytes == base_bytes
                    && p_bytes == base_bytes
                    && s_digest == base_digest
                    && p_digest == base_digest,
            }
        })
        .collect()
}

/// Run the whole benchmark.
pub fn run(effort: Effort) -> PipelineBench {
    PipelineBench {
        features: feature_rows(effort),
        e2e: e2e_rows(effort),
    }
}

/// Fold the result into an [`obskit::MetricsSnapshot`] under the shared
/// `pipeline_bench.<section>.<row>.<metric>` naming scheme. Wall-clocks
/// and derived speedups are gauges (excluded from the deterministic
/// digest); sample counts and identity verdicts are counters.
pub fn to_metrics(bench: &PipelineBench) -> obskit::MetricsSnapshot {
    let mut reg = obskit::Registry::new();
    reg.set_gauge(
        "pipeline_bench.total.features_speedup",
        bench.features_speedup(),
    );
    reg.set_gauge("pipeline_bench.total.stage_speedup", bench.stage_speedup());
    reg.set_gauge("pipeline_bench.total.e2e_speedup", bench.e2e_speedup());
    reg.inc(
        "pipeline_bench.total.identical",
        u64::from(bench.all_identical()),
    );
    for r in &bench.features {
        let base = format!("pipeline_bench.features.{}", r.design);
        reg.inc(&format!("{base}.samples"), r.samples as u64);
        reg.inc(&format!("{base}.identical"), u64::from(r.identical));
        reg.set_gauge(
            &format!("{base}.extract_reference_ms"),
            r.extract_reference_ms,
        );
        reg.set_gauge(&format!("{base}.extract_soa_ms"), r.extract_soa_ms);
        reg.set_gauge(&format!("{base}.stage_reference_ms"), r.stage_reference_ms);
        reg.set_gauge(&format!("{base}.stage_soa_ms"), r.stage_soa_ms);
        reg.set_gauge(&format!("{base}.speedup"), r.speedup());
        reg.set_gauge(&format!("{base}.stage_speedup"), r.stage_speedup());
    }
    for r in &bench.e2e {
        let base = format!("pipeline_bench.e2e.workers{}", r.workers);
        reg.inc(&format!("{base}.identical"), u64::from(r.identical));
        reg.set_gauge(&format!("{base}.serial_ms"), r.serial_ms);
        reg.set_gauge(&format!("{base}.pipelined_ms"), r.pipelined_ms);
        reg.set_gauge(&format!("{base}.speedup"), r.speedup());
    }
    reg.into_snapshot()
}

/// Serialize through the workspace-wide `obskit.metrics.v1` JSON schema
/// (same format as the other BENCH files).
pub fn to_json(bench: &PipelineBench, effort: Effort) -> String {
    crate::artifact::bench_json("experiments pipeline-bench", effort, &to_metrics(bench))
}

/// Human-readable tables for stdout.
pub fn render(bench: &PipelineBench) -> String {
    let mut out = String::from("FEATURE EXTRACTION: SOA KERNEL VS REFERENCE PER-NODE PATH\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8} {:>10}\n",
        "design",
        "samples",
        "extract ref",
        "extract soa",
        "speedup",
        "stage ref",
        "stage soa",
        "speedup",
        "identical"
    ));
    for r in &bench.features {
        out.push_str(&format!(
            "{:<10} {:>8} {:>10.2}ms {:>10.2}ms {:>7.2}x {:>10.2}ms {:>10.2}ms {:>7.2}x {:>10}\n",
            r.design,
            r.samples,
            r.extract_reference_ms,
            r.extract_soa_ms,
            r.speedup(),
            r.stage_reference_ms,
            r.stage_soa_ms,
            r.stage_speedup(),
            r.identical,
        ));
    }
    out.push_str(&format!(
        "extraction-kernel speedup: {:.2}x | features-stage speedup: {:.2}x\n\n",
        bench.features_speedup(),
        bench.stage_speedup()
    ));
    out.push_str("DATASET BUILD: PIPELINED+SOA STACK VS SERIAL+REFERENCE STACK\n");
    out.push_str(&format!(
        "{:<8} {:>11} {:>13} {:>8} {:>10}\n",
        "workers", "serial ms", "pipelined ms", "speedup", "identical"
    ));
    for r in &bench.e2e {
        out.push_str(&format!(
            "{:<8} {:>11.1} {:>13.1} {:>7.2}x {:>10}\n",
            r.workers,
            r.serial_ms,
            r.pipelined_ms,
            r.speedup(),
            r.identical,
        ));
    }
    out.push_str(&format!("e2e speedup: {:.2}x\n", bench.e2e_speedup()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bench_is_bit_identical_and_speedups_are_finite() {
        let bench = run(Effort::Fast);
        assert_eq!(bench.features.len(), 2);
        assert_eq!(bench.e2e.len(), 3);
        assert!(
            bench.all_identical(),
            "optimised stack changed the dataset: {bench:?}"
        );
        assert!(bench.features_speedup() > 0.0);
        assert!(bench.e2e_speedup() > 0.0);
        for r in &bench.features {
            assert!(r.samples > 0);
        }
    }

    fn sample_bench() -> PipelineBench {
        PipelineBench {
            features: vec![FeatureKernelRow {
                design: "d".into(),
                samples: 64,
                extract_reference_ms: 8.0,
                extract_soa_ms: 2.0,
                stage_reference_ms: 10.0,
                stage_soa_ms: 4.0,
                identical: true,
            }],
            e2e: vec![EndToEndRow {
                workers: 2,
                serial_ms: 30.0,
                pipelined_ms: 20.0,
                identical: true,
            }],
        }
    }

    #[test]
    fn metrics_follow_shared_naming_scheme() {
        let snap = to_metrics(&sample_bench());
        assert_eq!(snap.counters["pipeline_bench.features.d.samples"], 64);
        assert_eq!(snap.counters["pipeline_bench.total.identical"], 1);
        assert_eq!(snap.gauges["pipeline_bench.features.d.speedup"], 4.0);
        assert_eq!(snap.gauges["pipeline_bench.features.d.stage_speedup"], 2.5);
        assert_eq!(snap.gauges["pipeline_bench.e2e.workers2.speedup"], 1.5);
        assert_eq!(snap.gauges["pipeline_bench.total.features_speedup"], 4.0);
        assert_eq!(snap.gauges["pipeline_bench.total.stage_speedup"], 2.5);
    }

    #[test]
    fn json_uses_obskit_metrics_schema() {
        let j = to_json(&sample_bench(), Effort::Fast);
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""), "{j}");
        assert!(
            j.contains("\"tool\": \"experiments pipeline-bench\""),
            "{j}"
        );
        assert!(j.contains("pipeline_bench.e2e.workers2.serial_ms"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
