//! # congestion-bench
//!
//! The experiment harness: one runner per table and figure of the paper's
//! evaluation, shared between the `experiments` CLI and the Criterion
//! benchmarks.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — Face Detection with vs without directives |
//! | [`fig1`] | Fig 1 — congestion maps of the two implementations |
//! | [`table3`] | Table III — benchmark property summary |
//! | [`table4`] | Table IV — model accuracy (filtered / not filtered) |
//! | [`table5`] | Table V — important feature categories |
//! | [`table6`] | Table VI — case study performance improvement |
//! | [`fig5`] | Fig 5 — spatial distribution of vertical congestion |
//! | [`fig6`] | Fig 6 — congestion maps of the case-study steps |
//! | [`ablation`] | design-choice ablations called out in DESIGN.md |
//! | [`place_bench`] | placement-kernel comparison recorded in BENCH_place.json |
//! | [`pipeline_bench`] | dataset-build stack comparison recorded in BENCH_pipeline.json |
//! | [`router_bench`] | routing-kernel comparison recorded in BENCH_route.json |
//! | [`train_bench`] | GBRT training-kernel comparison recorded in BENCH_train.json |
//! | [`serve_bench`] | `congestd` latency/shed-rate run recorded in BENCH_serve.json |

pub mod ablation;
pub mod artifact;
pub mod designs;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod metrics;
pub mod pipeline_bench;
pub mod place_bench;
pub mod regress;
pub mod router_bench;
pub mod serve_bench;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod train_bench;

pub use designs::Effort;
pub use metrics::DesignMetrics;
