//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--fast] [--grid-search] [--gbrt-kernel <histogram|exact>] [--gbrt-bins <n>]
//!             [--place-kernel <delta|reference>] [--extract-kernel <soa|reference>]
//!             [--pipeline-depth <n>]
//!             <table1|table3|table4|table5|table6|fig1|fig5|fig6|dataset|ablation|place-bench|router-bench|train-bench|pipeline-bench|serve-bench|all>
//! experiments --version
//! ```
//!
//! Reports are printed to stdout and written under `reports/`. The shared
//! observability flags `--trace-out <file>`, `--metrics-out <file>` and
//! `--profile` export an obskit Chrome trace / metrics snapshot / profile
//! table covering every experiment run by the invocation.

use congestion_bench::designs::Effort;
use congestion_bench::*;
use std::fs;
use std::path::Path;

/// Flags that consume the next token; the experiment selector must not
/// mistake their values for an experiment name.
const VALUE_FLAGS: &[&str] = &[
    "--trace-out",
    "--metrics-out",
    "--ledger-out",
    "--fault-plan",
    "--max-retries",
    "--stage-timeout-ms",
    "--checkpoint-dir",
    "--gbrt-kernel",
    "--gbrt-bins",
    "--place-kernel",
    "--extract-kernel",
    "--pipeline-depth",
];

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

/// First token that is neither a flag nor a value-taking flag's value.
fn selector(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a.clone());
    }
    None
}

fn version_string() -> String {
    format!(
        "experiments {} (git {})",
        env!("CARGO_PKG_VERSION"),
        option_env!("GIT_HASH").unwrap_or("unknown")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("{}", version_string());
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    let grid = args.iter().any(|a| a == "--grid-search");
    let effort = if fast { Effort::Fast } else { Effort::Full };
    let what = selector(&args).unwrap_or_else(|| "all".to_string());

    // GBRT kernel overrides, applied to every experiment that trains models.
    let gbrt_kernel = flag(&args, "--gbrt-kernel").map(|s| {
        mlkit::GbrtKernel::parse(s).unwrap_or_else(|| {
            eprintln!("bad --gbrt-kernel `{s}` (expected histogram|exact)");
            std::process::exit(2);
        })
    });
    let gbrt_bins = flag(&args, "--gbrt-bins").map(|s| {
        s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("bad --gbrt-bins `{s}` (expected a bin count)");
            std::process::exit(2);
        })
    });
    // Placement kernel override, applied to the dataset experiment's flow.
    let place_kernel = flag(&args, "--place-kernel").map(|s| {
        fpga_fabric::PlaceKernel::parse(s).unwrap_or_else(|| {
            eprintln!("bad --place-kernel `{s}` (expected delta|reference)");
            std::process::exit(2);
        })
    });
    // Feature-extraction kernel and pipelined-executor depth, applied to
    // the dataset experiment's flow.
    let extract_kernel = flag(&args, "--extract-kernel").map(|s| {
        congestion_core::features::ExtractKernel::parse(s).unwrap_or_else(|| {
            eprintln!("bad --extract-kernel `{s}` (expected soa|reference)");
            std::process::exit(2);
        })
    });
    let pipeline_depth = flag(&args, "--pipeline-depth").map(|s| {
        s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("bad --pipeline-depth `{s}` (expected an in-flight design count)");
            std::process::exit(2);
        })
    });
    let train_opts = |grid_search: bool| {
        let mut opts = effort.train(grid_search);
        if let Some(k) = gbrt_kernel {
            opts.gbrt_kernel = k;
        }
        if let Some(b) = gbrt_bins {
            opts.gbrt_bins = b;
        }
        opts
    };

    fs::create_dir_all("reports").ok();

    // Session-wide collector: every experiment gets a span, and experiments
    // that produce their own records (dataset, router-bench) merge them in.
    let obs = obskit::Collector::new();

    let run_one = |name: &str| {
        let _span = obs.span_cat(name, "experiment");
        match name {
            "table1" => {
                let t = table1::run(effort);
                emit("table1", &t.render());
                println!("shape holds: {}", t.shape_holds());
            }
            "fig1" => {
                let f = fig1::run(effort);
                for fig in [&f.with_directives, &f.without_directives] {
                    emit(&format!("fig1_{}_vertical", fig.label), &fig.vertical_art);
                    emit(
                        &format!("fig1_{}_horizontal", fig.label),
                        &fig.horizontal_art,
                    );
                    write_file(&format!("fig1_{}.csv", fig.label), &fig.csv);
                    println!("{}: max congestion {:.2}%", fig.label, fig.max_congestion);
                }
            }
            "table3" => {
                let (t, _) = table3::run(effort);
                emit("table3", &t.render());
            }
            "table4" => {
                let (t3, ds) = table3::run(effort);
                emit("table3", &t3.render());
                let t = table4::run_with(&ds, &train_opts(grid));
                emit("table4", &t.render());
                println!(
                    "GBRT wins: {}, filtering helps: {}",
                    t.gbrt_wins(),
                    t.filtering_helps()
                );
            }
            "table5" => {
                let (_, ds) = table3::run(effort);
                let filtered = congestion_core::filter::filter_marginal(&ds, &Default::default());
                let t = table5::run_on(&filtered.kept, effort);
                emit("table5", &t.render());
            }
            "table6" => {
                let t = table6::run(effort);
                emit("table6", &t.render());
                println!("shape holds: {}", t.shape_holds());
            }
            "fig5" => {
                let f = fig5::run(effort);
                emit("fig5", &f.render());
                println!("center exceeds margin: {}", f.center_exceeds_margin());
            }
            "fig6" => {
                let f = fig6::run(effort);
                let mut summary = String::from("FIG 6. RESOLVING ROUTING CONGESTION\n");
                for s in &f.steps {
                    emit(&format!("fig6_{}_vertical", s.label), &s.vertical_art);
                    emit(&format!("fig6_{}_horizontal", s.label), &s.horizontal_art);
                    summary.push_str(&format!(
                        "{}: peak {:.0}%, {} tiles over 100%\n",
                        s.label, s.max_congestion, s.congested_tiles
                    ));
                }
                emit("fig6_summary", &summary);
                println!("peak congestion recedes: {}", f.peak_recedes());
            }
            "dataset" => {
                // Parallel supervised dataset build over the training suite,
                // with the per-design / per-stage timing breakdown. Worker
                // count honours RAYON_NUM_THREADS; the robustness flags
                // (--fault-plan/--max-retries/--stage-timeout-ms/
                // --checkpoint-dir/--resume) mirror `hls-congest dataset`.
                let mut flow = effort.flow();
                if let Some(k) = place_kernel {
                    flow.par.placer.kernel = k;
                }
                if let Some(k) = extract_kernel {
                    flow = flow.with_extract_kernel(k);
                }
                if let Some(d) = pipeline_depth {
                    flow = flow.with_pipeline_depth(d);
                }
                if let Some(path) = flag(&args, "--fault-plan") {
                    match fs::read_to_string(path)
                        .map_err(|e| e.to_string())
                        .and_then(|t| faultkit::FaultPlan::from_json(&t).map_err(|e| e.to_string()))
                    {
                        Ok(plan) => {
                            eprintln!("armed fault plan {path} (seed {})", plan.seed);
                            flow = flow.with_fault_plan(plan);
                        }
                        Err(e) => {
                            eprintln!("bad --fault-plan {path}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(n) = flag(&args, "--max-retries") {
                    flow.supervision.max_retries = n.parse().expect("--max-retries takes a number");
                }
                if let Some(ms) = flag(&args, "--stage-timeout-ms") {
                    let ms: u64 = ms.parse().expect("--stage-timeout-ms takes milliseconds");
                    flow.supervision.stage_timeout = Some(std::time::Duration::from_millis(ms));
                }
                if let Some(dir) = flag(&args, "--checkpoint-dir") {
                    flow = flow.with_checkpoint(dir, args.iter().any(|a| a == "--resume"));
                }
                let modules = designs::training_suite();
                let report = flow.build_dataset_report(&modules);
                emit("dataset_timing", &report.render());
                obs.absorb(report.obs.clone());
            }
            "ablation" => {
                let (_, ds) = table3::run(effort);
                let filtered = congestion_core::filter::filter_marginal(&ds, &Default::default());
                let results = ablation::category_knockout(&filtered.kept, effort);
                let mut text = String::from("ABLATION: CATEGORY KNOCK-OUT (GBRT, vertical)\n");
                for r in &results {
                    text.push_str(&format!(
                        "  -{:<20} MAE {:>6.2} (baseline {:>6.2}, delta {:+.2})\n",
                        r.category,
                        r.mae,
                        r.baseline_mae,
                        r.delta()
                    ));
                }
                // Two-hop ablation.
                let no2 = ablation::without_two_hop(&filtered.kept);
                let opts = effort.train(false);
                let (tr, te) = no2.split(0.2, 23);
                let mae_no2 = congestion_core::predict::CongestionPredictor::train(
                    congestion_core::ModelKind::Gbrt,
                    congestion_core::Target::Vertical,
                    &tr,
                    &opts,
                )
                .evaluate(&te)
                .mae;
                text.push_str(&format!("  1-hop-only features: MAE {mae_no2:.2}\n"));
                emit("ablation", &text);
            }
            "place-bench" => {
                // Placement-kernel head-to-head; `--fast` restricts the corpus
                // to the small designs (used by the CI smoke run). Full effort
                // also refreshes the BENCH_place.json baseline at the repo root
                // through the canonical writer (same bytes in both copies).
                let rows = place_bench::run(effort);
                emit("place_bench", &place_bench::render(&rows));
                let json = place_bench::to_json(&rows, effort);
                artifact::write_bench(
                    "place_bench.json",
                    "BENCH_place.json",
                    &json,
                    effort == Effort::Full,
                );
                obs.absorb(obskit::ObsRecord {
                    events: Vec::new(),
                    metrics: place_bench::to_metrics(&rows),
                });
            }
            "router-bench" => {
                // Routing-kernel head-to-head; `--fast` restricts the corpus to
                // the small designs (used by the CI smoke run). Full effort also
                // refreshes the BENCH_route.json baseline at the repo root.
                let rows = router_bench::run(effort);
                emit("router_bench", &router_bench::render(&rows));
                let json = router_bench::to_json(&rows, effort);
                artifact::write_bench(
                    "router_bench.json",
                    "BENCH_route.json",
                    &json,
                    effort == Effort::Full,
                );
                obs.absorb(obskit::ObsRecord {
                    events: Vec::new(),
                    metrics: router_bench::to_metrics(&rows),
                });
            }
            "pipeline-bench" => {
                // Dataset-build stack head-to-head (SoA extraction kernel and
                // the pipelined executor vs the reference stack); `--fast`
                // shrinks the corpus (the CI smoke run). Full effort also
                // refreshes the BENCH_pipeline.json baseline at the repo root.
                let bench = pipeline_bench::run(effort);
                emit("pipeline_bench", &pipeline_bench::render(&bench));
                let json = pipeline_bench::to_json(&bench, effort);
                artifact::write_bench(
                    "pipeline_bench.json",
                    "BENCH_pipeline.json",
                    &json,
                    effort == Effort::Full,
                );
                obs.absorb(obskit::ObsRecord {
                    events: Vec::new(),
                    metrics: pipeline_bench::to_metrics(&bench),
                });
            }
            "train-bench" => {
                // GBRT training-kernel head-to-head; `--fast` shrinks the
                // suite and stage count (the CI smoke run). Full effort also
                // refreshes the BENCH_train.json baseline at the repo root.
                let rows = train_bench::run(effort);
                emit("train_bench", &train_bench::render(&rows));
                let json = train_bench::to_json(&rows, effort);
                artifact::write_bench(
                    "train_bench.json",
                    "BENCH_train.json",
                    &json,
                    effort == Effort::Full,
                );
                obs.absorb(obskit::ObsRecord {
                    events: Vec::new(),
                    metrics: train_bench::to_metrics(&rows),
                });
            }
            "serve-bench" => {
                // congestd serving benchmark: in-process throughput (p50/p99,
                // predictions/s) plus a paced 2× overload run measuring the
                // shed rate and the every-request-answered invariant. Full
                // effort refreshes the BENCH_serve.json baseline.
                let bench = serve_bench::run(effort);
                emit("serve_bench", &serve_bench::render(&bench));
                let json = serve_bench::to_json(&bench, effort);
                artifact::write_bench(
                    "serve_bench.json",
                    "BENCH_serve.json",
                    &json,
                    effort == Effort::Full,
                );
                obs.absorb(obskit::ObsRecord {
                    events: Vec::new(),
                    metrics: serve_bench::to_metrics(&bench),
                });
            }
            "regress" => {
                // The quality regression gate: validate the committed
                // BENCH_*.json baselines (schema, meta stamps, perf/accuracy
                // tolerance bands, determinism invariants), the reports/
                // mirrors, and the run ledger. Nonzero exit on any finding —
                // CI runs this after the bench smokes.
                let ledger = flag(&args, "--ledger-out")
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| Path::new("reports").join("runs.jsonl"));
                let report = regress::run(Path::new("."), Some(&ledger));
                emit("regress", &report.render());
                if !report.ok() {
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                std::process::exit(2);
            }
        }
    };

    if what == "all" {
        for name in [
            "table1", "fig1", "table3", "table4", "table5", "table6", "fig5", "fig6", "ablation",
        ] {
            println!("=== {name} ===");
            run_one(name);
        }
    } else {
        run_one(&what);
    }

    let rec = obs.finish();
    // Run ledger: one `obskit.run.v1` line per invocation, stamped with the
    // config digest, active kernels, per-experiment stage timings, and the
    // session metric snapshot. `regress` only reads the ledger.
    if what != "regress" {
        if let Some(path) = flag(&args, "--ledger-out") {
            let mut run_rec = obskit::RunRecord::new(
                "experiments",
                &what,
                env!("CARGO_PKG_VERSION"),
                option_env!("GIT_HASH").unwrap_or("unknown"),
            );
            run_rec.config_digest =
                format!("{:016x}", faultkit::fnv1a(&[args.join(" ").as_bytes()]));
            artifact::stamp_kernels(&mut run_rec);
            run_rec.note("effort", effort.name());
            for e in &rec.events {
                if e.cat == "experiment" {
                    run_rec.stage_ms(&e.name, e.dur_us as f64 / 1e3);
                }
            }
            run_rec.absorb_metrics(&rec.metrics);
            if let Err(e) = run_rec.append_to(Path::new(path)) {
                eprintln!("warning: could not append run record to {path}: {e}");
            } else {
                eprintln!("appended run record to {path}");
            }
        }
    }
    if let Some(path) = flag(&args, "--trace-out") {
        if let Err(e) = fs::write(path, obskit::sink::chrome_trace_json(&rec.events)) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote Chrome trace to {path} (load in chrome://tracing or ui.perfetto.dev)");
        }
    }
    if let Some(path) = flag(&args, "--metrics-out") {
        let meta = [
            ("tool", "experiments"),
            ("version", env!("CARGO_PKG_VERSION")),
            ("git", option_env!("GIT_HASH").unwrap_or("unknown")),
        ];
        if let Err(e) = fs::write(path, obskit::sink::metrics_json(&rec.metrics, &meta)) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote metrics snapshot to {path}");
        }
    }
    if args.iter().any(|a| a == "--profile") {
        println!("{}", obskit::sink::profile_table(&rec));
    }
}

fn emit(name: &str, text: &str) {
    println!("{text}");
    write_file(&format!("{name}.txt"), text);
}

fn write_file(name: &str, text: &str) {
    let path = Path::new("reports").join(name);
    if let Err(e) = fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
