//! Design-level implementation metrics shared by several tables.

use congestion_core::pipeline::CongestionFlow;
use fpga_fabric::ImplResult;
use hls_ir::Module;
use hls_synth::SynthesizedDesign;

/// Implementation summary of one design (the columns of Tables I/VI).
#[derive(Debug, Clone)]
pub struct DesignMetrics {
    /// Design name.
    pub name: String,
    /// Worst negative slack (ns).
    pub wns_ns: f64,
    /// Maximum frequency (MHz).
    pub fmax_mhz: f64,
    /// Latency (cycles).
    pub latency_cycles: u64,
    /// Maximum vertical congestion (%).
    pub max_vertical: f64,
    /// Maximum horizontal congestion (%).
    pub max_horizontal: f64,
    /// Number of tiles over 100 % in either direction.
    pub congested_tiles: usize,
}

impl DesignMetrics {
    /// Gather metrics from an implemented design.
    pub fn from_impl(name: &str, design: &SynthesizedDesign, res: &ImplResult) -> DesignMetrics {
        DesignMetrics {
            name: name.to_string(),
            wns_ns: res.timing.wns_ns,
            fmax_mhz: res.timing.fmax_mhz,
            latency_cycles: design.report.latency_cycles(),
            max_vertical: res.congestion.max_vertical(),
            max_horizontal: res.congestion.max_horizontal(),
            congested_tiles: res.congestion.tiles_over(100.0),
        }
    }

    /// Implement `module` with `flow` and gather metrics.
    ///
    /// # Panics
    /// Panics if synthesis fails (generator bug).
    pub fn measure(
        flow: &CongestionFlow,
        module: &Module,
    ) -> (DesignMetrics, SynthesizedDesign, ImplResult) {
        let (design, res) = flow.implement(module).expect("synthesis must succeed");
        let m = DesignMetrics::from_impl(&module.name, &design, &res);
        (m, design, res)
    }

    /// The larger of the two max congestion values ("Max Congestion").
    pub fn max_congestion(&self) -> f64 {
        self.max_vertical.max(self.max_horizontal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::Effort;
    use hls_ir::frontend::compile_named;

    #[test]
    fn metrics_are_finite() {
        let flow = Effort::Fast.flow();
        let m = compile_named(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
            "tiny",
        )
        .unwrap();
        let (metrics, _, _) = DesignMetrics::measure(&flow, &m);
        assert!(metrics.fmax_mhz > 0.0);
        assert!(metrics.latency_cycles > 0);
        assert!(metrics.max_congestion() >= 0.0);
    }
}
