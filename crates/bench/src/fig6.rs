//! **Fig 6** — congestion maps of the case-study steps (Baseline /
//! Not Inline / Replication), vertical and horizontal.

use crate::designs::{face_detection, Effort};
use rosetta_gen::face_detection::FdVariant;

/// One step's rendered maps.
#[derive(Debug, Clone)]
pub struct StepMaps {
    /// Step label.
    pub label: String,
    /// Vertical ASCII heat map.
    pub vertical_art: String,
    /// Horizontal ASCII heat map.
    pub horizontal_art: String,
    /// Tiles over 100 %.
    pub congested_tiles: usize,
    /// Peak congestion (max of vertical and horizontal), in %.
    pub max_congestion: f64,
}

/// Fig 6 result.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Baseline, Not Inline, Replication.
    pub steps: Vec<StepMaps>,
}

impl Fig6 {
    /// Whether the paper's claim holds: the baseline's congestion hotspot
    /// is the worst of the three maps — both resolution steps bring peak
    /// congestion down. This is Table VI's "Max Cong" metric; the congested
    /// *area* is placement-dependent (a strong placer packs the flat
    /// baseline into a sharper but smaller hotspot) and is reported per
    /// step without an ordering claim.
    pub fn peak_recedes(&self) -> bool {
        let base = self.steps[0].max_congestion;
        self.steps[1..].iter().all(|s| s.max_congestion <= base)
    }
}

/// Run the Fig 6 experiment. Steps are implemented on parallel workers;
/// `parkit::par_map` keeps them in case-study order.
pub fn run(effort: Effort) -> Fig6 {
    let flow = effort.flow();
    let variants = [
        (FdVariant::Optimized, "baseline"),
        (FdVariant::NoInline, "not_inline"),
        (FdVariant::Replicated, "replication"),
    ];
    let steps = parkit::par_map(&variants, |&(variant, label)| {
        let (_, res) = flow
            .implement(&face_detection(variant))
            .expect("synthesis must succeed");
        StepMaps {
            label: label.to_string(),
            vertical_art: res.congestion.render(true),
            horizontal_art: res.congestion.render(false),
            congested_tiles: res.congestion.tiles_over(100.0),
            max_congestion: res.congestion.max_any(),
        }
    });
    Fig6 { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_steps_rendered() {
        let f = run(Effort::Fast);
        assert_eq!(f.steps.len(), 3);
        for s in &f.steps {
            assert_eq!(s.vertical_art.lines().count(), 120);
            assert_eq!(s.horizontal_art.lines().count(), 120);
        }
        assert!(
            f.peak_recedes(),
            "resolution steps must not exceed the baseline's peak congestion: {:?}",
            f.steps
                .iter()
                .map(|s| (s.label.as_str(), s.max_congestion))
                .collect::<Vec<_>>()
        );
    }
}
