//! **Table VI** — the Face Detection case study: Baseline → Not Inline →
//! Replication, each resolving congestion further.
//!
//! Expected shape (paper): max congestion drops from the baseline and
//! Fmax rises, while latency increases only slightly. #Congested CLBs is
//! reported but carries no ordering claim — the congested *area* depends
//! on placement quality (the delta placer packs the flat baseline into a
//! sharper, smaller hotspot than the larger modular variants can reach).

use crate::designs::{face_detection, Effort};
use crate::metrics::DesignMetrics;
use rosetta_gen::face_detection::FdVariant;
use std::fmt::Write;

/// Table VI result.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Baseline (optimized, inlined).
    pub baseline: DesignMetrics,
    /// Step 1: remove inlining.
    pub not_inline: DesignMetrics,
    /// Step 2: replicate the shared window buffer.
    pub replication: DesignMetrics,
}

impl Table6 {
    /// The three steps in order.
    pub fn steps(&self) -> [&DesignMetrics; 3] {
        [&self.baseline, &self.not_inline, &self.replication]
    }

    /// Whether the paper's qualitative shape holds: both resolution steps
    /// bring peak congestion below the baseline's, and frequency recovers.
    pub fn shape_holds(&self) -> bool {
        let s = self.steps();
        s[0].max_congestion() >= s[1].max_congestion()
            && s[0].max_congestion() >= s[2].max_congestion()
            && s[0].fmax_mhz <= s[2].fmax_mhz
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "TABLE VI. CASE STUDY: PERFORMANCE IMPROVEMENT\n\
             {:<14} {:>9} {:>12} {:>16} {:>22} {:>18}",
            "Implementation",
            "WNS(ns)",
            "MaxFreq(MHz)",
            "dLatency(cycles)",
            "Max Cong Vert,Hori(%)",
            "#Congested CLBs"
        );
        let base_latency = self.baseline.latency_cycles as i64;
        for (label, m) in [
            ("Baseline", &self.baseline),
            ("Not Inline", &self.not_inline),
            ("Replication", &self.replication),
        ] {
            let _ = writeln!(
                out,
                "{:<14} {:>9.3} {:>12.1} {:>+16} {:>11.2},{:>9.2} {:>18}",
                label,
                m.wns_ns,
                m.fmax_mhz,
                m.latency_cycles as i64 - base_latency,
                m.max_vertical,
                m.max_horizontal,
                m.congested_tiles
            );
        }
        out
    }
}

/// Run the Table VI experiment. The three case-study steps are independent
/// implementations, so they run on parallel workers.
pub fn run(effort: Effort) -> Table6 {
    let flow = effort.flow();
    let variants = [
        FdVariant::Optimized,
        FdVariant::NoInline,
        FdVariant::Replicated,
    ];
    let mut metrics = parkit::par_map(&variants, |&v| {
        DesignMetrics::measure(&flow, &face_detection(v)).0
    })
    .into_iter();
    Table6 {
        baseline: metrics.next().unwrap(),
        not_inline: metrics.next().unwrap(),
        replication: metrics.next().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reduces_congestion() {
        let t = run(Effort::Fast);
        assert!(
            t.baseline.max_congestion() > t.replication.max_congestion(),
            "resolution steps must cut congestion: {} -> {}",
            t.baseline.max_congestion(),
            t.replication.max_congestion()
        );
        assert!(
            t.baseline.max_congestion() > t.not_inline.max_congestion(),
            "removing inlining must cut peak congestion: {} -> {}",
            t.baseline.max_congestion(),
            t.not_inline.max_congestion()
        );
        let text = t.render();
        assert!(text.contains("Replication"));
    }
}
