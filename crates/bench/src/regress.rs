//! The perf/accuracy regression gate behind `experiments regress`.
//!
//! The gate loads the committed `BENCH_*.json` baselines (plus their
//! `reports/` mirrors and the optional run ledger), validates them against
//! the `obskit.metrics.v1` schema, and applies tolerance bands: perf
//! gauges get ratio floors, accuracy gauges get absolute bands, and
//! determinism counters must hold exactly. Any violation is a [`Finding`];
//! a non-empty report makes `experiments regress` exit nonzero, which is
//! what CI keys off.
//!
//! Band philosophy: wall-clock derived gauges are noisy, so floors sit
//! well below the committed values (e.g. the routing corpus speedup is
//! 4.1x, the floor is 1.5x) — the gate catches "the optimisation stopped
//! working" or "someone committed a smoke run as a baseline", not 10 %
//! jitter. Tiny designs (`mac16`) are never banded on time. Search-work
//! counters and bit-identity verdicts are deterministic, so those checks
//! are exact. Raising a band on purpose means regenerating the baseline
//! with a full-effort run and committing both the JSON and the band edit
//! in the same change (see DESIGN.md §13).

use faultkit::json::{parse, Value};
use std::fs;
use std::path::Path;

/// The committed baselines the gate covers: `(root baseline, reports/
/// mirror)`. Both files come from one serialized string (see
/// [`crate::artifact::write_bench`]), so when the mirror records a
/// full-effort run the two must be byte-identical.
pub const BASELINES: &[(&str, &str)] = &[
    ("BENCH_place.json", "place_bench.json"),
    ("BENCH_route.json", "router_bench.json"),
    ("BENCH_train.json", "train_bench.json"),
    ("BENCH_pipeline.json", "pipeline_bench.json"),
    ("BENCH_serve.json", "serve_bench.json"),
];

/// One violated invariant or tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The artifact the violation was found in.
    pub artifact: String,
    /// Which check tripped (short machine-ish name).
    pub check: String,
    /// Human-readable explanation with the observed and allowed values.
    pub detail: String,
}

impl Finding {
    fn new(artifact: &str, check: &str, detail: String) -> Finding {
        Finding {
            artifact: artifact.to_string(),
            check: check.to_string(),
            detail,
        }
    }
}

/// The gate's verdict over every artifact it could load.
#[derive(Debug, Clone, Default)]
pub struct RegressReport {
    /// Artifacts that were loaded and checked.
    pub checked: Vec<String>,
    /// Checks that could not run (missing optional artifact, fast-effort
    /// mirror) — reported, not fatal.
    pub skipped: Vec<String>,
    /// Violations. Empty means the gate passes.
    pub findings: Vec<Finding>,
}

impl RegressReport {
    /// True when no check found a regression.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable gate report for stdout.
    pub fn render(&self) -> String {
        let mut out = String::from("QUALITY REGRESSION GATE\n");
        for c in &self.checked {
            out.push_str(&format!("  checked {c}\n"));
        }
        for s in &self.skipped {
            out.push_str(&format!("  skipped {s}\n"));
        }
        if self.ok() {
            out.push_str("PASS: all baselines within tolerance bands\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!(
                    "REGRESSION [{}] {}: {}\n",
                    f.artifact, f.check, f.detail
                ));
            }
            out.push_str(&format!("FAIL: {} regression(s)\n", self.findings.len()));
        }
        out
    }
}

fn gauge(doc: &Value, key: &str) -> Option<f64> {
    doc.get("gauges")?.get(key)?.as_f64()
}

fn counter(doc: &Value, key: &str) -> Option<u64> {
    doc.get("counters")?.get(key)?.as_u64()
}

/// Counter-key middle segments: `<prefix>.<design>.<suffix>` → `design`.
fn middle_segments(doc: &Value, prefix: &str, suffix: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
        for key in counters.keys() {
            if let Some(rest) = key.strip_prefix(prefix) {
                if let Some(mid) = rest.strip_suffix(suffix) {
                    if !mid.is_empty() && !mid.contains('.') {
                        out.push(mid.to_string());
                    }
                }
            }
        }
    }
    out
}

/// Schema + meta-completeness checks shared by every bench artifact: the
/// `obskit.metrics.v1` tag, the tool/version/git stamps, the effort stamp
/// and all four kernel stamps (satellite: baselines must record which
/// kernels produced them).
fn check_doc_shape(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    if doc.get("schema").and_then(Value::as_str) != Some("obskit.metrics.v1") {
        f.push(Finding::new(
            name,
            "schema",
            "missing or wrong schema tag (want obskit.metrics.v1)".to_string(),
        ));
        return f; // nothing else is trustworthy
    }
    let meta = doc.get("meta");
    for key in [
        "tool",
        "version",
        "git",
        "effort",
        "kernel.extract",
        "kernel.place",
        "kernel.route",
        "kernel.gbrt",
    ] {
        if meta
            .and_then(|m| m.get(key))
            .and_then(Value::as_str)
            .is_none()
        {
            f.push(Finding::new(
                name,
                "meta",
                format!("meta is missing the `{key}` stamp"),
            ));
        }
    }
    for section in ["counters", "gauges"] {
        if doc.get(section).and_then(Value::as_obj).is_none() {
            f.push(Finding::new(
                name,
                "shape",
                format!("missing `{section}` object"),
            ));
        }
    }
    f
}

/// Require `gauges[key] >= floor` (a perf ratio band).
fn floor_band(f: &mut Vec<Finding>, name: &str, doc: &Value, key: &str, floor: f64) {
    match gauge(doc, key) {
        Some(v) if v >= floor => {}
        Some(v) => f.push(Finding::new(
            name,
            "perf-band",
            format!("{key} = {v:.2} is below the {floor:.2} floor"),
        )),
        None => f.push(Finding::new(
            name,
            "perf-band",
            format!("required gauge `{key}` is missing"),
        )),
    }
}

fn place_checks(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    // Corpus-wide delta-kernel speedup (committed 2.2x).
    floor_band(&mut f, name, doc, "place_bench.total.speedup", 1.3);
    for design in middle_segments(doc, "place_bench.", ".cells") {
        let b = format!("place_bench.{design}");
        // Determinism/quality invariants: the delta kernel must not leave
        // more routed overflow or a materially worse cost than the
        // reference on any design.
        let d_over = counter(doc, &format!("{b}.delta.overflowed_tiles"));
        let r_over = counter(doc, &format!("{b}.reference_anneal.overflowed_tiles"));
        if let (Some(d), Some(r)) = (d_over, r_over) {
            if d > r {
                f.push(Finding::new(
                    name,
                    "quality",
                    format!("{b}: delta kernel leaves more overflow ({d} vs {r})"),
                ));
            }
        }
        let d_cost = gauge(doc, &format!("{b}.delta.cost"));
        let r_cost = gauge(doc, &format!("{b}.reference_anneal.cost"));
        if let (Some(d), Some(r)) = (d_cost, r_cost) {
            if d > r * 1.02 {
                f.push(Finding::new(
                    name,
                    "quality",
                    format!("{b}: delta cost {d:.0} exceeds reference {r:.0} by >2 %"),
                ));
            }
        }
    }
    f
}

fn route_checks(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    // The big-design speedup carries the optimisation's value (committed
    // 4.1x); small designs are sub-millisecond noise and are not banded.
    if gauge(doc, "router_bench.fd_opt.speedup").is_some() {
        floor_band(&mut f, name, doc, "router_bench.fd_opt.speedup", 1.5);
    } else {
        f.push(Finding::new(
            name,
            "coverage",
            "baseline lacks the fd_opt design (full-effort corpus)".to_string(),
        ));
    }
    for design in middle_segments(doc, "router_bench.", ".conns") {
        let b = format!("router_bench.{design}");
        // A* must never search more than the full-grid reference — the
        // window is a strict subset of the grid, so this is exact.
        let a = counter(doc, &format!("{b}.astar.expanded_nodes"));
        let r = counter(doc, &format!("{b}.reference_dijkstra.expanded_nodes"));
        if let (Some(a), Some(r)) = (a, r) {
            if a > r {
                f.push(Finding::new(
                    name,
                    "quality",
                    format!("{b}: astar expanded_nodes {a} exceeds reference {r}"),
                ));
            }
        }
        // Overflow quality gets a small band: the windowed kernel takes
        // slightly different detours, so parity ±5 % (+2 tiles for the
        // tiny designs) is the contract, not strict dominance.
        let a = counter(doc, &format!("{b}.astar.overflowed_tiles"));
        let r = counter(doc, &format!("{b}.reference_dijkstra.overflowed_tiles"));
        if let (Some(a), Some(r)) = (a, r) {
            if a as f64 > r as f64 * 1.05 + 2.0 {
                f.push(Finding::new(
                    name,
                    "quality",
                    format!("{b}: astar overflow {a} exceeds reference {r} by >5 %"),
                ));
            }
        }
    }
    f
}

fn train_checks(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    for target in ["vertical", "horizontal"] {
        let b = format!("train_bench.{target}");
        // Perf: the histogram kernel's fit speedup (committed 6.7x / 3.7x).
        floor_band(&mut f, name, doc, &format!("{b}.fit_speedup"), 1.5);
        let hist = gauge(doc, &format!("{b}.histogram.mae"));
        let serial = gauge(doc, &format!("{b}.histogram_serial.mae"));
        let exact = gauge(doc, &format!("{b}.reference_exact.mae"));
        match (hist, serial, exact) {
            (Some(h), Some(s), Some(e)) => {
                // Accuracy: absolute band against the exact-split kernel
                // (committed gap ≤ 0.1 MAE points) plus a hard ceiling.
                if (h - e).abs() > 2.0 {
                    f.push(Finding::new(
                        name,
                        "accuracy-band",
                        format!("{b}: histogram MAE {h:.2} drifts >2.0 from exact {e:.2}"),
                    ));
                }
                if h > 45.0 {
                    f.push(Finding::new(
                        name,
                        "accuracy-band",
                        format!("{b}: histogram MAE {h:.2} exceeds the 45.0 ceiling"),
                    ));
                }
                // Determinism: the serial and pooled histogram fits are the
                // same model, bit for bit.
                if h.to_bits() != s.to_bits() {
                    f.push(Finding::new(
                        name,
                        "determinism",
                        format!("{b}: worker count changed the model ({h} vs {s})"),
                    ));
                }
            }
            _ => f.push(Finding::new(
                name,
                "coverage",
                format!("{b}: missing histogram/serial/exact MAE gauges"),
            )),
        }
    }
    f
}

fn pipeline_checks(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    // Corpus-wide extraction-kernel speedup (committed 2.8x).
    floor_band(
        &mut f,
        name,
        doc,
        "pipeline_bench.total.features_speedup",
        1.5,
    );
    // Every bit-identity verdict must hold: the optimised stack reproduces
    // the baseline dataset exactly.
    let mut saw_identical = false;
    if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
        for (key, v) in counters {
            if key.ends_with(".identical") {
                saw_identical = true;
                if v.as_u64() != Some(1) {
                    f.push(Finding::new(
                        name,
                        "determinism",
                        format!("{key} != 1: optimised stack changed the dataset"),
                    ));
                }
            }
        }
    }
    if !saw_identical {
        f.push(Finding::new(
            name,
            "coverage",
            "baseline carries no .identical verdicts".to_string(),
        ));
    }
    f
}

fn serve_checks(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = Vec::new();
    // Liveness invariant: every request submitted during the paced 2×
    // overload run received exactly one typed reply. This is the serving
    // contract (shed-oldest answers with `overloaded`, never a stall), so
    // the check is exact, not banded.
    match counter(doc, "serve_bench.overload.every_request_answered") {
        Some(1) => {}
        Some(v) => f.push(Finding::new(
            name,
            "liveness",
            format!("overload run dropped replies (every_request_answered = {v})"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.overload.every_request_answered".to_string(),
        )),
    }
    let submitted = counter(doc, "serve_bench.overload.submitted");
    let answered = counter(doc, "serve_bench.overload.answered");
    match (submitted, answered) {
        (Some(s), Some(a)) if s == a => {}
        (Some(s), Some(a)) => f.push(Finding::new(
            name,
            "liveness",
            format!("overload answered {a} of {s} submitted requests"),
        )),
        _ => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.overload.submitted/answered".to_string(),
        )),
    }
    // Shed-rate band: at 2× offered load with shed-oldest admission the
    // steady-state shed rate sits near 0.5; the wide band only rejects a
    // queue that stopped shedding (underload) or shed everything (wedged
    // worker), not scheduler jitter.
    match gauge(doc, "serve_bench.overload.shed_rate") {
        Some(r) if (0.05..=0.95).contains(&r) => {}
        Some(r) => f.push(Finding::new(
            name,
            "quality",
            format!("2x-overload shed rate {r:.2} outside the (0.05, 0.95) band"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.overload.shed_rate".to_string(),
        )),
    }
    // Determinism: the overload phase is driven by a virtual clock (one
    // drain permit released per trace step), so the live shed set must
    // equal `shed_plan(capacity, trace)` verbatim — exact, not banded.
    match counter(doc, "serve_bench.overload.matches_shed_plan") {
        Some(1) => {}
        Some(v) => f.push(Finding::new(
            name,
            "determinism",
            format!("overload shed set diverged from shed_plan (matches_shed_plan = {v})"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.overload.matches_shed_plan".to_string(),
        )),
    }
    // Coalescing contract: merged micro-batch replies are bit-for-bit the
    // per-request replies (exact), and batching a saturated queue of
    // single-row requests must pay off. The committed speedup is well
    // above 2×; 1.5× is the acceptance floor with margin for CI noise.
    match counter(doc, "serve_bench.coalesce.identical") {
        Some(1) => {}
        Some(v) => f.push(Finding::new(
            name,
            "determinism",
            format!("coalesced replies diverged from per-request serving (identical = {v})"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.coalesce.identical".to_string(),
        )),
    }
    match gauge(doc, "serve_bench.coalesce.speedup") {
        Some(s) if s >= 1.5 => {}
        Some(s) => f.push(Finding::new(
            name,
            "perf",
            format!("coalescing speedup {s:.2}x below the 1.5x floor"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.coalesce.speedup".to_string(),
        )),
    }
    // Cache accounting: hits + misses == lookups always (the counters are
    // written under one lock), hit replies are bitwise the miss-path
    // replies, and the hot swap must have invalidated at least once.
    let lookups = counter(doc, "serve_bench.cache.lookups");
    let hits = counter(doc, "serve_bench.cache.hits");
    let misses = counter(doc, "serve_bench.cache.misses");
    match (lookups, hits, misses) {
        (Some(l), Some(h), Some(m)) if h + m == l && h > 0 => {}
        (Some(l), Some(h), Some(m)) => f.push(Finding::new(
            name,
            "quality",
            format!("cache accounting broken: {h} hits + {m} misses vs {l} lookups"),
        )),
        _ => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.cache.lookups/hits/misses".to_string(),
        )),
    }
    match counter(doc, "serve_bench.cache.identical") {
        Some(1) => {}
        Some(v) => f.push(Finding::new(
            name,
            "determinism",
            format!("cache-hit replies diverged from miss-path replies (identical = {v})"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.cache.identical".to_string(),
        )),
    }
    match counter(doc, "serve_bench.cache.invalidations") {
        Some(v) if v >= 1 => {}
        Some(v) => f.push(Finding::new(
            name,
            "quality",
            format!("hot swap did not invalidate the feature cache (invalidations = {v})"),
        )),
        None => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.cache.invalidations".to_string(),
        )),
    }
    // Perf floor: batched compiled-ensemble inference through the full
    // request path (committed ~1M predictions/s); the floor is ~20× under
    // the committed figure to absorb CI-machine noise.
    floor_band(
        &mut f,
        name,
        doc,
        "serve_bench.throughput.predictions_per_sec",
        50_000.0,
    );
    // Latency sanity: the server-side sketch must be populated and ordered.
    let p50 = gauge(doc, "serve_bench.throughput.p50_ms");
    let p99 = gauge(doc, "serve_bench.throughput.p99_ms");
    match (p50, p99) {
        (Some(a), Some(b)) if b + 1e-9 >= a => {}
        (Some(a), Some(b)) => f.push(Finding::new(
            name,
            "quality",
            format!("p99 {b:.3} ms below p50 {a:.3} ms"),
        )),
        _ => f.push(Finding::new(
            name,
            "coverage",
            "missing serve_bench.throughput.p50_ms/p99_ms".to_string(),
        )),
    }
    f
}

/// All checks for one parsed bench document, dispatched on the baseline
/// file name. Exposed so the perturbation test (and future tooling) can
/// gate an in-memory document without touching the filesystem.
pub fn check_metrics_doc(name: &str, doc: &Value) -> Vec<Finding> {
    let mut f = check_doc_shape(name, doc);
    if f.iter().any(|x| x.check == "schema") {
        return f;
    }
    if name.contains("place") {
        f.extend(place_checks(name, doc));
    } else if name.contains("route") {
        f.extend(route_checks(name, doc));
    } else if name.contains("train") {
        f.extend(train_checks(name, doc));
    } else if name.contains("pipeline") {
        f.extend(pipeline_checks(name, doc));
    } else if name.contains("serve") {
        f.extend(serve_checks(name, doc));
    }
    f
}

/// Structural checks over a run-ledger file (`runs.jsonl`): every line is
/// one valid `obskit.run.v1` record with the identity and kernel stamps.
/// Returns the record count alongside any findings.
pub fn check_ledger_text(name: &str, text: &str) -> (usize, Vec<Finding>) {
    let mut f = Vec::new();
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                f.push(Finding::new(
                    name,
                    "ledger-parse",
                    format!("line {}: {e}", i + 1),
                ));
                continue;
            }
        };
        records += 1;
        if rec.get("schema").and_then(Value::as_str) != Some(obskit::RUN_SCHEMA) {
            f.push(Finding::new(
                name,
                "ledger-schema",
                format!("line {}: schema tag is not {}", i + 1, obskit::RUN_SCHEMA),
            ));
            continue;
        }
        for key in ["tool", "kind", "git", "config_digest"] {
            if rec.get(key).and_then(Value::as_str).is_none() {
                f.push(Finding::new(
                    name,
                    "ledger-meta",
                    format!("line {}: record is missing `{key}`", i + 1),
                ));
            }
        }
        if rec.get("kernels").and_then(Value::as_obj).is_none() {
            f.push(Finding::new(
                name,
                "ledger-meta",
                format!("line {}: record is missing the `kernels` stamps", i + 1),
            ));
        }
    }
    (records, f)
}

/// Run the full gate rooted at `root` (the repo checkout): every committed
/// baseline, its `reports/` mirror when that mirror records a full-effort
/// run, and the run ledger when one exists at `ledger`.
pub fn run(root: &Path, ledger: Option<&Path>) -> RegressReport {
    let mut report = RegressReport::default();
    for (baseline, mirror) in BASELINES {
        let path = root.join(baseline);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                report.findings.push(Finding::new(
                    baseline,
                    "missing",
                    format!("cannot read committed baseline: {e}"),
                ));
                continue;
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                report
                    .findings
                    .push(Finding::new(baseline, "parse", e.to_string()));
                continue;
            }
        };
        report.findings.extend(check_metrics_doc(baseline, &doc));
        report.checked.push(baseline.to_string());

        // Pair consistency: the reports/ mirror and the root baseline come
        // from one writer, so a full-effort mirror must be byte-identical.
        // CI bench smokes overwrite the mirror with fast-effort runs; the
        // effort stamp tells the two apart, so those are skipped.
        let mirror_path = root.join("reports").join(mirror);
        match fs::read_to_string(&mirror_path) {
            Ok(mtext) => {
                let effort = parse(&mtext).ok().and_then(|d| {
                    d.get("meta")
                        .and_then(|m| m.get("effort"))
                        .and_then(|v| v.as_str().map(str::to_string))
                });
                if effort.as_deref() == Some("full") {
                    if mtext != text {
                        report.findings.push(Finding::new(
                            baseline,
                            "pair",
                            format!("reports/{mirror} differs from the root baseline"),
                        ));
                    } else {
                        report.checked.push(format!("reports/{mirror} (pair)"));
                    }
                } else {
                    report.skipped.push(format!(
                        "reports/{mirror} pair check (not a full-effort run)"
                    ));
                }
            }
            Err(_) => report
                .skipped
                .push(format!("reports/{mirror} pair check (mirror not present)")),
        }
    }
    if let Some(path) = ledger {
        match fs::read_to_string(path) {
            Ok(text) => {
                let (records, findings) = check_ledger_text(&path.display().to_string(), &text);
                report.findings.extend(findings);
                report
                    .checked
                    .push(format!("{} ({records} run records)", path.display()));
            }
            Err(_) => report
                .skipped
                .push(format!("{} (no ledger found)", path.display())),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// Rewrites one gauge inside a parsed document.
    fn set_gauge(doc: &mut Value, key: &str, v: f64) {
        if let Value::Obj(top) = doc {
            if let Some(Value::Obj(gauges)) = top.get_mut("gauges") {
                gauges.insert(key.to_string(), Value::Num(v));
            }
        }
    }

    #[test]
    fn committed_baselines_pass_the_gate() {
        let report = run(&repo_root(), None);
        assert!(report.checked.len() >= 5, "{}", report.render());
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn perturbed_perf_gauge_trips_the_gate() {
        let text = fs::read_to_string(repo_root().join("BENCH_place.json")).unwrap();
        let mut doc = parse(&text).unwrap();
        assert!(check_metrics_doc("BENCH_place.json", &doc).is_empty());
        set_gauge(&mut doc, "place_bench.total.speedup", 1.0);
        let f = check_metrics_doc("BENCH_place.json", &doc);
        assert!(
            f.iter().any(|x| x.check == "perf-band"),
            "perturbed speedup must trip the perf band: {f:?}"
        );
    }

    #[test]
    fn perturbed_accuracy_gauge_trips_the_gate() {
        let text = fs::read_to_string(repo_root().join("BENCH_train.json")).unwrap();
        let mut doc = parse(&text).unwrap();
        assert!(check_metrics_doc("BENCH_train.json", &doc).is_empty());
        set_gauge(&mut doc, "train_bench.vertical.histogram.mae", 99.0);
        let f = check_metrics_doc("BENCH_train.json", &doc);
        assert!(
            f.iter().any(|x| x.check == "accuracy-band"),
            "perturbed MAE must trip the accuracy band: {f:?}"
        );
        // ... and it also breaks the serial-equals-pooled determinism check.
        assert!(f.iter().any(|x| x.check == "determinism"), "{f:?}");
    }

    #[test]
    fn broken_identity_counter_trips_the_gate() {
        let text = fs::read_to_string(repo_root().join("BENCH_pipeline.json")).unwrap();
        let mut doc = parse(&text).unwrap();
        assert!(check_metrics_doc("BENCH_pipeline.json", &doc).is_empty());
        if let Value::Obj(top) = &mut doc {
            if let Some(Value::Obj(counters)) = top.get_mut("counters") {
                counters.insert(
                    "pipeline_bench.total.identical".to_string(),
                    Value::Num(0.0),
                );
            }
        }
        let f = check_metrics_doc("BENCH_pipeline.json", &doc);
        assert!(f.iter().any(|x| x.check == "determinism"), "{f:?}");
    }

    #[test]
    fn dropped_reply_trips_the_serve_gate() {
        let text = fs::read_to_string(repo_root().join("BENCH_serve.json")).unwrap();
        let mut doc = parse(&text).unwrap();
        assert!(check_metrics_doc("BENCH_serve.json", &doc).is_empty());
        // A lost reply shows up as answered < submitted and a zeroed
        // every_request_answered verdict — both must trip the gate.
        if let Value::Obj(top) = &mut doc {
            if let Some(Value::Obj(counters)) = top.get_mut("counters") {
                counters.insert(
                    "serve_bench.overload.every_request_answered".to_string(),
                    Value::Num(0.0),
                );
                let s = counters["serve_bench.overload.submitted"].as_u64().unwrap();
                counters.insert(
                    "serve_bench.overload.answered".to_string(),
                    Value::Num((s - 1) as f64),
                );
            }
        }
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(
            f.iter().filter(|x| x.check == "liveness").count() >= 2,
            "dropped reply must trip the liveness checks: {f:?}"
        );
        // Shed rate collapsing to zero (queue never sheds under 2×) is a
        // quality finding.
        let mut doc = parse(&text).unwrap();
        set_gauge(&mut doc, "serve_bench.overload.shed_rate", 0.0);
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(f.iter().any(|x| x.check == "quality"), "{f:?}");
    }

    #[test]
    fn perturbed_coalesce_and_cache_rows_trip_the_serve_gate() {
        let text = fs::read_to_string(repo_root().join("BENCH_serve.json")).unwrap();
        // Divergent batched replies are a determinism finding.
        let mut doc = parse(&text).unwrap();
        if let Value::Obj(top) = &mut doc {
            if let Some(Value::Obj(counters)) = top.get_mut("counters") {
                counters.insert(
                    "serve_bench.coalesce.identical".to_string(),
                    Value::Num(0.0),
                );
            }
        }
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(f.iter().any(|x| x.check == "determinism"), "{f:?}");
        // A coalescing speedup under the 1.5× acceptance floor is a perf
        // finding.
        let mut doc = parse(&text).unwrap();
        set_gauge(&mut doc, "serve_bench.coalesce.speedup", 1.1);
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(f.iter().any(|x| x.check == "perf"), "{f:?}");
        // A shed set that diverges from shed_plan is a determinism finding.
        let mut doc = parse(&text).unwrap();
        if let Value::Obj(top) = &mut doc {
            if let Some(Value::Obj(counters)) = top.get_mut("counters") {
                counters.insert(
                    "serve_bench.overload.matches_shed_plan".to_string(),
                    Value::Num(0.0),
                );
            }
        }
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(f.iter().any(|x| x.check == "determinism"), "{f:?}");
        // Broken hit/miss accounting is a quality finding.
        let mut doc = parse(&text).unwrap();
        if let Value::Obj(top) = &mut doc {
            if let Some(Value::Obj(counters)) = top.get_mut("counters") {
                let l = counters["serve_bench.cache.lookups"].as_u64().unwrap();
                counters.insert(
                    "serve_bench.cache.hits".to_string(),
                    Value::Num((l + 7) as f64),
                );
            }
        }
        let f = check_metrics_doc("BENCH_serve.json", &doc);
        assert!(f.iter().any(|x| x.check == "quality"), "{f:?}");
    }

    #[test]
    fn missing_meta_stamp_is_a_finding() {
        let mut top = BTreeMap::new();
        top.insert(
            "schema".to_string(),
            Value::Str("obskit.metrics.v1".to_string()),
        );
        top.insert("meta".to_string(), Value::Obj(BTreeMap::new()));
        top.insert("counters".to_string(), Value::Obj(BTreeMap::new()));
        top.insert("gauges".to_string(), Value::Obj(BTreeMap::new()));
        let f = check_doc_shape("x.json", &Value::Obj(top));
        assert!(f.iter().filter(|x| x.check == "meta").count() >= 8, "{f:?}");
    }

    #[test]
    fn wrong_schema_short_circuits() {
        let doc = parse(r#"{"schema": "something.else"}"#).unwrap();
        let f = check_metrics_doc("BENCH_place.json", &doc);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "schema");
    }

    #[test]
    fn ledger_checks_accept_real_records_and_reject_garbage() {
        let mut rec = obskit::RunRecord::new("experiments", "bench", "0.1.0", "abc");
        rec.kernels
            .insert("gbrt".to_string(), "histogram".to_string());
        rec.config_digest = "deadbeef".to_string();
        let good = rec.to_json_line();
        let (n, f) = check_ledger_text("runs.jsonl", &format!("{good}\n{good}\n"));
        assert_eq!(n, 2);
        assert!(f.is_empty(), "{f:?}");

        let (_, f) = check_ledger_text("runs.jsonl", "{\"schema\": \"nope\"}\nnot json\n");
        assert!(f.iter().any(|x| x.check == "ledger-schema"));
        assert!(f.iter().any(|x| x.check == "ledger-parse"));
    }

    #[test]
    fn report_renders_pass_and_fail() {
        let mut r = RegressReport::default();
        r.checked.push("BENCH_x.json".to_string());
        assert!(r.render().contains("PASS"));
        r.findings
            .push(Finding::new("BENCH_x.json", "perf-band", "too slow".into()));
        let text = r.render();
        assert!(text.contains("FAIL: 1 regression(s)"));
        assert!(text.contains("REGRESSION [BENCH_x.json] perf-band: too slow"));
    }
}
