//! The canonical bench-artifact writer.
//!
//! Every bench emits its snapshot twice — `reports/<name>_bench.json`
//! (every run) and the committed `BENCH_<name>.json` baseline at the repo
//! root (full-effort runs only). Both copies come from **one** serialized
//! string, so they are byte-identical by construction; the regression gate
//! checks that invariant on the committed tree. The shared `meta` block
//! stamps tool/version/git plus the active kernel selections, so baseline
//! diffs stay apples-to-apples when a kernel default changes.

use obskit::MetricsSnapshot;
use std::fs;
use std::path::Path;

/// The workspace's active kernel selections, as `meta` key/value stamps:
/// `kernel.extract`, `kernel.place`, `kernel.route`, `kernel.gbrt`.
pub fn kernel_meta() -> Vec<(String, String)> {
    vec![
        (
            "kernel.extract".to_string(),
            congestion_core::features::ExtractKernel::default()
                .name()
                .to_string(),
        ),
        (
            "kernel.place".to_string(),
            fpga_fabric::PlaceKernel::default().name().to_string(),
        ),
        (
            "kernel.route".to_string(),
            fpga_fabric::MazeKernel::default().name().to_string(),
        ),
        (
            "kernel.gbrt".to_string(),
            mlkit::GbrtKernel::default().name().to_string(),
        ),
    ]
}

/// Serialize a bench snapshot through the `obskit.metrics.v1` schema with
/// the canonical meta block: tool, version, git, effort, and the kernel
/// stamps. The effort stamp lets the regression gate tell a committed
/// full-effort baseline from a CI fast smoke sharing the same path.
pub fn bench_json(tool: &str, effort: crate::designs::Effort, snap: &MetricsSnapshot) -> String {
    let kernels = kernel_meta();
    let mut meta: Vec<(&str, &str)> = vec![
        ("tool", tool),
        ("version", env!("CARGO_PKG_VERSION")),
        ("git", option_env!("GIT_HASH").unwrap_or("unknown")),
        ("effort", effort.name()),
    ];
    for (k, v) in &kernels {
        meta.push((k.as_str(), v.as_str()));
    }
    obskit::sink::metrics_json(snap, &meta)
}

/// Stamp a ledger record with the same kernel selections the bench meta
/// carries.
pub fn stamp_kernels(rec: &mut obskit::RunRecord) {
    for (k, v) in kernel_meta() {
        let which = k.trim_start_matches("kernel.").to_string();
        rec.kernels.insert(which, v);
    }
}

/// Write one bench artifact from one string: always
/// `reports/<report_name>`, and also `<baseline_name>` at the repo root
/// when `write_baseline` is set (full-effort runs refreshing the committed
/// baseline). Both files get the same bytes.
pub fn write_bench(report_name: &str, baseline_name: &str, json: &str, write_baseline: bool) {
    fs::create_dir_all("reports").ok();
    let report = Path::new("reports").join(report_name);
    if let Err(e) = fs::write(&report, json) {
        eprintln!("warning: could not write {}: {e}", report.display());
    }
    if write_baseline {
        if let Err(e) = fs::write(baseline_name, json) {
            eprintln!("warning: could not write {baseline_name}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_stamps_every_kernel() {
        let stamps = kernel_meta();
        let keys: Vec<&str> = stamps.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "kernel.extract",
                "kernel.place",
                "kernel.route",
                "kernel.gbrt"
            ]
        );
        // The stamps reflect the current defaults.
        assert_eq!(stamps[0].1, "soa");
        assert_eq!(stamps[1].1, "delta");
        assert_eq!(stamps[2].1, "astar");
        assert_eq!(stamps[3].1, "histogram");
    }

    #[test]
    fn bench_json_carries_kernel_and_effort_stamps() {
        let snap = MetricsSnapshot::default();
        let j = bench_json(
            "experiments test-bench",
            crate::designs::Effort::Full,
            &snap,
        );
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""));
        assert!(j.contains("\"tool\": \"experiments test-bench\""));
        assert!(j.contains("\"effort\": \"full\""));
        for k in [
            "kernel.extract",
            "kernel.place",
            "kernel.route",
            "kernel.gbrt",
        ] {
            assert!(j.contains(&format!("\"{k}\":")), "missing {k} in {j}");
        }
    }

    #[test]
    fn ledger_stamp_matches_meta_stamp() {
        let mut rec = obskit::RunRecord::new("t", "bench", "0", "0");
        stamp_kernels(&mut rec);
        assert_eq!(rec.kernels["extract"], "soa");
        assert_eq!(rec.kernels["place"], "delta");
        assert_eq!(rec.kernels["route"], "astar");
        assert_eq!(rec.kernels["gbrt"], "histogram");
    }
}
