//! **Fig 1** — congestion maps of the two Face Detection implementations
//! (rendered as ASCII heat maps and CSV).

use crate::designs::{face_detection, Effort};
use rosetta_gen::face_detection::FdVariant;

/// One implementation's rendered maps.
#[derive(Debug, Clone)]
pub struct CongestionFigure {
    /// Variant label.
    pub label: String,
    /// ASCII vertical-congestion heat map.
    pub vertical_art: String,
    /// ASCII horizontal-congestion heat map.
    pub horizontal_art: String,
    /// Full CSV (x, y, vertical, horizontal).
    pub csv: String,
    /// Max congestion in either direction.
    pub max_congestion: f64,
}

/// Fig 1 result: maps of the optimized and plain implementations.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// "With Directives" maps.
    pub with_directives: CongestionFigure,
    /// "Without Directives" maps.
    pub without_directives: CongestionFigure,
}

/// Run the Fig 1 experiment.
pub fn run(effort: Effort) -> Fig1 {
    let flow = effort.flow();
    let render = |variant: FdVariant, label: &str| -> CongestionFigure {
        let (_, res) = flow
            .implement(&face_detection(variant))
            .expect("synthesis must succeed");
        CongestionFigure {
            label: label.to_string(),
            vertical_art: res.congestion.render(true),
            horizontal_art: res.congestion.render(false),
            csv: res.congestion.to_csv(),
            max_congestion: res.congestion.max_any(),
        }
    };
    Fig1 {
        with_directives: render(FdVariant::Optimized, "with_directives"),
        without_directives: render(FdVariant::Plain, "without_directives"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_render_with_device_dimensions() {
        let f = run(Effort::Fast);
        let rows = f.with_directives.vertical_art.lines().count();
        assert_eq!(rows, 120, "one text row per device row");
        assert!(f.with_directives.csv.starts_with("x,y,"));
        assert!(f.with_directives.max_congestion >= f.without_directives.max_congestion);
    }
}
