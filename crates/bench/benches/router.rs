//! Routing-kernel benchmarks: windowed A* (arena + bucket queue) against the
//! reference full-grid Dijkstra, on a fixed placement, maze mode with two
//! negotiated-congestion passes. Run with `cargo bench --bench router`.

use criterion::{criterion_group, criterion_main, Criterion};
use fpga_fabric::place::{place, PlacerOptions};
use fpga_fabric::route::{route, RouterOptions};
use fpga_fabric::Device;
use hls_ir::frontend::compile_named;
use hls_synth::{HlsFlow, HlsOptions};

fn congested_module() -> hls_ir::Module {
    compile_named(
        "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        "unroll64",
    )
    .unwrap()
}

fn bench_maze_kernels(c: &mut Criterion) {
    let design = HlsFlow::new(HlsOptions::default())
        .run(&congested_module())
        .unwrap();
    let device = Device::xc7z020();
    let placement = place(&design.rtl, &device, &PlacerOptions::fast());
    let mut g = c.benchmark_group("router_kernels");
    g.sample_size(10);
    g.bench_function("astar_windowed", |b| {
        b.iter(|| {
            route(
                &design.rtl,
                &placement,
                &device,
                &RouterOptions::with_maze(2),
            )
        })
    });
    g.bench_function("reference_dijkstra", |b| {
        b.iter(|| {
            route(
                &design.rtl,
                &placement,
                &device,
                &RouterOptions::with_reference_maze(2),
            )
        })
    });
    g.finish();
}

fn bench_default_router(c: &mut Criterion) {
    // The non-maze path (L/Z refinement only) — must stay cheap since every
    // dataset label goes through it.
    let design = HlsFlow::new(HlsOptions::default())
        .run(&congested_module())
        .unwrap();
    let device = Device::xc7z020();
    let placement = place(&design.rtl, &device, &PlacerOptions::fast());
    let mut g = c.benchmark_group("router_default");
    g.sample_size(10);
    g.bench_function("lz_refinement", |b| {
        b.iter(|| route(&design.rtl, &placement, &device, &RouterOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_maze_kernels, bench_default_router);
criterion_main!(benches);
