//! Criterion benchmarks: one per paper table/figure, at reduced effort so
//! a full `cargo bench` stays tractable. The shape assertions live in the
//! unit/integration tests; these benches measure the cost of regenerating
//! each artifact.

use congestion_bench::designs::Effort;
use congestion_bench::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1_motivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table1_motivation", |b| {
        b.iter(|| {
            let t = table1::run(Effort::Fast);
            assert!(t.with_directives.max_congestion() > 0.0);
            t
        })
    });
    g.finish();
}

fn bench_table3_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table3_suite", |b| {
        b.iter(|| {
            let (t, ds) = table3::run(Effort::Fast);
            assert!(ds.len() > 100);
            t
        })
    });
    g.finish();
}

fn bench_table4_accuracy(c: &mut Criterion) {
    // Build the dataset once; benchmark the training/evaluation protocol.
    let (_, ds) = table3::run(Effort::Fast);
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table4_accuracy", |b| {
        b.iter(|| {
            let t = table4::run_on(&ds, Effort::Fast, false);
            assert!(t.rows.len() == 2);
            t
        })
    });
    g.finish();
}

fn bench_table5_importance(c: &mut Criterion) {
    let (_, ds) = table3::run(Effort::Fast);
    let filtered = congestion_core::filter::filter_marginal(&ds, &Default::default());
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table5_importance", |b| {
        b.iter(|| table5::run_on(&filtered.kept, Effort::Fast))
    });
    g.finish();
}

fn bench_table6_case_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table6_case_study", |b| {
        b.iter(|| table6::run(Effort::Fast))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig1_congestion_maps", |b| {
        b.iter(|| fig1::run(Effort::Fast))
    });
    g.bench_function("fig5_distribution", |b| b.iter(|| fig5::run(Effort::Fast)));
    g.bench_function("fig6_resolution_maps", |b| {
        b.iter(|| fig6::run(Effort::Fast))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_motivation,
    bench_table3_suite,
    bench_table4_accuracy,
    bench_table5_importance,
    bench_table6_case_study,
    bench_figures
);
criterion_main!(benches);
