//! Performance benchmarks of the individual pipeline stages: frontend,
//! HLS, placement, routing, back-tracing + feature extraction, and model
//! training.

use congestion_core::dataset::Target;
use congestion_core::pipeline::CongestionFlow;
use congestion_core::predict::{CongestionPredictor, ModelKind, TrainOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use fpga_fabric::place::{place, PlacerOptions};
use fpga_fabric::route::{route, RouterOptions};
use fpga_fabric::Device;
use hls_ir::frontend::compile_named;
use hls_synth::{HlsFlow, HlsOptions};
use rosetta_gen::{face_detection, suite, Preset};

fn fd_module() -> hls_ir::Module {
    face_detection::benchmark(face_detection::FdVariant::Optimized)
        .build()
        .unwrap()
}

fn bench_frontend(c: &mut Criterion) {
    let bench = face_detection::benchmark(face_detection::FdVariant::Optimized);
    c.bench_function("frontend/compile_face_detection", |b| {
        b.iter(|| bench.build().unwrap())
    });
}

fn bench_hls(c: &mut Criterion) {
    let m = fd_module();
    let flow = HlsFlow::new(HlsOptions::default());
    c.bench_function("hls/synthesize_face_detection", |b| {
        b.iter(|| flow.run(&m).unwrap())
    });
}

fn bench_par(c: &mut Criterion) {
    let m = fd_module();
    let design = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
    let device = Device::xc7z020();
    let mut g = c.benchmark_group("par");
    g.sample_size(10);
    g.bench_function("place_face_detection", |b| {
        b.iter(|| place(&design.rtl, &device, &PlacerOptions::fast()))
    });
    let placement = place(&design.rtl, &device, &PlacerOptions::fast());
    g.bench_function("route_face_detection", |b| {
        b.iter(|| route(&design.rtl, &placement, &device, &RouterOptions::default()))
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let flow = CongestionFlow::fast();
    let m = compile_named(
        "int32 f(int32 a[64], int32 k) {\n#pragma HLS unroll factor=8\nfor (i = 0; i < 64; i++) { a[i] = a[i] * k; } return a[0]; }",
        "feat",
    )
    .unwrap();
    let mut g = c.benchmark_group("features");
    g.sample_size(10);
    g.bench_function("dataset_from_design", |b| {
        b.iter(|| flow.build_dataset(std::slice::from_ref(&m)).unwrap())
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let flow = CongestionFlow::fast();
    let modules: Vec<hls_ir::Module> = suite::groups(Preset::Plain)
        .into_iter()
        .map(|b| b.build().unwrap())
        .collect();
    let ds = flow.build_dataset(&modules).unwrap();
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    for kind in [ModelKind::Linear, ModelKind::Ann, ModelKind::Gbrt] {
        g.bench_function(format!("train_{}", kind.name()), |b| {
            b.iter(|| {
                CongestionPredictor::train(kind, Target::Vertical, &ds, &TrainOptions::fast())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_hls,
    bench_par,
    bench_features,
    bench_training
);
criterion_main!(benches);
