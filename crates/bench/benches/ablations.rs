//! Ablation benchmarks for the design choices listed in DESIGN.md §6:
//! router refinement passes, shared-node merging, and two-hop features.
//! Each bench also asserts the ablation's effect direction where one is
//! expected.

use congestion_bench::ablation;
use congestion_core::graph::DepGraph;
use congestion_core::pipeline::CongestionFlow;
use criterion::{criterion_group, criterion_main, Criterion};
use fpga_fabric::place::{place, PlacerOptions};
use fpga_fabric::route::{route, RouterOptions};
use fpga_fabric::Device;
use hls_ir::frontend::compile_named;
use hls_synth::{HlsFlow, HlsOptions};

fn congested_module() -> hls_ir::Module {
    compile_named(
        "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=8\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        "ablate",
    )
    .unwrap()
}

fn bench_router_passes(c: &mut Criterion) {
    let design = HlsFlow::new(HlsOptions::default())
        .run(&congested_module())
        .unwrap();
    let device = Device::xc7z020();
    let placement = place(&design.rtl, &device, &PlacerOptions::fast());
    let mut g = c.benchmark_group("ablation_routing");
    g.sample_size(10);
    g.bench_function("maze_refine_2", |b| {
        b.iter(|| {
            route(
                &design.rtl,
                &placement,
                &device,
                &RouterOptions::with_maze(2),
            )
        })
    });
    g.bench_function("maze_refine_2_reference_dijkstra", |b| {
        b.iter(|| {
            route(
                &design.rtl,
                &placement,
                &device,
                &RouterOptions::with_reference_maze(2),
            )
        })
    });
    for passes in [0u32, 1, 2, 4] {
        g.bench_function(format!("refine_passes_{passes}"), |b| {
            b.iter(|| {
                route(
                    &design.rtl,
                    &placement,
                    &device,
                    &RouterOptions {
                        refine_passes: passes,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_merge_ablation(c: &mut Criterion) {
    // Graph construction with and without shared-module node merging.
    let m = compile_named(
        "int32 f(int32 x, int32 y) { int32 a = x / y; int32 b = a / y; int32 d = b / y; return d; }",
        "merge",
    )
    .unwrap();
    let design = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let merged = DepGraph::build(f, Some(binding), true);
    let unmerged = DepGraph::build(f, Some(binding), false);
    assert!(
        merged.len() < unmerged.len(),
        "merging must shrink the graph: {} vs {}",
        merged.len(),
        unmerged.len()
    );
    let mut g = c.benchmark_group("ablation_merge");
    g.bench_function("graph_merged", |b| {
        b.iter(|| DepGraph::build(f, Some(binding), true))
    });
    g.bench_function("graph_unmerged", |b| {
        b.iter(|| DepGraph::build(f, Some(binding), false))
    });
    g.finish();
}

fn bench_two_hop_ablation(c: &mut Criterion) {
    let flow = CongestionFlow::fast();
    let ds = flow
        .build_dataset(std::slice::from_ref(&congested_module()))
        .unwrap();
    let mut g = c.benchmark_group("ablation_two_hop");
    g.sample_size(10);
    g.bench_function("strip_two_hop_features", |b| {
        b.iter(|| ablation::without_two_hop(&ds))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_router_passes,
    bench_merge_ablation,
    bench_two_hop_ablation
);
criterion_main!(benches);
