//! Feature-extraction kernel benchmarks: the SoA `extract_into` path
//! against the reference per-node allocation path, plus the whole
//! dataset-add stage under each kernel and the serial vs pipelined
//! executor. Run with `cargo bench --bench features`.

use congestion_core::features::ExtractKernel;
use congestion_core::pipeline::CongestionFlow;
use congestion_core::CongestionDataset;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hls_ir::frontend::compile_named;

fn congested_module() -> hls_ir::Module {
    compile_named(
        "int32 f(int32 a[64], int32 b[64]) {\n\
         #pragma HLS array_partition variable=a complete\n\
         #pragma HLS array_partition variable=b complete\n\
         int32 s; int32 i; s = 0;\n\
         #pragma HLS unroll\n\
         for (i = 0; i < 64; i++) { s = s + a[i] * b[i]; }\n\
         return s; }",
        "mac64",
    )
    .unwrap()
}

fn bench_extract_kernels(c: &mut Criterion) {
    let flow = CongestionFlow::fast();
    let (design, impl_result) = flow.implement(&congested_module()).unwrap();
    let mut g = c.benchmark_group("extract_kernels");
    g.sample_size(10);
    for kernel in [ExtractKernel::Soa, ExtractKernel::Reference] {
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut ds = CongestionDataset::new();
                ds.add_design_with(&design, &impl_result, &flow.device, kernel)
                    .unwrap();
                black_box(ds.len())
            })
        });
    }
    g.finish();
}

fn bench_dataset_executors(c: &mut Criterion) {
    let modules: Vec<hls_ir::Module> = (0..3)
        .map(|i| {
            compile_named(
                "int32 f(int32 a[32], int32 k) { int32 s = 0;\n\
                 #pragma HLS unroll factor=8\n\
                 for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
                &format!("ex{i}"),
            )
            .unwrap()
        })
        .collect();
    let mut g = c.benchmark_group("dataset_executors");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        let flow = CongestionFlow::fast().with_workers(1);
        b.iter(|| black_box(flow.build_dataset(&modules).unwrap().len()))
    });
    g.bench_function("pipelined_depth2", |b| {
        let flow = CongestionFlow::fast()
            .with_workers(1)
            .with_pipeline_depth(2);
        b.iter(|| black_box(flow.build_dataset(&modules).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_extract_kernels, bench_dataset_executors);
criterion_main!(benches);
