//! Embeds the short git hash at build time so `experiments --version` can
//! report exact build provenance (same scheme as the root crate's build.rs).

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    if !hash.is_empty() {
        println!("cargo:rustc-env=GIT_HASH={hash}");
    }
}
