//! The analytic pre-route congestion estimator — the bottom rung of the
//! degradation ladder.
//!
//! When the model path fails terminally (no valid artifact, persistent
//! injected faults, poisoned swap with no last-good), the daemon still
//! answers: a fixed linear estimate over the feature families the paper
//! identifies as congestion-correlated (interconnection density and global
//! routing demand), clamped to the congestion scale. It is deliberately
//! simple — no fitted state, no file, no failure modes — so it is *always*
//! available, and replies that used it are stamped `degraded=true`.

/// Feature-range weights of the analytic estimate. The ranges mirror
/// `congestion_core::features::FeatureCategory` for the default 302-wide
/// rows but are carried explicitly so servekit stays decoupled from the
/// extractor crate (and keeps working for any row width in tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimator {
    /// Half-open feature range summarizing local interconnection density.
    pub interconnection: (usize, usize),
    /// Half-open feature range summarizing global routing demand.
    pub global: (usize, usize),
}

/// The model name stamped on degraded replies answered by the estimator.
pub const ANALYTIC_MODEL: &str = "analytic";

impl Default for AnalyticEstimator {
    fn default() -> Self {
        // FeatureCategory ranges of the 302-feature extractor:
        // Interconnection occupies columns 1..19, Global 276..302.
        AnalyticEstimator {
            interconnection: (1, 19),
            global: (276, 302),
        }
    }
}

impl AnalyticEstimator {
    fn range_mean(row: &[f64], (lo, hi): (usize, usize)) -> f64 {
        let hi = hi.min(row.len());
        if lo >= hi {
            return 0.0;
        }
        let slice = &row[lo..hi];
        let sum: f64 = slice.iter().filter(|v| v.is_finite()).sum();
        sum / slice.len() as f64
    }

    /// Estimate `(vertical, horizontal)` congestion (%) for one feature
    /// row. Pure, total, and clamped to `[0, 200]` — it cannot panic or
    /// return non-finite values for any input.
    pub fn predict(&self, row: &[f64]) -> (f64, f64) {
        let inter = Self::range_mean(row, self.interconnection);
        let global = Self::range_mean(row, self.global);
        // Vertical tracks interconnection pressure slightly harder than
        // horizontal (the paper's V maps saturate first); both pick up the
        // global-demand term.
        let v = (14.0 + 2.2 * inter + 0.6 * global).clamp(0.0, 200.0);
        let h = (12.0 + 1.8 * inter + 0.5 * global).clamp(0.0, 200.0);
        (v, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_total_and_clamped() {
        let e = AnalyticEstimator::default();
        for row in [
            vec![],
            vec![0.0; 4],
            vec![f64::NAN; 302],
            vec![1e12; 302],
            vec![-1e12; 302],
        ] {
            let (v, h) = e.predict(&row);
            assert!(v.is_finite() && h.is_finite(), "{row:?}");
            assert!((0.0..=200.0).contains(&v));
            assert!((0.0..=200.0).contains(&h));
        }
    }

    #[test]
    fn denser_interconnection_estimates_hotter() {
        let e = AnalyticEstimator::default();
        let mut cool = vec![0.0; 302];
        let mut hot = vec![0.0; 302];
        for i in 1..19 {
            cool[i] = 1.0;
            hot[i] = 20.0;
        }
        let (vc, hc) = e.predict(&cool);
        let (vh, hh) = e.predict(&hot);
        assert!(vh > vc && hh > hc);
    }
}
