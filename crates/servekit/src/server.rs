//! The `congestd` request engine: bounded admission, worker pool,
//! supervised execution, degradation ladder, crash-only journaling.
//!
//! Request lifecycle (DESIGN.md §14 has the state machine):
//!
//! ```text
//! submit ── serve.admission (supervised) ──► queue (bounded, shed-oldest)
//!        │                                       │
//!        └─► Overloaded / Error                  ▼ worker pop
//!                       deadline check ──► DeadlineExceeded
//!                       serve.extract / serve.predict / serve.swap
//!                       (supervised: retries + backoff + panic isolation)
//!                            │ terminal model failure
//!                            ▼
//!                       demote to last-good ──► analytic (degraded=true)
//! ```
//!
//! Every admitted request receives exactly one typed reply; no failure
//! mode — injected panic, poisoned model, overload, deadline — exits the
//! process.

use crate::cache::{CacheStats, CachedFeatures, FeatureCache};
use crate::estimator::{AnalyticEstimator, ANALYTIC_MODEL};
use crate::journal::{Journal, JournalEvent, RecoveredState};
use crate::proto::{Reply, ReplyStatus, Request, RequestBody};
use crate::queue::{AdmissionQueue, Admit, WorkGate};
use crate::registry::{ModelRegistry, ValidationGate};
use crate::ModelArtifact;
use faultkit::{serve_stages, FaultPlan, StageFailure, Supervisor, SupervisorPolicy};
use mlkit::Matrix;
use obskit::QuantileSketch;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Rows predicted between cooperative deadline checks.
const PREDICT_CHUNK: usize = 2048;

/// Pluggable MiniHLS front-end for `source` requests: maps
/// `(design name, source text)` to per-op feature rows plus source lines.
/// The binary wires `congestion-core` extraction in; servekit itself stays
/// extractor-agnostic.
pub type SourceExtractor =
    dyn Fn(&str, &str) -> Result<(Vec<Vec<f64>>, Vec<u32>), String> + Send + Sync;

/// Pluggable source-digest function: maps `(design name, source text)` to
/// the feature-cache key. The binary wires
/// `congestion_core::source_digest` in (stamped with the feature schema);
/// the default is a plain FNV-1a over both strings.
pub type SourceKeyFn = dyn Fn(&str, &str) -> u64 + Send + Sync;

fn default_source_key(name: &str, text: &str) -> u64 {
    faultkit::fnv1a(&[name.as_bytes(), b"\0", text.as_bytes()])
}

/// Where swap events additionally land as `obskit.run.v1` ledger records
/// (`--ledger-out`).
#[derive(Debug, Clone)]
pub struct LedgerSink {
    /// Ledger file path.
    pub path: PathBuf,
    /// Producing tool stamp.
    pub tool: String,
    /// Version stamp.
    pub version: String,
    /// Git hash stamp.
    pub git: String,
}

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Admission queue capacity (shed-oldest past this).
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Supervision policy for the serve stages (retries, backoff).
    pub policy: SupervisorPolicy,
    /// Armed fault plan (chaos testing).
    pub plan: Option<Arc<FaultPlan>>,
    /// Journal path; `None` disables crash-only persistence.
    pub journal_path: Option<PathBuf>,
    /// Journal a progress record every N completed requests.
    pub journal_flush_every: u64,
    /// Swap validation gate.
    pub gate: ValidationGate,
    /// The degraded-path estimator.
    pub estimator: AnalyticEstimator,
    /// Optional run-ledger sink for swap records.
    pub ledger: Option<LedgerSink>,
    /// Coalescing row budget per micro-batch: a worker drains the
    /// contiguous run of queued `predict` requests whose summed row count
    /// fits, and answers them with one merged `predict_into` call.
    /// `1` disables coalescing (per-request drain, the pre-batching path).
    pub batch_max_rows: usize,
    /// How long a worker lingers for more arrivals once the queue runs dry
    /// before the row budget is filled. Zero (the default) takes whatever
    /// is queued — opportunistic batching with no added latency.
    pub batch_max_wait: Duration,
    /// Feature-cache capacity in designs for `source` requests;
    /// 0 disables the cache.
    pub cache_capacity: usize,
    /// Source-digest function keying the feature cache; `None` uses a
    /// plain FNV-1a over `(name, text)`.
    pub cache_key: Option<Arc<SourceKeyFn>>,
    /// Deterministic worker pacing gate: when set, each queue drain first
    /// takes one permit. Benches and conformance tests use this as a
    /// virtual clock to reproduce `shed_plan` exactly; production leaves
    /// it `None`. [`Server::shutdown`] opens the gate so workers never
    /// wedge on it.
    pub pace_gate: Option<Arc<WorkGate>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("workers", &self.workers)
            .field("default_deadline", &self.default_deadline)
            .field("policy", &self.policy)
            .field("plan", &self.plan)
            .field("journal_path", &self.journal_path)
            .field("journal_flush_every", &self.journal_flush_every)
            .field("gate", &self.gate)
            .field("estimator", &self.estimator)
            .field("ledger", &self.ledger)
            .field("batch_max_rows", &self.batch_max_rows)
            .field("batch_max_wait", &self.batch_max_wait)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_key", &self.cache_key.as_ref().map(|_| "<fn>"))
            .field("pace_gate", &self.pace_gate)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 1,
            default_deadline: None,
            policy: SupervisorPolicy::no_sleep(),
            plan: None,
            journal_path: None,
            journal_flush_every: 32,
            gate: ValidationGate::default(),
            estimator: AnalyticEstimator::default(),
            ledger: None,
            batch_max_rows: 256,
            batch_max_wait: Duration::ZERO,
            cache_capacity: 64,
            cache_key: None,
            pace_gate: None,
        }
    }
}

/// Counters and latency sketch for the `serve.*` metric family.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Requests accepted into the queue (or answered at admission).
    pub admitted: u64,
    /// Requests answered by a worker (any status but shed).
    pub completed: u64,
    /// Requests shed at admission (`Overloaded`).
    pub shed: u64,
    /// Requests cancelled past their deadline.
    pub deadline_missed: u64,
    /// Requests answered by a fallback path (`degraded=true`).
    pub degraded: u64,
    /// `Error` replies.
    pub errors: u64,
    /// Faults injected across serve stages.
    pub injected: u64,
    /// Retries performed across serve stages.
    pub retries: u64,
    /// Peak queue depth observed at admission.
    pub queue_depth_peak: u64,
    /// Multi-request micro-batches formed by coalescing workers.
    pub batches: u64,
    /// Requests answered as members of a multi-request micro-batch.
    pub coalesced: u64,
    /// Rows merged into coalesced `predict_into` calls.
    pub batch_rows: u64,
    /// Largest micro-batch observed, in requests.
    pub batch_peak: u64,
    /// Request latency (admission → reply), milliseconds.
    pub latency_ms: QuantileSketch,
}

impl ServeMetrics {
    /// Export as an obskit registry snapshot (`serve.*` namespace),
    /// folding in the registry's swap counters and the feature-cache
    /// counters (`serve.cache.*`, where `hits + misses == lookups`).
    pub fn snapshot(
        &self,
        swaps: u64,
        rejects: u64,
        rollbacks: u64,
        cache: CacheStats,
    ) -> obskit::MetricsSnapshot {
        let mut r = obskit::Registry::new();
        r.inc("serve.admitted", self.admitted);
        r.inc("serve.completed", self.completed);
        r.inc("serve.shed", self.shed);
        r.inc("serve.deadline_missed", self.deadline_missed);
        r.inc("serve.degraded", self.degraded);
        r.inc("serve.errors", self.errors);
        r.inc("serve.injected", self.injected);
        r.inc("serve.retries", self.retries);
        r.inc("serve.swap.committed", swaps);
        r.inc("serve.swap.rejected", rejects);
        r.inc("serve.swap.rollbacks", rollbacks);
        r.inc("serve.batch.formed", self.batches);
        r.inc("serve.batch.coalesced_requests", self.coalesced);
        r.inc("serve.batch.rows", self.batch_rows);
        r.inc("serve.cache.lookups", cache.lookups);
        r.inc("serve.cache.hits", cache.hits);
        r.inc("serve.cache.misses", cache.misses);
        r.inc("serve.cache.evictions", cache.evictions);
        r.inc("serve.cache.invalidations", cache.invalidations);
        r.set_gauge("serve.queue_depth_peak", self.queue_depth_peak as f64);
        r.set_gauge("serve.batch.peak_requests", self.batch_peak as f64);
        if self.latency_ms.count() > 0 {
            r.set_gauge("serve.latency_ms.p50", self.latency_ms.quantile(0.50));
            r.set_gauge("serve.latency_ms.p99", self.latency_ms.quantile(0.99));
        }
        r.snapshot()
    }
}

struct Job {
    req: Request,
    admitted_at: Instant,
    reply_to: mpsc::Sender<Reply>,
}

struct ServerState {
    cfg: ServeConfig,
    queue: AdmissionQueue<Job>,
    registry: Mutex<ModelRegistry>,
    journal: Mutex<Option<Journal>>,
    metrics: Mutex<ServeMetrics>,
    shutdown: AtomicBool,
    extractor: Option<Arc<SourceExtractor>>,
    cache: FeatureCache,
    recovered: RecoveredState,
}

/// What [`Server::start`] found and did while coming up.
#[derive(Debug, Clone, Default)]
pub struct StartReport {
    /// Journal recovery outcome (defaults for a fresh journal).
    pub recovered: RecoveredState,
    /// Why the initial model failed to install, if it did — the server
    /// still starts (degraded, crash-only) and the caller decides whether
    /// that is acceptable.
    pub install_error: Option<String>,
}

/// Final accounting returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Final metrics.
    pub metrics: ServeMetrics,
    /// Committed swaps.
    pub swaps: u64,
    /// Gate rejects.
    pub rejects: u64,
    /// Rollbacks.
    pub rollbacks: u64,
    /// Model active at shutdown.
    pub model: String,
    /// Feature-cache counters at shutdown.
    pub cache: CacheStats,
}

/// The running daemon: worker pool + shared state. `submit` is `&self`
/// and thread-safe, so network front-ends share one `Arc<Server>`.
pub struct Server {
    state: Arc<ServerState>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Start the daemon: open and replay the journal, install the initial
    /// model through the validation gate, spawn the worker pool.
    ///
    /// # Errors
    /// Journal I/O only. A rejected initial model does *not* fail startup
    /// (the server comes up degraded); see [`StartReport::install_error`].
    pub fn start(
        cfg: ServeConfig,
        initial: Option<ModelArtifact>,
        extractor: Option<Arc<SourceExtractor>>,
    ) -> std::io::Result<(Server, StartReport)> {
        faultkit::silence_injected_panics();
        let mut report = StartReport::default();
        let mut journal = None;
        if let Some(path) = &cfg.journal_path {
            let (j, recovered) = Journal::open(path)?;
            report.recovered = recovered;
            journal = Some(j);
        }
        let mut registry = ModelRegistry::new(cfg.gate.clone());
        if let Some(artifact) = initial {
            let name = artifact.display_name();
            if let Err(e) = registry.install(artifact) {
                report.install_error = Some(format!("{name}: {e}"));
            }
        }
        // Crash-only accounting: cumulative counters continue across
        // restarts, so `admitted - completed - shed` stays meaningful.
        let metrics = ServeMetrics {
            admitted: report.recovered.admitted,
            completed: report.recovered.completed,
            shed: report.recovered.shed,
            degraded: report.recovered.degraded,
            ..Default::default()
        };
        if let Some(j) = journal.as_mut() {
            if report.recovered.records > 0 && !report.recovered.clean_shutdown {
                j.append(&JournalEvent::Recover {
                    lost_in_flight: report.recovered.lost_in_flight,
                    torn_lines: report.recovered.torn_lines,
                })?;
            }
            j.append(&JournalEvent::ServeStart {
                model: registry.active_name(),
            })?;
        }
        let state = Arc::new(ServerState {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            registry: Mutex::new(registry),
            journal: Mutex::new(journal),
            metrics: Mutex::new(metrics),
            shutdown: AtomicBool::new(false),
            extractor,
            cache: FeatureCache::new(cfg.cache_capacity),
            recovered: report.recovered.clone(),
            cfg,
        });
        let workers = (0..state.cfg.workers.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("congestd-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();
        Ok((
            Server {
                state,
                workers: Mutex::new(workers),
            },
            report,
        ))
    }

    /// Admit one request. Never blocks; the reply (exactly one) arrives on
    /// the returned channel. Under overload the *oldest* queued request is
    /// shed with an `Overloaded` reply to make room.
    pub fn submit(&self, req: Request) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        let state = &self.state;
        let id = req.id;
        // The admission stage is supervised like any other: an injected
        // admission fault degrades into a typed Error reply, not a crash.
        let sup = Supervisor::new(
            state.cfg.policy.clone(),
            state.cfg.plan.clone(),
            &format!("req-{id}"),
        );
        let run = sup.run_stage(
            serve_stages::ADMISSION,
            |_| faultkit::inject(serve_stages::ADMISSION).map_err(|f| f.to_string()),
            |_| true,
        );
        {
            let mut m = state.metrics.lock().unwrap();
            m.injected += u64::from(run.log.injected);
            m.retries += u64::from(run.log.retries());
        }
        if let Err(failure) = run.result {
            let mut m = state.metrics.lock().unwrap();
            m.admitted += 1;
            m.completed += 1;
            m.errors += 1;
            drop(m);
            let _ = tx.send(Reply::error(id, format!("admission failed: {failure}")));
            return rx;
        }
        let job = Job {
            req,
            admitted_at: Instant::now(),
            reply_to: tx.clone(),
        };
        match state.queue.push(job) {
            Admit::Queued => {
                let mut m = state.metrics.lock().unwrap();
                m.admitted += 1;
                m.queue_depth_peak = m.queue_depth_peak.max(state.queue.depth() as u64);
            }
            Admit::Shed(old) => {
                let mut m = state.metrics.lock().unwrap();
                m.admitted += 1;
                m.shed += 1;
                drop(m);
                let _ = old
                    .reply_to
                    .send(Reply::status_only(old.req.id, ReplyStatus::Overloaded));
            }
            Admit::Closed(job) => {
                let _ = job
                    .reply_to
                    .send(Reply::error(id, "server is shutting down"));
            }
        }
        rx
    }

    /// [`Self::submit`] and wait for the reply.
    pub fn call(&self, req: Request) -> Reply {
        let id = req.id;
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| Reply::error(id, "reply channel closed"))
    }

    /// True once a shutdown request was processed or `shutdown` called.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.state.queue.depth()
    }

    /// Journal recovery state from startup.
    pub fn recovered(&self) -> &RecoveredState {
        &self.state.recovered
    }

    /// Snapshot the `serve.*` metrics.
    pub fn metrics(&self) -> obskit::MetricsSnapshot {
        let (swaps, rejects, rollbacks) = {
            let r = self.state.registry.lock().unwrap();
            (r.swaps, r.rejects, r.rollbacks)
        };
        self.state.metrics.lock().unwrap().snapshot(
            swaps,
            rejects,
            rollbacks,
            self.state.cache.stats(),
        )
    }

    /// Feature-cache counter snapshot (`hits + misses == lookups`).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Display name of the model currently answering.
    pub fn active_model(&self) -> String {
        self.state.registry.lock().unwrap().active_name()
    }

    /// Clean shutdown: close the queue, drain pending jobs, join the
    /// workers, journal the final progress + shutdown records.
    pub fn shutdown(&self) -> ServeSummary {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        if let Some(g) = &self.state.cfg.pace_gate {
            g.open(); // never leave workers wedged on the pacing gate
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        let metrics = self.state.metrics.lock().unwrap().clone();
        let (swaps, rejects, rollbacks, model) = {
            let r = self.state.registry.lock().unwrap();
            (r.swaps, r.rejects, r.rollbacks, r.active_name())
        };
        if let Some(j) = self.state.journal.lock().unwrap().as_mut() {
            let _ = j.append(&JournalEvent::Progress {
                admitted: metrics.admitted,
                completed: metrics.completed,
                shed: metrics.shed,
                degraded: metrics.degraded,
            });
            let _ = j.append(&JournalEvent::Shutdown);
        }
        ServeSummary {
            metrics,
            swaps,
            rejects,
            rollbacks,
            model,
            cache: self.state.cache.stats(),
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        // Virtual-clock pacing: one permit per drain (benches/tests only).
        if let Some(g) = &state.cfg.pace_gate {
            g.acquire();
        }
        // Coalesce the contiguous run of predict requests at the queue
        // head into one micro-batch; everything else is a barrier and
        // runs alone. The partition is decided under the queue lock, so
        // it is a pure function of (arrival trace, config) — and replies
        // are bitwise-identical either way (see `process_batch`).
        let Some(batch) = state.queue.pop_batch(
            state.cfg.batch_max_rows,
            state.cfg.batch_max_wait,
            |job: &Job| match &job.req.body {
                RequestBody::Predict { rows } => Some(rows.len().max(1)),
                _ => None,
            },
        ) else {
            break;
        };
        if batch.len() == 1 {
            let job = &batch[0];
            let id = job.req.id;
            // Last-resort isolation: even a bug outside the supervised
            // stages becomes a typed Error reply, never a dead worker.
            let reply = catch_unwind(AssertUnwindSafe(|| process(state, job)))
                .unwrap_or_else(|_| Reply::error(id, "internal panic (isolated)"));
            finish(state, job, reply);
        } else {
            process_batch(state, batch);
        }
    }
}

/// Per-reply bookkeeping shared by the singleton and coalesced paths:
/// completion counters, latency sketch, reply delivery, journal cadence.
fn finish(state: &Arc<ServerState>, job: &Job, reply: Reply) {
    let flush = {
        let mut m = state.metrics.lock().unwrap();
        m.completed += 1;
        match reply.status {
            ReplyStatus::Degraded => m.degraded += 1,
            ReplyStatus::DeadlineExceeded => m.deadline_missed += 1,
            ReplyStatus::Error => m.errors += 1,
            _ => {}
        }
        m.latency_ms
            .observe(job.admitted_at.elapsed().as_secs_f64() * 1e3);
        m.completed
            .is_multiple_of(state.cfg.journal_flush_every.max(1))
    };
    let _ = job.reply_to.send(reply);
    if flush {
        journal_progress(state);
    }
}

/// Answer a coalesced micro-batch of predict requests. Per-request
/// validation (deadline at dequeue, row widths) mirrors the singleton
/// path exactly; the surviving members' rows are merged into one matrix
/// and answered by a **single** `predict_into` call per channel, then the
/// output is split back along request boundaries. `predict_into`
/// accumulates per row in tree order, so every member's floats are
/// bit-for-bit what per-request serving would have produced.
fn process_batch(state: &Arc<ServerState>, batch: Vec<Job>) {
    // Crash-only accounting: a progress record *before* the merged work
    // makes `lost_in_flight` after a SIGKILL reflect the whole admitted
    // batch (the chaos suite pins this).
    journal_progress(state);
    let replies =
        catch_unwind(AssertUnwindSafe(|| batch_replies(state, &batch))).unwrap_or_else(|_| {
            batch
                .iter()
                .map(|j| Reply::error(j.req.id, "internal panic (isolated)"))
                .collect()
        });
    {
        let mut m = state.metrics.lock().unwrap();
        m.batches += 1;
        m.coalesced += batch.len() as u64;
        m.batch_peak = m.batch_peak.max(batch.len() as u64);
    }
    for (job, reply) in batch.iter().zip(replies) {
        finish(state, job, reply);
    }
}

/// Compute one reply per batch member, in member order.
fn batch_replies(state: &Arc<ServerState>, batch: &[Job]) -> Vec<Reply> {
    let mut replies: Vec<Option<Reply>> = Vec::with_capacity(batch.len());
    // Members that survive validation, with their row range in the merged
    // matrix: (index into batch, row offset, row count).
    let mut members: Vec<(usize, usize, usize)> = Vec::new();
    let expected = state.cfg.gate.expected_features;
    let mut cols = 0usize;
    let mut total_rows = 0usize;
    for (i, job) in batch.iter().enumerate() {
        let id = job.req.id;
        let RequestBody::Predict { rows } = &job.req.body else {
            unreachable!("pop_batch only coalesces predict requests");
        };
        if past(deadline_of(state, job)) {
            replies.push(Some(Reply::status_only(id, ReplyStatus::DeadlineExceeded)));
            continue;
        }
        let Some(first) = rows.first() else {
            let mut r = Reply::status_only(id, ReplyStatus::Ok);
            r.model = state.registry.lock().unwrap().active_name();
            replies.push(Some(r));
            continue;
        };
        let width = first.len();
        if let Some((j, row)) = rows.iter().enumerate().find(|(_, r)| r.len() != width) {
            replies.push(Some(Reply::error(
                id,
                format!("row {j} is {}-wide, row 0 is {width}", row.len()),
            )));
            continue;
        }
        if expected != 0 && width != expected {
            replies.push(Some(Reply::error(
                id,
                format!("rows are {width}-wide, server expects {expected}"),
            )));
            continue;
        }
        if members.is_empty() {
            cols = width;
        } else if width != cols {
            // Ragged widths can only happen with no gate constraint;
            // answer the odd one out on the singleton path.
            let (status, model, v, h) = {
                let mut m = Matrix::with_cols(width);
                for row in rows {
                    m.push_row(row);
                }
                predict_ladder(state, id, &m, None)
            };
            replies.push(Some(Reply {
                id,
                status,
                model,
                vertical: v,
                horizontal: h,
                ..Default::default()
            }));
            continue;
        }
        members.push((i, total_rows, rows.len()));
        total_rows += rows.len();
        replies.push(None);
    }
    if !members.is_empty() {
        let mut merged = Matrix::with_cols(cols);
        for &(i, _, _) in &members {
            let RequestBody::Predict { rows } = &batch[i].req.body else {
                unreachable!()
            };
            for row in rows {
                merged.push_row(row);
            }
        }
        let first_id = batch[members[0].0].req.id;
        let (status, model, v, h) = predict_merged(state, first_id, &merged);
        for &(i, offset, n) in &members {
            replies[i] = Some(Reply {
                id: batch[i].req.id,
                status,
                model: model.clone(),
                vertical: v[offset..offset + n].to_vec(),
                horizontal: h[offset..offset + n].to_vec(),
                ..Default::default()
            });
        }
    }
    replies
        .into_iter()
        .map(|r| r.expect("every batch member answered"))
        .collect()
}

/// The merged-batch rung of the degradation ladder: one supervised
/// `predict_into` call over the whole merged matrix (members already
/// passed their dequeue deadline check; a coalesced member runs to
/// completion). Terminal model failure demotes once and answers the whole
/// batch on the analytic rung, stamped `Degraded` — exactly what each
/// member would have seen per-request.
fn predict_merged(
    state: &Arc<ServerState>,
    first_id: u64,
    merged: &Matrix,
) -> (ReplyStatus, String, Vec<f64>, Vec<f64>) {
    let active = state.registry.lock().unwrap().active();
    if let Some(model) = active {
        let sup = Supervisor::new(
            state.cfg.policy.clone(),
            state.cfg.plan.clone(),
            &format!("req-{first_id}"),
        );
        let run = sup.run_stage(
            serve_stages::PREDICT,
            |_| {
                faultkit::inject(serve_stages::PREDICT).map_err(|f| f.to_string())?;
                let n = merged.rows();
                let mut v = vec![0.0; n];
                let mut h = vec![0.0; n];
                model.vertical.predict_into(merged, &mut v);
                model.horizontal.predict_into(merged, &mut h);
                Ok((v, h))
            },
            |_: &String| true,
        );
        {
            let mut met = state.metrics.lock().unwrap();
            met.injected += u64::from(run.log.injected);
            met.retries += u64::from(run.log.retries());
        }
        match run.result {
            Ok((v, h)) => return (ReplyStatus::Ok, model.display_name(), v, h),
            Err(_) => demote_active(state),
        }
    }
    let (v, h) = analytic_predict(state, merged);
    (ReplyStatus::Degraded, ANALYTIC_MODEL.to_string(), v, h)
}

/// Terminal model-path failure: demote (last-good takes over for future
/// requests), journal the rollback, and invalidate the feature cache —
/// the active-model epoch changed.
fn demote_active(state: &Arc<ServerState>) {
    let name = {
        let mut reg = state.registry.lock().unwrap();
        reg.demote();
        reg.active_name()
    };
    state.cache.invalidate();
    if let Some(j) = state.journal.lock().unwrap().as_mut() {
        let _ = j.append(&JournalEvent::Rollback { model: name });
    }
}

fn journal_progress(state: &ServerState) {
    let (admitted, completed, shed, degraded) = {
        let m = state.metrics.lock().unwrap();
        (m.admitted, m.completed, m.shed, m.degraded)
    };
    if let Some(j) = state.journal.lock().unwrap().as_mut() {
        let _ = j.append(&JournalEvent::Progress {
            admitted,
            completed,
            shed,
            degraded,
        });
    }
}

/// The request's absolute deadline, if any.
fn deadline_of(state: &ServerState, job: &Job) -> Option<Instant> {
    let dur = job
        .req
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.cfg.default_deadline)?;
    Some(job.admitted_at + dur)
}

fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() > d)
}

fn process(state: &Arc<ServerState>, job: &Job) -> Reply {
    let id = job.req.id;
    let deadline = deadline_of(state, job);
    if past(deadline) {
        return Reply::status_only(id, ReplyStatus::DeadlineExceeded);
    }
    match &job.req.body {
        RequestBody::Predict { rows } => predict_request(state, id, rows, deadline),
        RequestBody::Source { name, text } => source_request(state, id, name, text, deadline),
        RequestBody::Swap { path } => swap_request(state, id, path),
        RequestBody::Rollback => rollback_request(state, id),
        RequestBody::Status => status_request(state, id),
        RequestBody::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.close();
            Reply::status_only(id, ReplyStatus::Ok)
        }
    }
}

fn predict_request(
    state: &Arc<ServerState>,
    id: u64,
    rows: &[Vec<f64>],
    deadline: Option<Instant>,
) -> Reply {
    let Some(first) = rows.first() else {
        let mut r = Reply::status_only(id, ReplyStatus::Ok);
        r.model = state.registry.lock().unwrap().active_name();
        return r;
    };
    let cols = first.len();
    if let Some((i, row)) = rows.iter().enumerate().find(|(_, r)| r.len() != cols) {
        return Reply::error(
            id,
            format!("row {i} is {}-wide, row 0 is {cols}", row.len()),
        );
    }
    let expected = state.cfg.gate.expected_features;
    if expected != 0 && cols != expected {
        return Reply::error(
            id,
            format!("rows are {cols}-wide, server expects {expected}"),
        );
    }
    let mut m = Matrix::with_cols(cols);
    for row in rows {
        m.push_row(row);
    }
    let (status, model, v, h) = predict_ladder(state, id, &m, deadline);
    Reply {
        id,
        status,
        model,
        vertical: v,
        horizontal: h,
        ..Default::default()
    }
}

enum PredictErr {
    Deadline,
    Injected(String),
}

impl std::fmt::Display for PredictErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictErr::Deadline => write!(f, "deadline exceeded"),
            PredictErr::Injected(m) => write!(f, "{m}"),
        }
    }
}

/// The degradation ladder: active model → (on terminal failure) demote to
/// last-good → analytic estimator, stamped `Degraded`.
fn predict_ladder(
    state: &Arc<ServerState>,
    id: u64,
    rows: &Matrix,
    deadline: Option<Instant>,
) -> (ReplyStatus, String, Vec<f64>, Vec<f64>) {
    let active = state.registry.lock().unwrap().active();
    if let Some(model) = active {
        let sup = Supervisor::new(
            state.cfg.policy.clone(),
            state.cfg.plan.clone(),
            &format!("req-{id}"),
        );
        let run = sup.run_stage(
            serve_stages::PREDICT,
            |_| {
                faultkit::inject(serve_stages::PREDICT)
                    .map_err(|f| PredictErr::Injected(f.to_string()))?;
                let n = rows.rows();
                let cols = rows.cols();
                let mut v = vec![0.0; n];
                let mut h = vec![0.0; n];
                let mut start = 0usize;
                while start < n {
                    // Cooperative cancellation between chunks: a request
                    // that blows its budget mid-batch stops early instead
                    // of stalling the worker.
                    if past(deadline) {
                        return Err(PredictErr::Deadline);
                    }
                    let end = (start + PREDICT_CHUNK).min(n);
                    let chunk =
                        Matrix::from_flat(cols, rows.flat()[start * cols..end * cols].to_vec());
                    model.vertical.predict_into(&chunk, &mut v[start..end]);
                    model.horizontal.predict_into(&chunk, &mut h[start..end]);
                    start = end;
                }
                Ok((v, h))
            },
            |e| matches!(e, PredictErr::Injected(_)),
        );
        {
            let mut met = state.metrics.lock().unwrap();
            met.injected += u64::from(run.log.injected);
            met.retries += u64::from(run.log.retries());
        }
        match run.result {
            Ok((v, h)) => return (ReplyStatus::Ok, model.display_name(), v, h),
            Err(StageFailure::Error(PredictErr::Deadline)) => {
                return (
                    ReplyStatus::DeadlineExceeded,
                    model.display_name(),
                    Vec::new(),
                    Vec::new(),
                )
            }
            Err(_) => {
                // Terminal model-path failure: demote (last-good takes
                // over for *future* requests) and answer this one on the
                // analytic rung.
                demote_active(state);
            }
        }
    }
    let (v, h) = analytic_predict(state, rows);
    (ReplyStatus::Degraded, ANALYTIC_MODEL.to_string(), v, h)
}

fn analytic_predict(state: &ServerState, rows: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let mut v = Vec::with_capacity(rows.rows());
    let mut h = Vec::with_capacity(rows.rows());
    for row in rows.iter_rows() {
        let (pv, ph) = state.cfg.estimator.predict(row);
        v.push(pv);
        h.push(ph);
    }
    (v, h)
}

fn source_request(
    state: &Arc<ServerState>,
    id: u64,
    name: &str,
    text: &str,
    deadline: Option<Instant>,
) -> Reply {
    let Some(extractor) = state.extractor.clone() else {
        return Reply::error(id, "this server was started without MiniHLS source support");
    };
    // Feature-cache probe, keyed by source digest. The generation is read
    // *before* the lookup/extraction so a swap that lands mid-extraction
    // turns the eventual insert into a dropped stale write.
    let key = match &state.cfg.cache_key {
        Some(f) => f(name, text),
        None => default_source_key(name, text),
    };
    let generation = state.cache.generation();
    if let Some(cached) = state.cache.lookup(key) {
        if past(deadline) {
            return Reply::status_only(id, ReplyStatus::DeadlineExceeded);
        }
        let (status, model, v, h) = predict_ladder(state, id, &cached.matrix, deadline);
        let mut r = Reply {
            id,
            status,
            model,
            vertical: v,
            horizontal: h,
            lines: cached.lines.clone(),
            ..Default::default()
        };
        r.info.insert("cache".into(), "hit".into());
        return r;
    }
    let sup = Supervisor::new(
        state.cfg.policy.clone(),
        state.cfg.plan.clone(),
        // Keyed by design name so fault plans can target one design.
        name,
    );
    let run = sup.run_stage(
        serve_stages::EXTRACT,
        |_| {
            faultkit::inject(serve_stages::EXTRACT).map_err(|f| f.to_string())?;
            extractor(name, text)
        },
        |_| true,
    );
    {
        let mut m = state.metrics.lock().unwrap();
        m.injected += u64::from(run.log.injected);
        m.retries += u64::from(run.log.retries());
    }
    let (rows, lines) = match run.result {
        Ok(v) => v,
        Err(failure) => return Reply::error(id, format!("extract failed: {failure}")),
    };
    if past(deadline) {
        return Reply::status_only(id, ReplyStatus::DeadlineExceeded);
    }
    let cols = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut m = Matrix::with_cols(cols);
    for row in &rows {
        m.push_row(row);
    }
    let cached = Arc::new(CachedFeatures { matrix: m, lines });
    state.cache.insert(key, generation, cached.clone());
    let (status, model, v, h) = predict_ladder(state, id, &cached.matrix, deadline);
    let mut r = Reply {
        id,
        status,
        model,
        vertical: v,
        horizontal: h,
        lines: cached.lines.clone(),
        ..Default::default()
    };
    if !state.cache.disabled() {
        r.info.insert("cache".into(), "miss".into());
    }
    r
}

fn swap_request(state: &Arc<ServerState>, id: u64, path: &str) -> Reply {
    let sup = Supervisor::new(
        state.cfg.policy.clone(),
        state.cfg.plan.clone(),
        &format!("req-{id}"),
    );
    let path_owned = path.to_string();
    let run = sup.run_stage(
        serve_stages::SWAP,
        move |_| {
            faultkit::inject(serve_stages::SWAP).map_err(|f| f.to_string())?;
            ModelArtifact::load(std::path::Path::new(&path_owned))
        },
        // Load/parse failures are permanent (the file will not heal);
        // injected faults are transient.
        |e| e.contains("injected"),
    );
    {
        let mut m = state.metrics.lock().unwrap();
        m.injected += u64::from(run.log.injected);
        m.retries += u64::from(run.log.retries());
    }
    let outcome = match run.result {
        Ok(artifact) => {
            let name = artifact.display_name();
            let mut reg = state.registry.lock().unwrap();
            reg.install(artifact).map(|gate| (name, gate))
        }
        Err(failure) => {
            // A candidate that cannot even load counts as a gate reject:
            // same bookkeeping, same rollback-to-trusted semantics.
            let mut reg = state.registry.lock().unwrap();
            reg.rejects += 1;
            if reg.active().is_some() {
                reg.rollbacks += 1;
            }
            Err(failure.to_string())
        }
    };
    let active_now = state.registry.lock().unwrap().active_name();
    match outcome {
        Ok((name, gate)) => {
            // The active-model epoch changed: rows extracted before the
            // swap must never answer post-swap requests.
            state.cache.invalidate();
            if let Some(j) = state.journal.lock().unwrap().as_mut() {
                let _ = j.append(&JournalEvent::SwapCommit {
                    model: name.clone(),
                    mae_v: gate.mae_v,
                    mae_h: gate.mae_h,
                });
            }
            ledger_swap(state, "swap.commit", &name, None);
            let mut r = Reply::status_only(id, ReplyStatus::Ok);
            r.model = name;
            r.info
                .insert("gate_mae_v".into(), format!("{:.4}", gate.mae_v));
            r.info
                .insert("gate_mae_h".into(), format!("{:.4}", gate.mae_h));
            r
        }
        Err(reason) => {
            if let Some(j) = state.journal.lock().unwrap().as_mut() {
                let _ = j.append(&JournalEvent::SwapReject {
                    model: path.to_string(),
                    reason: reason.clone(),
                });
                let _ = j.append(&JournalEvent::Rollback {
                    model: active_now.clone(),
                });
            }
            ledger_swap(state, "swap.reject", path, Some(&reason));
            let mut r = Reply::error(id, format!("swap rejected: {reason}"));
            r.model = active_now;
            r
        }
    }
}

/// Append one `obskit.run.v1` record per swap event when a ledger sink is
/// configured (the quality sentinel reads these back).
fn ledger_swap(state: &ServerState, kind: &str, model: &str, reason: Option<&str>) {
    let Some(sink) = &state.cfg.ledger else {
        return;
    };
    let mut rec = obskit::RunRecord::new(&sink.tool, kind, &sink.version, &sink.git);
    rec.note("model", model);
    if let Some(reason) = reason {
        rec.note("reason", reason);
    }
    let (swaps, rejects, rollbacks) = {
        let r = state.registry.lock().unwrap();
        (r.swaps, r.rejects, r.rollbacks)
    };
    rec.absorb_metrics(&state.metrics.lock().unwrap().snapshot(
        swaps,
        rejects,
        rollbacks,
        state.cache.stats(),
    ));
    let _ = rec.append_to(&sink.path);
}

fn rollback_request(state: &Arc<ServerState>, id: u64) -> Reply {
    let rolled = state.registry.lock().unwrap().rollback();
    match rolled {
        Some(model) => {
            state.cache.invalidate();
            let name = model.display_name();
            if let Some(j) = state.journal.lock().unwrap().as_mut() {
                let _ = j.append(&JournalEvent::Rollback {
                    model: name.clone(),
                });
            }
            let mut r = Reply::status_only(id, ReplyStatus::Ok);
            r.model = name;
            r
        }
        None => Reply::error(id, "no last-good model to roll back to"),
    }
}

fn status_request(state: &Arc<ServerState>, id: u64) -> Reply {
    let mut r = Reply::status_only(id, ReplyStatus::Ok);
    let mut info = BTreeMap::new();
    {
        let reg = state.registry.lock().unwrap();
        r.model = reg.active_name();
        info.insert("swaps".into(), reg.swaps.to_string());
        info.insert("rejects".into(), reg.rejects.to_string());
        info.insert("rollbacks".into(), reg.rollbacks.to_string());
        info.insert("model_generation".into(), reg.generation.to_string());
    }
    {
        let m = state.metrics.lock().unwrap();
        info.insert("admitted".into(), m.admitted.to_string());
        info.insert("completed".into(), m.completed.to_string());
        info.insert("shed".into(), m.shed.to_string());
        info.insert("degraded".into(), m.degraded.to_string());
        info.insert("deadline_missed".into(), m.deadline_missed.to_string());
        info.insert("batches".into(), m.batches.to_string());
        info.insert("coalesced".into(), m.coalesced.to_string());
    }
    {
        let c = state.cache.stats();
        info.insert("cache_lookups".into(), c.lookups.to_string());
        info.insert("cache_hits".into(), c.hits.to_string());
        info.insert("cache_misses".into(), c.misses.to_string());
        info.insert("cache_evictions".into(), c.evictions.to_string());
        info.insert("cache_invalidations".into(), c.invalidations.to_string());
    }
    info.insert("queue_depth".into(), state.queue.depth().to_string());
    info.insert(
        "recovered_lost_in_flight".into(),
        state.recovered.lost_in_flight.to_string(),
    );
    info.insert(
        "recovered_torn_lines".into(),
        state.recovered.torn_lines.to_string(),
    );
    r.info = info;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::LEAF;
    use mlkit::CompiledEnsemble;

    pub(crate) fn stump_artifact(version: u64, feature_count: usize) -> ModelArtifact {
        let nodes = vec![(0u32, 1, 2, 3.0), (LEAF, 0, 0, 10.0), (LEAF, 0, 0, 90.0)];
        let mk = |base: f64| {
            CompiledEnsemble::from_raw(base, 1.0, vec![0], nodes.clone(), feature_count).unwrap()
        };
        ModelArtifact {
            name: "gbrt".into(),
            version,
            feature_count,
            trained_on: "unit".into(),
            vertical: mk(1.0),
            horizontal: mk(0.5),
        }
    }

    fn start_simple(cfg: ServeConfig) -> Server {
        let (s, report) = Server::start(cfg, Some(stump_artifact(1, 4)), None).unwrap();
        assert!(report.install_error.is_none(), "{report:?}");
        s
    }

    #[test]
    fn predict_round_trips_through_the_active_model() {
        let s = start_simple(ServeConfig::default());
        let reply = s.call(Request::predict(
            1,
            vec![vec![1.0; 4], vec![9.0, 0.0, 0.0, 0.0]],
        ));
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(reply.model, "gbrt@v1");
        assert_eq!(reply.vertical, vec![11.0, 91.0]); // base 1 + leaf
        assert_eq!(reply.horizontal, vec![10.5, 90.5]);
        let sum = s.shutdown();
        assert_eq!(sum.metrics.completed, 1);
        assert_eq!(sum.metrics.errors, 0);
    }

    #[test]
    fn malformed_rows_get_typed_errors() {
        let s = start_simple(ServeConfig::default());
        let r = s.call(Request::predict(1, vec![vec![1.0; 4], vec![1.0; 3]]));
        assert_eq!(r.status, ReplyStatus::Error);
        assert!(r.error.unwrap().contains("row 1"));
        // Empty batch is fine.
        let r = s.call(Request::predict(2, vec![]));
        assert_eq!(r.status, ReplyStatus::Ok);
        s.shutdown();
    }

    #[test]
    fn no_model_degrades_to_analytic() {
        let (s, _) = Server::start(ServeConfig::default(), None, None).unwrap();
        let r = s.call(Request::predict(5, vec![vec![2.0; 302]]));
        assert_eq!(r.status, ReplyStatus::Degraded);
        assert_eq!(r.model, "analytic");
        assert!(r.degraded());
        assert_eq!(r.vertical.len(), 1);
        let sum = s.shutdown();
        assert_eq!(sum.metrics.degraded, 1);
    }

    #[test]
    fn zero_deadline_is_cooperatively_cancelled() {
        let s = start_simple(ServeConfig::default());
        let mut req = Request::predict(3, vec![vec![0.0; 4]]);
        req.deadline_ms = Some(0);
        // An already-expired deadline is caught at dequeue.
        std::thread::sleep(Duration::from_millis(2));
        let r = s.call(req);
        assert_eq!(r.status, ReplyStatus::DeadlineExceeded);
        let sum = s.shutdown();
        assert_eq!(sum.metrics.deadline_missed, 1);
    }

    #[test]
    fn coalesced_batch_replies_match_per_request_bits() {
        // Hold the worker on the pacing gate while requests pile up, so a
        // real multi-request batch forms; then compare against the
        // unbatched config, bit for bit.
        let gate = Arc::new(WorkGate::closed());
        let cfg = ServeConfig {
            batch_max_rows: 64,
            pace_gate: Some(gate.clone()),
            ..ServeConfig::default()
        };
        let s = start_simple(cfg);
        let reqs: Vec<Request> = (0..8)
            .map(|i| {
                Request::predict(
                    i + 1,
                    vec![vec![i as f64; 4], vec![9.0 - i as f64, 0.0, 0.0, 0.0]],
                )
            })
            .collect();
        let rxs: Vec<_> = reqs.iter().map(|r| s.submit(r.clone())).collect();
        gate.open();
        let batched: Vec<Reply> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        let sum = s.shutdown();
        assert!(sum.metrics.batches >= 1, "a multi-request batch must form");
        assert!(sum.metrics.coalesced >= 2);

        let single = start_simple(ServeConfig {
            batch_max_rows: 1,
            ..ServeConfig::default()
        });
        for (req, b) in reqs.iter().zip(&batched) {
            let r = single.call(req.clone());
            assert_eq!(r.status, b.status);
            assert_eq!(r.model, b.model);
            assert_eq!(
                r.vertical.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.vertical.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "vertical bits must match for id {}",
                req.id
            );
            assert_eq!(
                r.horizontal.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.horizontal.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
        single.shutdown();
    }

    #[test]
    fn source_cache_hits_skip_extraction_and_swaps_invalidate() {
        use std::sync::atomic::AtomicU64;
        let extractions = Arc::new(AtomicU64::new(0));
        let counter = extractions.clone();
        let extractor: Arc<SourceExtractor> = Arc::new(move |_name, text: &str| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok((vec![vec![text.len() as f64; 4]], vec![1]))
        });
        let dir = std::env::temp_dir().join(format!("servekit-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v2 = dir.join("v2.json");
        stump_artifact(2, 4).save(&v2).unwrap();
        let (s, _) = Server::start(
            ServeConfig::default(),
            Some(stump_artifact(1, 4)),
            Some(extractor),
        )
        .unwrap();
        let src = |id| Request {
            id,
            deadline_ms: None,
            body: RequestBody::Source {
                name: "d".into(),
                text: "int32 f() { return 1; }".into(),
            },
        };
        let r1 = s.call(src(1));
        assert_eq!(r1.info.get("cache").map(String::as_str), Some("miss"));
        let r2 = s.call(src(2));
        assert_eq!(r2.info.get("cache").map(String::as_str), Some("hit"));
        assert_eq!(
            extractions.load(Ordering::SeqCst),
            1,
            "hit skips extraction"
        );
        assert_eq!(r1.vertical, r2.vertical, "cached rows answer identically");
        // Swap invalidates: the same design re-extracts under the new
        // model epoch.
        let swap = s.call(Request {
            id: 3,
            deadline_ms: None,
            body: RequestBody::Swap {
                path: v2.to_string_lossy().into_owned(),
            },
        });
        assert_eq!(swap.status, ReplyStatus::Ok, "{swap:?}");
        let r3 = s.call(src(4));
        assert_eq!(r3.info.get("cache").map(String::as_str), Some("miss"));
        assert_eq!(r3.model, "gbrt@v2");
        assert_eq!(extractions.load(Ordering::SeqCst), 2);
        let stats = s.cache_stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.invalidations, 1);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_and_shutdown_requests_work() {
        let s = start_simple(ServeConfig::default());
        let r = s.call(Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Status,
        });
        assert_eq!(r.status, ReplyStatus::Ok);
        assert_eq!(r.model, "gbrt@v1");
        assert_eq!(r.info.get("queue_depth").unwrap(), "0");
        let r = s.call(Request {
            id: 2,
            deadline_ms: None,
            body: RequestBody::Shutdown,
        });
        assert_eq!(r.status, ReplyStatus::Ok);
        assert!(s.is_shutting_down());
        s.shutdown();
    }
}
