//! The hot-swap model registry: versioned artifacts, a golden-batch
//! validation gate, and last-good rollback.
//!
//! Swap protocol: a candidate artifact is loaded and structurally
//! validated (deserialization already proved the node tables sound), then
//! gated — its golden-batch MAE must sit inside the configured band for
//! both targets. Only then does it become active, with the previous active
//! model retained as *last-good*. A gate failure changes nothing except
//! the reject/rollback counters: the daemon keeps answering on the model
//! it already trusts, which **is** the rollback — the candidate never got
//! in. [`ModelRegistry::demote`] is the predict-path escape hatch: a
//! poisoned active model falls back to last-good, and past that the
//! caller degrades to the analytic estimator.

use crate::artifact::ModelArtifact;
use mlkit::Matrix;
use std::sync::Arc;

/// A small labelled batch pinning prediction quality at the swap gate.
#[derive(Debug, Clone)]
pub struct GoldenBatch {
    /// Feature rows.
    pub rows: Matrix,
    /// Vertical congestion labels, one per row.
    pub vertical: Vec<f64>,
    /// Horizontal congestion labels, one per row.
    pub horizontal: Vec<f64>,
}

impl GoldenBatch {
    /// A golden batch from parallel rows/labels, truncated to `cap` rows
    /// (gate latency must stay bounded — a swap holds the registry lock).
    pub fn new(
        rows: Vec<Vec<f64>>,
        vertical: Vec<f64>,
        horizontal: Vec<f64>,
        cap: usize,
    ) -> GoldenBatch {
        let n = rows
            .len()
            .min(vertical.len())
            .min(horizontal.len())
            .min(cap.max(1));
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = Matrix::with_cols(cols);
        for row in rows.iter().take(n) {
            m.push_row(row);
        }
        GoldenBatch {
            rows: m,
            vertical: vertical[..n].to_vec(),
            horizontal: horizontal[..n].to_vec(),
        }
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.rows()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Gate measurements for a candidate that passed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateOutcome {
    /// Golden-batch vertical MAE (0 with no golden batch configured).
    pub mae_v: f64,
    /// Golden-batch horizontal MAE.
    pub mae_h: f64,
}

/// The validation gate every candidate must pass before activation.
#[derive(Debug, Clone, Default)]
pub struct ValidationGate {
    /// Feature width the server extracts/accepts; a candidate trained on a
    /// different width is structurally incompatible.
    pub expected_features: usize,
    /// Maximum golden-batch MAE (percentage points) for either target.
    pub mae_band: f64,
    /// The golden batch; `None` skips the quality check (structural checks
    /// still apply).
    pub golden: Option<GoldenBatch>,
}

impl ValidationGate {
    /// Validate `candidate`.
    ///
    /// # Errors
    /// A human-readable reason the candidate must not go live.
    pub fn validate(&self, candidate: &ModelArtifact) -> Result<GateOutcome, String> {
        if self.expected_features != 0 && candidate.feature_count != self.expected_features {
            return Err(format!(
                "feature width {} does not match the server's {}",
                candidate.feature_count, self.expected_features
            ));
        }
        let Some(golden) = self.golden.as_ref().filter(|g| !g.is_empty()) else {
            return Ok(GateOutcome::default());
        };
        if golden.rows.cols() != candidate.feature_count {
            return Err(format!(
                "golden batch is {}-wide, candidate expects {}",
                golden.rows.cols(),
                candidate.feature_count
            ));
        }
        let mut v = vec![0.0; golden.len()];
        let mut h = vec![0.0; golden.len()];
        candidate.vertical.predict_into(&golden.rows, &mut v);
        candidate.horizontal.predict_into(&golden.rows, &mut h);
        let mae = |pred: &[f64], label: &[f64]| {
            pred.iter()
                .zip(label)
                .map(|(p, l)| (p - l).abs())
                .sum::<f64>()
                / pred.len() as f64
        };
        let out = GateOutcome {
            mae_v: mae(&v, &golden.vertical),
            mae_h: mae(&h, &golden.horizontal),
        };
        if !out.mae_v.is_finite() || !out.mae_h.is_finite() {
            return Err("non-finite golden-batch predictions".into());
        }
        if out.mae_v > self.mae_band || out.mae_h > self.mae_band {
            return Err(format!(
                "golden-batch MAE (V {:.3}, H {:.3}) outside the ±{:.3} band",
                out.mae_v, out.mae_h, self.mae_band
            ));
        }
        Ok(out)
    }
}

/// The registry: active + last-good artifacts plus swap accounting.
pub struct ModelRegistry {
    gate: ValidationGate,
    active: Option<Arc<ModelArtifact>>,
    last_good: Option<Arc<ModelArtifact>>,
    /// Committed swaps (including the initial install).
    pub swaps: u64,
    /// Candidates rejected by the gate.
    pub rejects: u64,
    /// Fallbacks to last-good (gate failures and predict-path demotions).
    pub rollbacks: u64,
    /// Monotonic model epoch: bumped on every change to the *active* slot
    /// (install commit, rollback, demotion). Gate rejects do **not** bump
    /// it — the active model is unchanged. The feature cache keys its
    /// swap-aware invalidation off this counter.
    pub generation: u64,
}

impl ModelRegistry {
    /// An empty registry behind `gate` (serves analytic until a model
    /// installs).
    pub fn new(gate: ValidationGate) -> ModelRegistry {
        ModelRegistry {
            gate,
            active: None,
            last_good: None,
            swaps: 0,
            rejects: 0,
            rollbacks: 0,
            generation: 0,
        }
    }

    /// The active model, if any.
    pub fn active(&self) -> Option<Arc<ModelArtifact>> {
        self.active.clone()
    }

    /// Display name of whatever currently answers (`analytic` when no
    /// model is active).
    pub fn active_name(&self) -> String {
        self.active
            .as_ref()
            .map(|m| m.display_name())
            .unwrap_or_else(|| crate::estimator::ANALYTIC_MODEL.to_string())
    }

    /// Gate and (on success) activate `candidate`, retaining the previous
    /// active model as last-good. On gate failure nothing changes except
    /// the counters: the reject *is* the rollback — the daemon stays on
    /// the model it already trusts.
    ///
    /// # Errors
    /// The gate's reason; the counters record one reject (plus one
    /// rollback when there was a model to stay on).
    pub fn install(&mut self, candidate: ModelArtifact) -> Result<GateOutcome, String> {
        match self.gate.validate(&candidate) {
            Ok(outcome) => {
                let incoming = Arc::new(candidate);
                self.last_good = self.active.take().or_else(|| Some(incoming.clone()));
                self.active = Some(incoming);
                self.swaps += 1;
                self.generation += 1;
                Ok(outcome)
            }
            Err(reason) => {
                self.rejects += 1;
                if self.active.is_some() {
                    self.rollbacks += 1;
                }
                Err(reason)
            }
        }
    }

    /// Explicit rollback to last-good. Returns the now-active model, or
    /// `None` when there is nothing to roll back to.
    pub fn rollback(&mut self) -> Option<Arc<ModelArtifact>> {
        let last = self.last_good.clone()?;
        self.active = Some(last.clone());
        self.rollbacks += 1;
        self.generation += 1;
        Some(last)
    }

    /// Demote a poisoned active model (terminal predict failure): fall
    /// back to last-good when it is a *different* artifact, else clear the
    /// active slot entirely (callers then degrade to analytic). Returns
    /// the replacement, if any.
    pub fn demote(&mut self) -> Option<Arc<ModelArtifact>> {
        let active_digest = self.active.as_ref().map(|m| m.digest());
        self.active = None;
        self.rollbacks += 1;
        self.generation += 1;
        match (&self.last_good, active_digest) {
            (Some(last), Some(d)) if last.digest() != d => {
                self.active = Some(last.clone());
                Some(last.clone())
            }
            _ => {
                self.last_good = None;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::LEAF;
    use mlkit::CompiledEnsemble;

    fn artifact(version: u64, leaf: f64) -> ModelArtifact {
        let nodes = vec![(LEAF, 0, 0, leaf)];
        ModelArtifact {
            name: "gbrt".into(),
            version,
            feature_count: 3,
            trained_on: "test".into(),
            vertical: CompiledEnsemble::from_raw(0.0, 1.0, vec![0], nodes.clone(), 3).unwrap(),
            horizontal: CompiledEnsemble::from_raw(0.0, 1.0, vec![0], nodes, 3).unwrap(),
        }
    }

    fn gate(band: f64, label: f64) -> ValidationGate {
        ValidationGate {
            expected_features: 3,
            mae_band: band,
            golden: Some(GoldenBatch::new(
                vec![vec![0.0; 3]; 4],
                vec![label; 4],
                vec![label; 4],
                256,
            )),
        }
    }

    #[test]
    fn good_candidate_installs_and_tracks_last_good() {
        let mut r = ModelRegistry::new(gate(5.0, 50.0));
        assert_eq!(r.active_name(), "analytic");
        r.install(artifact(1, 50.0)).unwrap();
        assert_eq!(r.active_name(), "gbrt@v1");
        let out = r.install(artifact(2, 52.0)).unwrap();
        assert!(out.mae_v > 0.0 && out.mae_v <= 5.0);
        assert_eq!(r.active_name(), "gbrt@v2");
        assert_eq!(r.swaps, 2);
        // Rollback returns to v1.
        r.rollback().unwrap();
        assert_eq!(r.active_name(), "gbrt@v1");
        assert_eq!(r.rollbacks, 1);
    }

    #[test]
    fn gate_rejects_out_of_band_candidate_and_keeps_active() {
        let mut r = ModelRegistry::new(gate(5.0, 50.0));
        r.install(artifact(1, 50.0)).unwrap();
        let e = r.install(artifact(2, 90.0)).unwrap_err();
        assert!(e.contains("band"), "{e}");
        assert_eq!(r.active_name(), "gbrt@v1", "reject leaves active alone");
        assert_eq!(r.rejects, 1);
        assert_eq!(r.rollbacks, 1, "the reject is a rollback to last-good");
    }

    #[test]
    fn gate_rejects_wrong_feature_width() {
        let mut r = ModelRegistry::new(ValidationGate {
            expected_features: 302,
            ..Default::default()
        });
        let e = r.install(artifact(1, 10.0)).unwrap_err();
        assert!(e.contains("width"), "{e}");
        assert_eq!(r.rejects, 1);
        assert_eq!(r.rollbacks, 0, "nothing to roll back to");
    }

    #[test]
    fn demote_walks_the_degradation_ladder() {
        let mut r = ModelRegistry::new(gate(10.0, 50.0));
        r.install(artifact(1, 50.0)).unwrap();
        r.install(artifact(2, 55.0)).unwrap();
        // Active v2 poisoned → last-good v1 takes over.
        let next = r.demote().unwrap();
        assert_eq!(next.display_name(), "gbrt@v1");
        assert_eq!(r.active_name(), "gbrt@v1");
        // v1 poisoned too and it is its own last-good → analytic.
        assert!(r.demote().is_none());
        assert_eq!(r.active_name(), "analytic");
        assert_eq!(r.rollbacks, 2);
    }
}
