//! Versioned model artifacts (`servekit.model.v1`): a pair of compiled
//! flat-table ensembles (vertical + horizontal) with identity metadata,
//! serialized as canonical JSON.
//!
//! Artifacts are the unit of hot-swap: `hls-congest train --model-out`
//! writes one, the registry validates and installs it. Deserialization
//! goes through [`CompiledEnsemble::from_raw`], so a corrupt file (out of
//! bounds children, cycles, non-finite thresholds) is rejected with a
//! typed error before it can ever reach a traversal. Node thresholds are
//! written with Rust's shortest round-trip float formatting, so a
//! save/load cycle is bitwise lossless.

use faultkit::json::{self, Value};
use mlkit::CompiledEnsemble;
use std::collections::BTreeMap;
use std::path::Path;

/// The artifact schema identifier.
pub const MODEL_SCHEMA: &str = "servekit.model.v1";

/// A versioned, swappable model artifact.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Model family/name (`gbrt`, …).
    pub name: String,
    /// Monotonic artifact version (caller-assigned).
    pub version: u64,
    /// Width of the feature rows both ensembles expect.
    pub feature_count: usize,
    /// Freeform provenance note (training corpus, sample count, …).
    pub trained_on: String,
    /// Vertical-congestion ensemble.
    pub vertical: CompiledEnsemble,
    /// Horizontal-congestion ensemble.
    pub horizontal: CompiledEnsemble,
}

impl ModelArtifact {
    /// Display identity: `name@vN`.
    pub fn display_name(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }

    /// Stable content digest (FNV-1a of the canonical JSON).
    pub fn digest(&self) -> u64 {
        faultkit::fnv1a(&[self.to_json().as_bytes()])
    }

    /// Serialize to canonical `servekit.model.v1` JSON. Key order is fixed
    /// (BTreeMap), numbers use shortest round-trip formatting, so two
    /// identical artifacts serialize byte-identically.
    pub fn to_json(&self) -> String {
        let ensemble = |e: &CompiledEnsemble| {
            let mut o = BTreeMap::new();
            o.insert("base".into(), Value::Num(e.base()));
            o.insert("scale".into(), Value::Num(e.scale()));
            o.insert(
                "roots".into(),
                Value::Arr(
                    e.roots()
                        .iter()
                        .map(|&r| Value::Num(f64::from(r)))
                        .collect(),
                ),
            );
            o.insert(
                "nodes".into(),
                Value::Arr(
                    e.nodes_raw()
                        .map(|(f, l, r, t)| {
                            Value::Arr(vec![
                                Value::Num(f64::from(f)),
                                Value::Num(f64::from(l)),
                                Value::Num(f64::from(r)),
                                Value::Num(t),
                            ])
                        })
                        .collect(),
                ),
            );
            Value::Obj(o)
        };
        let mut top = BTreeMap::new();
        top.insert("schema".into(), Value::Str(MODEL_SCHEMA.into()));
        top.insert("name".into(), Value::Str(self.name.clone()));
        top.insert("version".into(), Value::Num(self.version as f64));
        top.insert(
            "feature_count".into(),
            Value::Num(self.feature_count as f64),
        );
        top.insert("trained_on".into(), Value::Str(self.trained_on.clone()));
        top.insert("vertical".into(), ensemble(&self.vertical));
        top.insert("horizontal".into(), ensemble(&self.horizontal));
        Value::Obj(top).to_json()
    }

    /// Parse and structurally validate an artifact. Ensembles are rebuilt
    /// through [`CompiledEnsemble::from_raw`], so every traversal
    /// invariant (bounds, acyclicity, finiteness, feature space) holds on
    /// success.
    ///
    /// # Errors
    /// A description of the first malformed field or violated invariant.
    pub fn from_json(text: &str) -> Result<ModelArtifact, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != MODEL_SCHEMA {
            return Err(format!("expected schema `{MODEL_SCHEMA}`, got `{schema}`"));
        }
        let feature_count = doc
            .get("feature_count")
            .and_then(Value::as_u64)
            .ok_or("missing integer `feature_count`")? as usize;
        let ensemble = |key: &str| -> Result<CompiledEnsemble, String> {
            let e = doc.get(key).ok_or_else(|| format!("missing `{key}`"))?;
            let base = e
                .get("base")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{key}: missing number `base`"))?;
            let scale = e
                .get("scale")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{key}: missing number `scale`"))?;
            let roots: Vec<u32> = e
                .get("roots")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{key}: missing `roots` array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("{key}: bad root index"))
                })
                .collect::<Result<_, _>>()?;
            let nodes: Vec<(u32, u32, u32, f64)> = e
                .get("nodes")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{key}: missing `nodes` array"))?
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let n = n
                        .as_arr()
                        .filter(|a| a.len() == 4)
                        .ok_or_else(|| format!("{key}: node {i} is not a 4-tuple"))?;
                    let idx = |j: usize| {
                        n[j].as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .ok_or_else(|| format!("{key}: node {i} field {j} not a u32"))
                    };
                    let t = n[3]
                        .as_f64()
                        .ok_or_else(|| format!("{key}: node {i} threshold not a number"))?;
                    Ok((idx(0)?, idx(1)?, idx(2)?, t))
                })
                .collect::<Result<_, String>>()?;
            CompiledEnsemble::from_raw(base, scale, roots, nodes, feature_count)
                .map_err(|e| format!("{key}: {e}"))
        };
        Ok(ModelArtifact {
            name: doc
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("model")
                .to_string(),
            version: doc.get("version").and_then(Value::as_u64).unwrap_or(0),
            feature_count,
            trained_on: doc
                .get("trained_on")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            vertical: ensemble("vertical")?,
            horizontal: ensemble("horizontal")?,
        })
    }

    /// Write the artifact to `path` (tmp + rename, so a concurrent swap
    /// never observes a half-written file).
    ///
    /// # Errors
    /// Any I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and validate an artifact from `path`.
    ///
    /// # Errors
    /// I/O failure, parse failure, or a violated structural invariant, as
    /// one string.
    pub fn load(path: &Path) -> Result<ModelArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The leaf sentinel (`u32::MAX`) — re-exported for tests that build node
/// tables by hand.
pub const LEAF: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_artifact(version: u64) -> ModelArtifact {
        // One stump per target: split on feature 0 at 3.0.
        let nodes = vec![(0u32, 1, 2, 3.0), (LEAF, 0, 0, 10.0), (LEAF, 0, 0, 90.0)];
        let v = CompiledEnsemble::from_raw(1.0, 1.0, vec![0], nodes.clone(), 4).unwrap();
        let h = CompiledEnsemble::from_raw(0.5, 1.0, vec![0], nodes, 4).unwrap();
        ModelArtifact {
            name: "gbrt".into(),
            version,
            feature_count: 4,
            trained_on: "unit-test".into(),
            vertical: v,
            horizontal: h,
        }
    }

    #[test]
    fn save_load_round_trip_is_bitwise() {
        let a = tiny_artifact(3);
        let dir = std::env::temp_dir().join(format!("servekit-artifact-{}", std::process::id()));
        let path = dir.join("m.json");
        a.save(&path).unwrap();
        let b = ModelArtifact::load(&path).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "canonical JSON is stable");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.display_name(), "gbrt@v3");
        let row = [5.0, 0.0, 0.0, 0.0];
        assert_eq!(
            a.vertical.predict_row(&row).to_bits(),
            b.vertical.predict_row(&row).to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        let good = tiny_artifact(1).to_json();
        // Wrong schema.
        let e = ModelArtifact::from_json(&good.replace("servekit.model.v1", "x")).unwrap_err();
        assert!(e.contains("schema"), "{e}");
        // Out-of-bounds child: point the root's left child past the table.
        let bad = good.replace("[0.0,1.0,2.0,3.0]", "[0.0,1.0,99.0,3.0]");
        let e = ModelArtifact::from_json(&bad).unwrap_err();
        assert!(e.contains("outside"), "{e}");
        // Truncated file.
        assert!(ModelArtifact::from_json(&good[..good.len() / 2]).is_err());
        // Not JSON at all.
        assert!(ModelArtifact::from_json("hello").is_err());
    }
}
