//! Bounded admission queue with deterministic shed-oldest load shedding.
//!
//! Backpressure contract: [`AdmissionQueue::push`] never blocks and never
//! stalls the caller at the OS level. When the queue is full, the *oldest*
//! queued item is evicted and handed back to the caller, which owes it a
//! typed `Overloaded` reply — newest-wins admission keeps the queue's
//! contents fresh under sustained overload (the oldest request is the one
//! most likely past its deadline anyway).
//!
//! **Determinism.** Shedding is decided entirely in the admission path,
//! under one lock, purely from the queue occupancy at push time — workers
//! only ever pop. For a fixed arrival/drain interleaving the shed set is
//! therefore a pure function of the trace and the capacity, independent of
//! how many workers drain the queue; [`shed_plan`] is that function in
//! directly testable form, and the chaos suite asserts the live queue
//! matches it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Outcome of a non-blocking admission attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit<T> {
    /// Item queued; queue had room.
    Queued,
    /// Item queued, but the queue was full: the returned oldest item was
    /// shed and must receive an `Overloaded` reply.
    Shed(T),
    /// The queue is closed (shutting down); the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking shed-oldest push, blocking pop.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admit `item` without blocking; see [`Admit`].
    pub fn push(&self, item: T) -> Admit<T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Admit::Closed(item);
        }
        let shed = if inner.items.len() >= self.capacity {
            inner.items.pop_front()
        } else {
            None
        };
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        match shed {
            Some(old) => Admit::Shed(old),
            None => Admit::Queued,
        }
    }

    /// Pop the oldest item, blocking until one arrives. Returns `None`
    /// once the queue is closed *and* drained — pending items are still
    /// delivered after close, so every admitted request gets its reply.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Close the queue: future pushes return [`Admit::Closed`], poppers
    /// drain what remains and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// One step of a synthetic overload trace: `arrivals` requests arrive
/// (ids assigned sequentially across the whole trace), then `drains`
/// requests are taken off the queue by workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Requests arriving this step.
    pub arrivals: u64,
    /// Requests drained (served) this step.
    pub drains: u64,
}

/// The reference model of shed-oldest admission: replay `trace` against a
/// queue of `capacity` and return `(served_ids, shed_ids)` — both sorted
/// ascending. Because live shedding is decided solely at push time under
/// the admission lock, a real [`AdmissionQueue`] driven by the same
/// arrival/drain interleaving sheds exactly this id set, for any worker
/// count; the chaos tests pin that equivalence.
pub fn shed_plan(capacity: usize, trace: &[TraceStep]) -> (Vec<u64>, Vec<u64>) {
    let capacity = capacity.max(1);
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut served = Vec::new();
    let mut shed = Vec::new();
    let mut next_id = 0u64;
    for step in trace {
        for _ in 0..step.arrivals {
            if queue.len() >= capacity {
                shed.push(queue.pop_front().expect("capacity >= 1"));
            }
            queue.push_back(next_id);
            next_id += 1;
        }
        for _ in 0..step.drains {
            if let Some(id) = queue.pop_front() {
                served.push(id);
            }
        }
    }
    served.extend(queue); // shutdown drains the remainder
    served.sort_unstable();
    shed.sort_unstable();
    (served, shed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = AdmissionQueue::new(4);
        assert_eq!(q.push(1), Admit::Queued);
        assert_eq!(q.push(2), Admit::Queued);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_sheds_oldest() {
        let q = AdmissionQueue::new(2);
        q.push(10);
        q.push(11);
        assert_eq!(q.push(12), Admit::Shed(10), "oldest goes first");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = AdmissionQueue::new(4);
        q.push(1);
        q.close();
        assert_eq!(q.push(2), Admit::Closed(2));
        assert_eq!(q.pop(), Some(1), "pending item still delivered");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn shed_plan_partitions_ids() {
        // 2x overload: 8 arrive, 4 drain, per step.
        let trace = vec![
            TraceStep {
                arrivals: 8,
                drains: 4,
            };
            5
        ];
        let (served, shed) = shed_plan(4, &trace);
        assert_eq!(served.len() + shed.len(), 40, "every id accounted for");
        assert!(!shed.is_empty(), "2x overload must shed");
        let mut all: Vec<u64> = served.iter().chain(shed.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>(), "no duplicates, no loss");
        // Pure function: same trace, same partition.
        assert_eq!(shed_plan(4, &trace), (served, shed));
    }

    #[test]
    fn no_overload_sheds_nothing() {
        let trace = vec![
            TraceStep {
                arrivals: 2,
                drains: 2,
            };
            10
        ];
        let (served, shed) = shed_plan(4, &trace);
        assert_eq!(served.len(), 20);
        assert!(shed.is_empty());
    }
}
