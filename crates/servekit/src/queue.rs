//! Bounded admission queue with deterministic shed-oldest load shedding.
//!
//! Backpressure contract: [`AdmissionQueue::push`] never blocks and never
//! stalls the caller at the OS level. When the queue is full, the *oldest*
//! queued item is evicted and handed back to the caller, which owes it a
//! typed `Overloaded` reply — newest-wins admission keeps the queue's
//! contents fresh under sustained overload (the oldest request is the one
//! most likely past its deadline anyway).
//!
//! **Determinism.** Shedding is decided entirely in the admission path,
//! under one lock, purely from the queue occupancy at push time — workers
//! only ever pop. For a fixed arrival/drain interleaving the shed set is
//! therefore a pure function of the trace and the capacity, independent of
//! how many workers drain the queue; [`shed_plan`] is that function in
//! directly testable form, and the chaos suite asserts the live queue
//! matches it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of a non-blocking admission attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit<T> {
    /// Item queued; queue had room.
    Queued,
    /// Item queued, but the queue was full: the returned oldest item was
    /// shed and must receive an `Overloaded` reply.
    Shed(T),
    /// The queue is closed (shutting down); the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking shed-oldest push, blocking pop.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admit `item` without blocking; see [`Admit`].
    pub fn push(&self, item: T) -> Admit<T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Admit::Closed(item);
        }
        let shed = if inner.items.len() >= self.capacity {
            inner.items.pop_front()
        } else {
            None
        };
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        match shed {
            Some(old) => Admit::Shed(old),
            None => Admit::Queued,
        }
    }

    /// Pop the oldest item, blocking until one arrives. Returns `None`
    /// once the queue is closed *and* drained — pending items are still
    /// delivered after close, so every admitted request gets its reply.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Close the queue: future pushes return [`Admit::Closed`], poppers
    /// drain what remains and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Pop a micro-batch: block for the first item, then coalesce the
    /// contiguous run of *coalescible* items behind it (those for which
    /// `weight_of` returns `Some(rows)`) while the summed weight stays
    /// within `max_weight`. A non-coalescible head (`None`) is returned
    /// alone; one encountered mid-queue ends the batch — batches are
    /// always contiguous queue prefixes, so FIFO order is preserved and
    /// the partition is decided entirely under the queue lock from the
    /// queue contents at drain time (see [`coalesce_plan`]).
    ///
    /// When the queue runs dry before the weight budget is filled and
    /// `max_wait` is nonzero, the pop lingers up to `max_wait` for more
    /// arrivals to join the batch. `max_wait = 0` takes what is there.
    ///
    /// Returns `None` once the queue is closed and drained, like
    /// [`Self::pop`]. A batch is never empty.
    pub fn pop_batch<F>(
        &self,
        max_weight: usize,
        max_wait: Duration,
        weight_of: F,
    ) -> Option<Vec<T>>
    where
        F: Fn(&T) -> Option<usize>,
    {
        let mut inner = self.inner.lock().unwrap();
        let first = loop {
            if let Some(item) = inner.items.pop_front() {
                break item;
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        };
        let Some(first_weight) = weight_of(&first) else {
            return Some(vec![first]); // barrier request runs alone
        };
        let mut weight = first_weight.max(1);
        let mut batch = vec![first];
        if max_weight <= 1 {
            return Some(batch); // coalescing off: per-request drain
        }
        let linger = (max_wait > Duration::ZERO).then(|| Instant::now() + max_wait);
        loop {
            while let Some(front) = inner.items.front() {
                let Some(w) = weight_of(front) else {
                    return Some(batch); // barrier stops the batch
                };
                if weight + w.max(1) > max_weight {
                    return Some(batch);
                }
                weight += w.max(1);
                batch.push(inner.items.pop_front().expect("front observed"));
            }
            // Queue dry: linger for more arrivals if allowed.
            let Some(deadline) = linger else {
                return Some(batch);
            };
            if inner.closed {
                return Some(batch);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(batch);
            }
            let (guard, timeout) = self.ready.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return Some(batch);
            }
        }
    }
}

/// The reference model of micro-batch coalescing, the batching twin of
/// [`shed_plan`]: replay the *served* id sequence (in FIFO order, with
/// per-id row weights) and return the batch partition a single drainer
/// would form with `max_weight` and no linger (`max_wait = 0`, queue
/// pre-filled). Like shedding, the partition is decided entirely under
/// the queue lock from queue contents, so for a fixed drain interleaving
/// it is a pure function of (trace, config); the conformance suite pins
/// the live queue against this model.
pub fn coalesce_plan(max_weight: usize, weights: &[usize]) -> Vec<Vec<u64>> {
    let mut batches: Vec<Vec<u64>> = Vec::new();
    let mut current: Vec<u64> = Vec::new();
    let mut weight = 0usize;
    for (id, &w) in weights.iter().enumerate() {
        let w = w.max(1);
        if !current.is_empty() && (max_weight <= 1 || weight + w > max_weight) {
            batches.push(std::mem::take(&mut current));
            weight = 0;
        }
        current.push(id as u64);
        weight += w;
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// A counting permit gate for deterministic worker pacing: the virtual
/// clock of the serve-bench overload scenario. Workers acquire one permit
/// per queue drain *before* popping, so a trace player that alternates
/// "push `arrivals`, release `drains`" reproduces [`shed_plan`] exactly —
/// no wall-clock sleeps, no flaky shed rates on slow runners.
///
/// A gate starts **open** (unlimited permits, zero cost on the hot path);
/// [`WorkGate::close`] arms it. [`WorkGate::open`] releases every waiter,
/// which [`crate::Server::shutdown`] relies on to avoid wedging workers.
#[derive(Debug, Default)]
pub struct WorkGate {
    // None = open (unlimited); Some(n) = n permits outstanding.
    permits: Mutex<Option<u64>>,
    ready: Condvar,
}

impl WorkGate {
    /// A gate in the open (ungated) state.
    pub fn new() -> WorkGate {
        WorkGate::default()
    }

    /// A gate armed with zero permits: workers block until `release`.
    pub fn closed() -> WorkGate {
        WorkGate {
            permits: Mutex::new(Some(0)),
            ready: Condvar::new(),
        }
    }

    /// Arm the gate with zero permits.
    pub fn close(&self) {
        *self.permits.lock().unwrap() = Some(0);
    }

    /// Disarm: unlimited permits; wakes every waiter.
    pub fn open(&self) {
        *self.permits.lock().unwrap() = None;
        self.ready.notify_all();
    }

    /// Grant `n` permits.
    pub fn release(&self, n: u64) {
        let mut p = self.permits.lock().unwrap();
        if let Some(count) = p.as_mut() {
            *count += n;
            drop(p);
            self.ready.notify_all();
        }
    }

    /// Take one permit, blocking while the gate is armed and empty.
    pub fn acquire(&self) {
        let mut p = self.permits.lock().unwrap();
        loop {
            match p.as_mut() {
                None => return,
                Some(count) if *count > 0 => {
                    *count -= 1;
                    return;
                }
                Some(_) => p = self.ready.wait(p).unwrap(),
            }
        }
    }
}

/// One step of a synthetic overload trace: `arrivals` requests arrive
/// (ids assigned sequentially across the whole trace), then `drains`
/// requests are taken off the queue by workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Requests arriving this step.
    pub arrivals: u64,
    /// Requests drained (served) this step.
    pub drains: u64,
}

/// The reference model of shed-oldest admission: replay `trace` against a
/// queue of `capacity` and return `(served_ids, shed_ids)` — both sorted
/// ascending. Because live shedding is decided solely at push time under
/// the admission lock, a real [`AdmissionQueue`] driven by the same
/// arrival/drain interleaving sheds exactly this id set, for any worker
/// count; the chaos tests pin that equivalence.
pub fn shed_plan(capacity: usize, trace: &[TraceStep]) -> (Vec<u64>, Vec<u64>) {
    let capacity = capacity.max(1);
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut served = Vec::new();
    let mut shed = Vec::new();
    let mut next_id = 0u64;
    for step in trace {
        for _ in 0..step.arrivals {
            if queue.len() >= capacity {
                shed.push(queue.pop_front().expect("capacity >= 1"));
            }
            queue.push_back(next_id);
            next_id += 1;
        }
        for _ in 0..step.drains {
            if let Some(id) = queue.pop_front() {
                served.push(id);
            }
        }
    }
    served.extend(queue); // shutdown drains the remainder
    served.sort_unstable();
    shed.sort_unstable();
    (served, shed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = AdmissionQueue::new(4);
        assert_eq!(q.push(1), Admit::Queued);
        assert_eq!(q.push(2), Admit::Queued);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_sheds_oldest() {
        let q = AdmissionQueue::new(2);
        q.push(10);
        q.push(11);
        assert_eq!(q.push(12), Admit::Shed(10), "oldest goes first");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = AdmissionQueue::new(4);
        q.push(1);
        q.close();
        assert_eq!(q.push(2), Admit::Closed(2));
        assert_eq!(q.pop(), Some(1), "pending item still delivered");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn shed_plan_partitions_ids() {
        // 2x overload: 8 arrive, 4 drain, per step.
        let trace = vec![
            TraceStep {
                arrivals: 8,
                drains: 4,
            };
            5
        ];
        let (served, shed) = shed_plan(4, &trace);
        assert_eq!(served.len() + shed.len(), 40, "every id accounted for");
        assert!(!shed.is_empty(), "2x overload must shed");
        let mut all: Vec<u64> = served.iter().chain(shed.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>(), "no duplicates, no loss");
        // Pure function: same trace, same partition.
        assert_eq!(shed_plan(4, &trace), (served, shed));
    }

    #[test]
    fn pop_batch_coalesces_contiguous_weighted_prefix() {
        let q = AdmissionQueue::new(16);
        for w in [2usize, 3, 4, 5] {
            q.push(w);
        }
        // Budget 9 takes 2+3+4, leaves 5 for the next batch.
        let weigh = |w: &usize| Some(*w);
        let b = q.pop_batch(9, Duration::ZERO, weigh).unwrap();
        assert_eq!(b, vec![2, 3, 4]);
        assert_eq!(q.pop_batch(9, Duration::ZERO, weigh).unwrap(), vec![5]);
    }

    #[test]
    fn pop_batch_barrier_runs_alone_and_stops_batches() {
        // Weight None marks a barrier (swap/status style request).
        let q = AdmissionQueue::new(16);
        for v in [1i32, 2, -1, 3, -2, 4] {
            q.push(v);
        }
        let weigh = |v: &i32| (*v > 0).then_some(1usize);
        assert_eq!(q.pop_batch(100, Duration::ZERO, weigh).unwrap(), vec![1, 2]);
        assert_eq!(q.pop_batch(100, Duration::ZERO, weigh).unwrap(), vec![-1]);
        assert_eq!(q.pop_batch(100, Duration::ZERO, weigh).unwrap(), vec![3]);
        assert_eq!(q.pop_batch(100, Duration::ZERO, weigh).unwrap(), vec![-2]);
        assert_eq!(q.pop_batch(100, Duration::ZERO, weigh).unwrap(), vec![4]);
    }

    #[test]
    fn pop_batch_budget_one_is_per_request() {
        let q = AdmissionQueue::new(16);
        q.push(7);
        q.push(8);
        let weigh = |_: &i32| Some(1usize);
        assert_eq!(q.pop_batch(1, Duration::ZERO, weigh).unwrap(), vec![7]);
        assert_eq!(q.pop_batch(1, Duration::ZERO, weigh).unwrap(), vec![8]);
    }

    #[test]
    fn pop_batch_lingers_for_late_arrivals() {
        let q = Arc::new(AdmissionQueue::new(16));
        q.push(1);
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(2);
        });
        let b = q
            .pop_batch(10, Duration::from_millis(500), |_| Some(1usize))
            .unwrap();
        h.join().unwrap();
        assert_eq!(b, vec![1, 2], "late arrival joins the lingering batch");
    }

    #[test]
    fn pop_batch_none_after_close_and_drain() {
        let q = AdmissionQueue::new(4);
        q.push(1);
        q.close();
        let weigh = |_: &i32| Some(1usize);
        assert_eq!(
            q.pop_batch(8, Duration::from_millis(50), weigh).unwrap(),
            vec![1]
        );
        assert_eq!(q.pop_batch(8, Duration::from_millis(50), weigh), None);
    }

    #[test]
    fn coalesce_plan_partitions_all_ids_in_order() {
        let weights = [1usize, 1, 1, 4, 2, 2, 9, 1];
        let plan = coalesce_plan(4, &weights);
        assert_eq!(
            plan,
            vec![
                vec![0, 1, 2],
                vec![3],
                vec![4, 5],
                vec![6], // oversized request still forms its own batch
                vec![7],
            ]
        );
        let flat: Vec<u64> = plan.into_iter().flatten().collect();
        assert_eq!(flat, (0..8).collect::<Vec<_>>(), "FIFO preserved");
        // Budget 1 degenerates to per-request.
        assert_eq!(coalesce_plan(1, &weights).len(), weights.len());
    }

    #[test]
    fn work_gate_paces_acquires() {
        let g = Arc::new(WorkGate::closed());
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            g2.acquire();
            g2.acquire();
            77
        });
        g.release(2);
        assert_eq!(h.join().unwrap(), 77);
        // Open gate never blocks.
        g.open();
        g.acquire();
        g.acquire();
    }

    #[test]
    fn no_overload_sheds_nothing() {
        let trace = vec![
            TraceStep {
                arrivals: 2,
                drains: 2,
            };
            10
        ];
        let (served, shed) = shed_plan(4, &trace);
        assert_eq!(served.len(), 20);
        assert!(shed.is_empty());
    }
}
