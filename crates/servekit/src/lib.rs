//! servekit — the `congestd` serving layer for the congestion predictor.
//!
//! A crash-only, load-shedding prediction service: fitted ensembles load
//! once as [`ModelArtifact`]s (compiled via `mlkit::compiled`), requests
//! arrive over a length-prefixed socket protocol (with an HTTP fallback
//! for curl), and every admitted request receives exactly one typed reply
//! — `ok`, `degraded`, `overloaded`, `deadline_exceeded`, or `error` —
//! no matter what fails underneath.
//!
//! The crate deliberately depends only on `mlkit` (prediction), `faultkit`
//! (supervision + injection), and `obskit` (journal idiom + metrics): the
//! MiniHLS front-end for `source` requests is a callback the binary wires
//! in, keeping the serving layer reusable and the dependency graph
//! acyclic.
//!
//! Module map:
//! - [`proto`] — request/reply wire types (JSON).
//! - [`queue`] — bounded admission with deterministic shed-oldest,
//!   micro-batch coalescing, and the [`queue::WorkGate`] pacing gate.
//! - [`cache`] — digest-keyed feature cache with swap-aware invalidation.
//! - [`registry`] — hot-swap model registry, validation gate, rollback.
//! - [`artifact`] — versioned on-disk model artifacts.
//! - [`journal`] — append-only crash-recovery journal.
//! - [`estimator`] — the analytic degraded-path estimator.
//! - [`server`] — the request engine tying it together.
//! - [`net`] — TCP framing, thread-per-conn and event-loop front-ends,
//!   client helper.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod estimator;
pub mod journal;
pub mod net;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod server;

pub use artifact::{ModelArtifact, MODEL_SCHEMA};
pub use cache::{CacheStats, CachedFeatures, FeatureCache};
pub use estimator::{AnalyticEstimator, ANALYTIC_MODEL};
pub use journal::{Journal, JournalEvent, RecoveredState, JOURNAL_SCHEMA};
pub use net::{read_frame, request, serve_event_loop, serve_tcp, write_frame, MAX_FRAME};
pub use proto::{Reply, ReplyStatus, Request, RequestBody};
pub use queue::{coalesce_plan, shed_plan, AdmissionQueue, Admit, TraceStep, WorkGate};
pub use registry::{GateOutcome, GoldenBatch, ModelRegistry, ValidationGate};
pub use server::{
    LedgerSink, ServeConfig, ServeMetrics, ServeSummary, Server, SourceExtractor, SourceKeyFn,
    StartReport,
};
