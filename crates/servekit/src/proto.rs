//! The `congestd` wire protocol: typed requests and replies, JSON encoded,
//! carried as length-prefixed frames (see [`crate::net`]).
//!
//! Every admitted request produces exactly one reply, and the reply's
//! [`ReplyStatus`] is the *typed* outcome the robustness contract promises:
//! `Ok`, `Degraded` (analytic fallback answered), `Overloaded` (shed at
//! admission), `DeadlineExceeded` (cooperatively cancelled), or `Error`
//! (malformed input or terminal stage failure). The process never answers a
//! request by dying.

use faultkit::json::{self, Value};
use std::collections::BTreeMap;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Predict V/H congestion for pre-extracted feature rows.
    Predict {
        /// Feature rows, each `feature_count` wide.
        rows: Vec<Vec<f64>>,
    },
    /// Compile a MiniHLS source, extract per-op features, and predict.
    Source {
        /// Design name (used for diagnostics and fault-plan matching).
        name: String,
        /// MiniHLS source text.
        text: String,
    },
    /// Hot-swap the active model to the artifact at `path` (server-side
    /// path), gated by golden-batch validation.
    Swap {
        /// Path to a `servekit.model.v1` artifact file.
        path: String,
    },
    /// Roll the active model back to the last-good version.
    Rollback,
    /// Report server status (model, queue depth, counters).
    Status,
    /// Begin a clean shutdown.
    Shutdown,
}

impl RequestBody {
    /// Wire name of the request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Predict { .. } => "predict",
            RequestBody::Source { .. } => "source",
            RequestBody::Swap { .. } => "swap",
            RequestBody::Rollback => "rollback",
            RequestBody::Status => "status",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// One request. `id` is caller-assigned and echoed on the reply; the
/// optional deadline is measured from *admission*, cooperatively.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned correlation id, echoed on the reply.
    pub id: u64,
    /// Per-request deadline in milliseconds from admission; `None` uses
    /// the server default.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub body: RequestBody,
}

impl Request {
    /// A predict request over pre-extracted rows.
    pub fn predict(id: u64, rows: Vec<Vec<f64>>) -> Request {
        Request {
            id,
            deadline_ms: None,
            body: RequestBody::Predict { rows },
        }
    }

    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut o = BTreeMap::new();
        o.insert("id".into(), Value::Num(self.id as f64));
        o.insert("kind".into(), Value::Str(self.body.kind().into()));
        if let Some(d) = self.deadline_ms {
            o.insert("deadline_ms".into(), Value::Num(d as f64));
        }
        match &self.body {
            RequestBody::Predict { rows } => {
                let rows = rows
                    .iter()
                    .map(|r| Value::Arr(r.iter().map(|&v| Value::Num(v)).collect()))
                    .collect();
                o.insert("rows".into(), Value::Arr(rows));
            }
            RequestBody::Source { name, text } => {
                o.insert("name".into(), Value::Str(name.clone()));
                o.insert("text".into(), Value::Str(text.clone()));
            }
            RequestBody::Swap { path } => {
                o.insert("path".into(), Value::Str(path.clone()));
            }
            RequestBody::Rollback | RequestBody::Status | RequestBody::Shutdown => {}
        }
        Value::Obj(o).to_json()
    }

    /// Parse a request from wire JSON.
    ///
    /// # Errors
    /// A description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        if doc.as_obj().is_none() {
            return Err("request must be a JSON object".into());
        }
        let id = match doc.get("id") {
            None => 0,
            Some(v) => v.as_u64().ok_or("`id` must be a non-negative integer")?,
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("`deadline_ms` must be an integer")?),
        };
        let kind = doc
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing string field `kind`")?;
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{kind}` needs a string `{k}` field"))
        };
        let body = match kind {
            "predict" => {
                let rows = doc
                    .get("rows")
                    .and_then(Value::as_arr)
                    .ok_or("`predict` needs a `rows` array")?;
                let mut out = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let row = row
                        .as_arr()
                        .ok_or_else(|| format!("row {i}: not an array"))?;
                    let mut vals = Vec::with_capacity(row.len());
                    for v in row {
                        vals.push(v.as_f64().ok_or_else(|| format!("row {i}: non-number"))?);
                    }
                    out.push(vals);
                }
                RequestBody::Predict { rows: out }
            }
            "source" => RequestBody::Source {
                name: str_field("name")?,
                text: str_field("text")?,
            },
            "swap" => RequestBody::Swap {
                path: str_field("path")?,
            },
            "rollback" => RequestBody::Rollback,
            "status" => RequestBody::Status,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(format!("unknown request kind `{other}`")),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }
}

/// The typed outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplyStatus {
    /// Answered by the active model within deadline.
    #[default]
    Ok,
    /// Answered by a fallback (analytic estimator); quality reduced.
    Degraded,
    /// Shed at admission under overload; retry later.
    Overloaded,
    /// Cooperatively cancelled past its deadline.
    DeadlineExceeded,
    /// Malformed input or terminal failure; `error` explains.
    Error,
}

impl ReplyStatus {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ReplyStatus::Ok => "ok",
            ReplyStatus::Degraded => "degraded",
            ReplyStatus::Overloaded => "overloaded",
            ReplyStatus::DeadlineExceeded => "deadline_exceeded",
            ReplyStatus::Error => "error",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<ReplyStatus> {
        Some(match s {
            "ok" => ReplyStatus::Ok,
            "degraded" => ReplyStatus::Degraded,
            "overloaded" => ReplyStatus::Overloaded,
            "deadline_exceeded" => ReplyStatus::DeadlineExceeded,
            "error" => ReplyStatus::Error,
            _ => return None,
        })
    }
}

/// One reply. Exactly one per admitted request, echoing its `id`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Reply {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Typed outcome.
    pub status: ReplyStatus,
    /// Model that answered (`name@vN`, or `analytic` when degraded).
    pub model: String,
    /// Per-row (or per-op) vertical congestion predictions.
    pub vertical: Vec<f64>,
    /// Per-row (or per-op) horizontal congestion predictions.
    pub horizontal: Vec<f64>,
    /// Source lines per prediction (source requests only).
    pub lines: Vec<u32>,
    /// Failure description for `Error` replies.
    pub error: Option<String>,
    /// Freeform info (status replies: queue depth, counters, …).
    pub info: BTreeMap<String, String>,
}

impl Reply {
    /// A reply with the given id and status, nothing else.
    pub fn status_only(id: u64, status: ReplyStatus) -> Reply {
        Reply {
            id,
            status,
            ..Default::default()
        }
    }

    /// An `Error` reply carrying `message`.
    pub fn error(id: u64, message: impl Into<String>) -> Reply {
        Reply {
            id,
            status: ReplyStatus::Error,
            error: Some(message.into()),
            ..Default::default()
        }
    }

    /// True when the reply was answered by a fallback path.
    pub fn degraded(&self) -> bool {
        self.status == ReplyStatus::Degraded
    }

    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut o = BTreeMap::new();
        o.insert("id".into(), Value::Num(self.id as f64));
        o.insert("status".into(), Value::Str(self.status.name().into()));
        o.insert("degraded".into(), Value::Bool(self.degraded()));
        if !self.model.is_empty() {
            o.insert("model".into(), Value::Str(self.model.clone()));
        }
        let nums = |v: &[f64]| Value::Arr(v.iter().map(|&x| Value::Num(x)).collect());
        if !self.vertical.is_empty() || !self.horizontal.is_empty() {
            o.insert("vertical".into(), nums(&self.vertical));
            o.insert("horizontal".into(), nums(&self.horizontal));
        }
        if !self.lines.is_empty() {
            o.insert(
                "lines".into(),
                Value::Arr(
                    self.lines
                        .iter()
                        .map(|&l| Value::Num(f64::from(l)))
                        .collect(),
                ),
            );
        }
        if let Some(e) = &self.error {
            o.insert("error".into(), Value::Str(e.clone()));
        }
        if !self.info.is_empty() {
            let info = self
                .info
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect();
            o.insert("info".into(), Value::Obj(info));
        }
        Value::Obj(o).to_json()
    }

    /// Parse a reply from wire JSON.
    ///
    /// # Errors
    /// A description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Reply, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let status = doc
            .get("status")
            .and_then(Value::as_str)
            .and_then(ReplyStatus::parse)
            .ok_or("missing or unknown `status`")?;
        let floats = |k: &str| -> Result<Vec<f64>, String> {
            match doc.get(k) {
                None => Ok(Vec::new()),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| format!("`{k}` must be an array"))?
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| format!("`{k}`: non-number")))
                    .collect(),
            }
        };
        let mut info = BTreeMap::new();
        if let Some(Value::Obj(m)) = doc.get("info") {
            for (k, v) in m {
                if let Some(s) = v.as_str() {
                    info.insert(k.clone(), s.to_string());
                }
            }
        }
        Ok(Reply {
            id: doc.get("id").and_then(Value::as_u64).unwrap_or(0),
            status,
            model: doc
                .get("model")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            vertical: floats("vertical")?,
            horizontal: floats("horizontal")?,
            lines: floats("lines")?.into_iter().map(|l| l as u32).collect(),
            error: doc.get("error").and_then(Value::as_str).map(str::to_string),
            info,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_round_trip() {
        let reqs = [
            Request::predict(7, vec![vec![1.5, -2.0], vec![0.0, 3.25]]),
            Request {
                id: 8,
                deadline_ms: Some(250),
                body: RequestBody::Source {
                    name: "mac".into(),
                    text: "fn f() {}".into(),
                },
            },
            Request {
                id: 9,
                deadline_ms: None,
                body: RequestBody::Swap {
                    path: "/tmp/m.json".into(),
                },
            },
            Request {
                id: 10,
                deadline_ms: None,
                body: RequestBody::Rollback,
            },
            Request {
                id: 11,
                deadline_ms: None,
                body: RequestBody::Status,
            },
            Request {
                id: 12,
                deadline_ms: None,
                body: RequestBody::Shutdown,
            },
        ];
        for r in reqs {
            let back = Request::from_json(&r.to_json()).unwrap();
            assert_eq!(r, back, "{}", r.to_json());
        }
    }

    #[test]
    fn reply_round_trips_with_degraded_stamp() {
        let mut r = Reply {
            id: 3,
            status: ReplyStatus::Degraded,
            model: "analytic".into(),
            vertical: vec![12.5, 80.0],
            horizontal: vec![10.0, 61.25],
            lines: vec![4, 9],
            error: None,
            info: BTreeMap::new(),
        };
        r.info.insert("queue_depth".into(), "3".into());
        let json = r.to_json();
        assert!(json.contains("\"degraded\":true"), "{json}");
        assert_eq!(Reply::from_json(&json).unwrap(), r);
    }

    #[test]
    fn every_status_round_trips() {
        for s in [
            ReplyStatus::Ok,
            ReplyStatus::Degraded,
            ReplyStatus::Overloaded,
            ReplyStatus::DeadlineExceeded,
            ReplyStatus::Error,
        ] {
            assert_eq!(ReplyStatus::parse(s.name()), Some(s));
            let r = Reply::status_only(1, s);
            assert_eq!(Reply::from_json(&r.to_json()).unwrap().status, s);
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (text, needle) in [
            ("[]", "object"),
            (r#"{"id":1}"#, "kind"),
            (r#"{"id":1,"kind":"teleport"}"#, "unknown"),
            (r#"{"id":1,"kind":"predict"}"#, "rows"),
            (r#"{"id":1,"kind":"predict","rows":[["x"]]}"#, "non-number"),
            (r#"{"id":1,"kind":"swap"}"#, "path"),
        ] {
            let e = Request::from_json(text).unwrap_err();
            assert!(e.contains(needle), "`{text}` → {e}");
        }
    }
}
