//! The append-only serve journal (`servekit.journal.v1`) — the crash-only
//! persistence layer.
//!
//! Every state change the daemon must survive (start, swap commit/reject,
//! rollback, periodic in-flight accounting, shutdown) is one sequenced
//! JSON line, appended before the change takes effect elsewhere. Restart —
//! clean or after SIGKILL — replays the journal through the torn-write-
//! tolerant reader ([`obskit::read_jsonl`]): the last committed model and
//! the last progress counters are recovered, the sequence counter resumes
//! strictly after the highest seq on disk (so a crash can never produce a
//! duplicate seq), and the admitted−completed−shed gap at the last
//! progress record is surfaced as `lost_in_flight`. A torn trailing line
//! (the SIGKILL signature) is counted, not fatal — first boot and
//! post-crash boot share one code path.

use faultkit::json::{self, Value};
use obskit::read_jsonl;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The journal line schema identifier.
pub const JOURNAL_SCHEMA: &str = "servekit.journal.v1";

/// One journaled event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// Daemon came up with `model` active (`analytic` when none).
    ServeStart {
        /// Active model display name.
        model: String,
    },
    /// A hot-swap passed the validation gate and committed.
    SwapCommit {
        /// New active model display name.
        model: String,
        /// Golden-batch vertical MAE at the gate (0 when no golden batch).
        mae_v: f64,
        /// Golden-batch horizontal MAE at the gate.
        mae_h: f64,
    },
    /// A hot-swap was rejected by the validation gate.
    SwapReject {
        /// Candidate identity (path or display name).
        model: String,
        /// Why the gate refused it.
        reason: String,
    },
    /// The registry fell back to `model` (last-good, or `analytic`).
    Rollback {
        /// Model now active.
        model: String,
    },
    /// Periodic in-flight accounting (cumulative counters).
    Progress {
        /// Requests admitted so far.
        admitted: u64,
        /// Requests answered so far (any status except shed).
        completed: u64,
        /// Requests shed at admission so far.
        shed: u64,
        /// Requests answered degraded so far.
        degraded: u64,
    },
    /// Clean shutdown; absence of this as the last event marks a crash.
    Shutdown,
    /// Appended on restart after recovery, recording what was found.
    Recover {
        /// Requests that were in flight when the previous process died.
        lost_in_flight: u64,
        /// Torn/corrupt journal lines skipped during recovery.
        torn_lines: u64,
    },
}

impl JournalEvent {
    /// Wire name of the event.
    pub fn name(&self) -> &'static str {
        match self {
            JournalEvent::ServeStart { .. } => "serve.start",
            JournalEvent::SwapCommit { .. } => "swap.commit",
            JournalEvent::SwapReject { .. } => "swap.reject",
            JournalEvent::Rollback { .. } => "rollback",
            JournalEvent::Progress { .. } => "progress",
            JournalEvent::Shutdown => "shutdown",
            JournalEvent::Recover { .. } => "recover",
        }
    }

    fn to_line(&self, seq: u64) -> String {
        let mut o = BTreeMap::new();
        o.insert("schema".into(), Value::Str(JOURNAL_SCHEMA.into()));
        o.insert("seq".into(), Value::Num(seq as f64));
        o.insert("event".into(), Value::Str(self.name().into()));
        match self {
            JournalEvent::ServeStart { model } | JournalEvent::Rollback { model } => {
                o.insert("model".into(), Value::Str(model.clone()));
            }
            JournalEvent::SwapCommit {
                model,
                mae_v,
                mae_h,
            } => {
                o.insert("model".into(), Value::Str(model.clone()));
                o.insert("mae_v".into(), Value::Num(*mae_v));
                o.insert("mae_h".into(), Value::Num(*mae_h));
            }
            JournalEvent::SwapReject { model, reason } => {
                o.insert("model".into(), Value::Str(model.clone()));
                o.insert("reason".into(), Value::Str(reason.clone()));
            }
            JournalEvent::Progress {
                admitted,
                completed,
                shed,
                degraded,
            } => {
                o.insert("admitted".into(), Value::Num(*admitted as f64));
                o.insert("completed".into(), Value::Num(*completed as f64));
                o.insert("shed".into(), Value::Num(*shed as f64));
                o.insert("degraded".into(), Value::Num(*degraded as f64));
            }
            JournalEvent::Shutdown => {}
            JournalEvent::Recover {
                lost_in_flight,
                torn_lines,
            } => {
                o.insert("lost_in_flight".into(), Value::Num(*lost_in_flight as f64));
                o.insert("torn_lines".into(), Value::Num(*torn_lines as f64));
            }
        }
        Value::Obj(o).to_json()
    }
}

/// What replaying an existing journal recovered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveredState {
    /// Display name of the last committed model (start / swap / rollback),
    /// if any event named one.
    pub last_model: Option<String>,
    /// Cumulative counters at the last progress record.
    pub admitted: u64,
    /// See `admitted`.
    pub completed: u64,
    /// See `admitted`.
    pub shed: u64,
    /// See `admitted`.
    pub degraded: u64,
    /// True when the last event was a clean `shutdown`.
    pub clean_shutdown: bool,
    /// `admitted − completed − shed` at the last progress record: requests
    /// the dead process had accepted but never answered.
    pub lost_in_flight: u64,
    /// Torn/corrupt lines skipped by the tolerant reader.
    pub torn_lines: u64,
    /// Highest sequence number found on disk (0 for a fresh journal).
    pub max_seq: u64,
    /// Complete records found.
    pub records: u64,
}

/// An open journal: appends sequenced lines, never rewrites.
pub struct Journal {
    path: PathBuf,
    next_seq: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying any existing
    /// content first. The returned sequence counter resumes strictly after
    /// the highest on-disk seq, so records appended after a crash can
    /// never duplicate a seq already written.
    ///
    /// # Errors
    /// Any I/O error other than the file not existing.
    pub fn open(path: &Path) -> std::io::Result<(Journal, RecoveredState)> {
        let read = read_jsonl(path)?;
        let mut state = RecoveredState {
            torn_lines: read.skipped as u64,
            records: read.lines.len() as u64,
            ..Default::default()
        };
        for line in &read.lines {
            let Ok(doc) = json::parse(line) else {
                // Structurally complete but unparsable: treat as torn.
                state.torn_lines += 1;
                state.records -= 1;
                continue;
            };
            let seq = doc.get("seq").and_then(Value::as_u64).unwrap_or(0);
            state.max_seq = state.max_seq.max(seq);
            let event = doc.get("event").and_then(Value::as_str).unwrap_or("");
            state.clean_shutdown = event == "shutdown";
            match event {
                "serve.start" | "swap.commit" | "rollback" => {
                    if let Some(m) = doc.get("model").and_then(Value::as_str) {
                        state.last_model = Some(m.to_string());
                    }
                }
                "progress" => {
                    let n = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
                    state.admitted = n("admitted");
                    state.completed = n("completed");
                    state.shed = n("shed");
                    state.degraded = n("degraded");
                }
                _ => {}
            }
        }
        state.lost_in_flight = state
            .admitted
            .saturating_sub(state.completed)
            .saturating_sub(state.shed);
        if state.clean_shutdown {
            state.lost_in_flight = 0;
        }
        Ok((
            Journal {
                path: path.to_path_buf(),
                next_seq: state.max_seq + 1,
            },
            state,
        ))
    }

    /// Journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event; returns the sequence number it was written with.
    ///
    /// # Errors
    /// Any I/O error opening or writing the file.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<u64> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let seq = self.next_seq;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(f, "{}", event.to_line(seq))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("servekit-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn fresh_journal_starts_at_seq_one() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (mut j, state) = Journal::open(&path).unwrap();
        assert_eq!(state, RecoveredState::default());
        assert_eq!(
            j.append(&JournalEvent::ServeStart {
                model: "gbrt@v1".into()
            })
            .unwrap(),
            1
        );
        assert_eq!(j.append(&JournalEvent::Shutdown).unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_recovers_model_counts_and_resumes_seq() {
        let path = tmp("replay");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&JournalEvent::ServeStart {
                model: "gbrt@v1".into(),
            })
            .unwrap();
            j.append(&JournalEvent::SwapCommit {
                model: "gbrt@v2".into(),
                mae_v: 1.25,
                mae_h: 1.5,
            })
            .unwrap();
            j.append(&JournalEvent::SwapReject {
                model: "corrupt.json".into(),
                reason: "cycle risk".into(),
            })
            .unwrap();
            j.append(&JournalEvent::Progress {
                admitted: 10,
                completed: 6,
                shed: 1,
                degraded: 2,
            })
            .unwrap();
            // No shutdown record: the process "died" here.
        }
        let (mut j, state) = Journal::open(&path).unwrap();
        assert_eq!(state.last_model.as_deref(), Some("gbrt@v2"));
        assert!(!state.clean_shutdown);
        assert_eq!(state.lost_in_flight, 3, "10 admitted - 6 done - 1 shed");
        assert_eq!(state.max_seq, 4);
        assert_eq!(state.torn_lines, 0);
        // Seqs strictly continue: no duplicates after a crash.
        let seq = j
            .append(&JournalEvent::Recover {
                lost_in_flight: state.lost_in_flight,
                torn_lines: state.torn_lines,
            })
            .unwrap();
        assert_eq!(seq, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_survived() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&JournalEvent::ServeStart {
                model: "gbrt@v7".into(),
            })
            .unwrap();
        }
        // SIGKILL mid-append: half a swap.commit line, no newline.
        let torn = JournalEvent::SwapCommit {
            model: "gbrt@v8".into(),
            mae_v: 0.0,
            mae_h: 0.0,
        }
        .to_line(2);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{}", &torn[..torn.len() / 2]).unwrap();
        drop(f);
        let (_, state) = Journal::open(&path).unwrap();
        assert_eq!(state.torn_lines, 1);
        assert_eq!(
            state.last_model.as_deref(),
            Some("gbrt@v7"),
            "the torn commit never took effect"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_shutdown_zeroes_lost_in_flight() {
        let path = tmp("clean");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&JournalEvent::Progress {
                admitted: 5,
                completed: 3,
                shed: 0,
                degraded: 0,
            })
            .unwrap();
            j.append(&JournalEvent::Shutdown).unwrap();
        }
        let (_, state) = Journal::open(&path).unwrap();
        assert!(state.clean_shutdown);
        assert_eq!(state.lost_in_flight, 0);
        std::fs::remove_file(&path).ok();
    }
}
