//! Wire transport for `congestd`.
//!
//! Native protocol: 4-byte little-endian length prefix followed by one
//! JSON-encoded [`Request`]; the reply comes back the same way. One
//! request per frame, many frames per connection. Frames are capped so a
//! hostile (or torn) prefix cannot make the daemon allocate gigabytes.
//!
//! Convenience protocol: the accept loop sniffs the first bytes of each
//! connection — `POST`/`GET ` switches to a minimal HTTP/1.1 handler so
//! `curl -d '{...}' http://addr/` works for demos and smoke tests. This is
//! deliberately not a web server: one request per connection, only
//! `Content-Length` bodies, JSON in, JSON out.

use crate::proto::{Reply, Request};
use crate::server::Server;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted frame (64 MiB — a full-design batch is well under).
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &str) -> std::io::Result<()> {
    let bytes = json.as_bytes();
    if bytes.len() as u64 > MAX_FRAME as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed JSON frame. `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Bind `addr` and serve until the server shuts down. Returns the bound
/// address immediately via `on_bound` (so callers can bind port 0), then
/// blocks in the accept loop: one thread per connection, shutdown polled
/// between accepts.
pub fn serve_tcp(
    server: Arc<Server>,
    addr: &str,
    on_bound: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = server.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_conn(&server, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

fn handle_conn(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    // Sniff the protocol: an HTTP verb in the first bytes means a human
    // with curl; anything else is a native length-prefixed peer.
    let mut head = [0u8; 4];
    let n = stream.peek(&mut head)?;
    if n >= 4 && (&head == b"POST" || &head == b"GET ") {
        return handle_http(server, stream);
    }
    handle_native(server, stream)
}

fn handle_native(server: &Server, mut stream: TcpStream) -> std::io::Result<()> {
    while let Some(json) = read_frame(&mut stream)? {
        let reply = dispatch(server, &json);
        write_frame(&mut stream, &reply.to_json())?;
        if server.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

/// Parse-or-reject, then run the request through the server. A frame that
/// does not parse still gets a typed `Error` reply (id 0).
fn dispatch(server: &Server, json: &str) -> Reply {
    match Request::from_json(json) {
        Ok(req) => server.call(req),
        Err(e) => Reply::error(0, format!("bad request: {e}")),
    }
}

fn handle_http(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let is_get = request_line.starts_with("GET ");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let reply = if is_get {
        // `curl http://addr/` — a bare status probe.
        server.call(Request {
            id: 0,
            deadline_ms: None,
            body: crate::proto::RequestBody::Status,
        })
    } else if content_length as u64 > MAX_FRAME as u64 {
        Reply::error(0, "request body exceeds the frame cap")
    } else {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        match String::from_utf8(body) {
            Ok(json) => dispatch(server, &json),
            Err(_) => Reply::error(0, "request body is not UTF-8"),
        }
    };
    let json = reply.to_json();
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        json.len(),
        json
    )?;
    stream.flush()
}

/// Client helper: connect, send one request, read one reply.
///
/// # Errors
/// Socket/framing errors; a reply that fails to parse maps to
/// `InvalidData`.
pub fn request(addr: impl ToSocketAddrs, req: &Request) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &req.to_json())?;
    let json = read_frame(&mut stream)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before reply",
        )
    })?;
    Reply::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ReplyStatus;
    use crate::server::ServeConfig;

    fn started() -> Arc<Server> {
        let (s, _) = Server::start(ServeConfig::default(), None, None).unwrap();
        Arc::new(s)
    }

    fn spawn_server(server: Arc<Server>) -> SocketAddr {
        let (tx, rx) = std::sync::mpsc::channel();
        let srv = server.clone();
        std::thread::spawn(move || {
            serve_tcp(srv, "127.0.0.1:0", move |addr| {
                let _ = tx.send(addr);
            })
            .unwrap();
        });
        rx.recv().unwrap()
    }

    #[test]
    fn frames_round_trip_and_cap_is_enforced() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1}").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), "{\"x\":1}");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let e = read_frame(&mut std::io::Cursor::new(oversized)).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn native_protocol_serves_and_shuts_down() {
        let server = started();
        let addr = spawn_server(server.clone());
        let reply = request(addr, &Request::predict(7, vec![vec![1.0; 8]])).unwrap();
        assert_eq!(reply.id, 7);
        assert_eq!(reply.status, ReplyStatus::Degraded, "no model installed");
        // Garbage frame gets a typed error, not a dropped connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, "not json").unwrap();
        let r = Reply::from_json(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
        assert_eq!(r.status, ReplyStatus::Error);
        // Shutdown request stops the accept loop.
        let r = request(
            addr,
            &Request {
                id: 9,
                deadline_ms: None,
                body: crate::proto::RequestBody::Shutdown,
            },
        )
        .unwrap();
        assert_eq!(r.status, ReplyStatus::Ok);
        server.shutdown();
    }

    #[test]
    fn http_fallback_answers_curl_style_requests() {
        let server = started();
        let addr = spawn_server(server.clone());
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"id\":3,\"kind\":\"status\"}";
        write!(
            stream,
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let json = resp.split("\r\n\r\n").nth(1).unwrap();
        let reply = Reply::from_json(json).unwrap();
        assert_eq!(reply.id, 3);
        assert_eq!(reply.model, "analytic");
        server.shutdown();
    }
}
