//! Wire transport for `congestd`.
//!
//! Native protocol: 4-byte little-endian length prefix followed by one
//! JSON-encoded [`Request`]; the reply comes back the same way. One
//! request per frame, many frames per connection. Frames are capped so a
//! hostile (or torn) prefix cannot make the daemon allocate gigabytes.
//!
//! Convenience protocol: the accept loop sniffs the first bytes of each
//! connection — `POST`/`GET ` switches to a minimal HTTP/1.1 handler so
//! `curl -d '{...}' http://addr/` works for demos and smoke tests. This is
//! deliberately not a web server: one request per connection, only
//! `Content-Length` bodies, JSON in, JSON out.
//!
//! Two front-ends share these protocols:
//! - [`serve_tcp`] — thread-per-connection; simple, fine for a handful of
//!   peers.
//! - [`serve_event_loop`] — a single acceptor plus a readiness-polled
//!   event loop over nonblocking sockets. Connections are plain state
//!   machines (read buffer → in-order pending replies → write buffer) and
//!   requests enter the same admission queue via the nonblocking
//!   [`Server::submit`], so connection count is bounded by memory, not by
//!   threads, and per-connection pipelining falls out for free. Only HTTP
//!   stragglers get a thread (they are demo traffic by definition).

use crate::proto::{Reply, Request};
use crate::server::Server;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Largest accepted frame (64 MiB — a full-design batch is well under).
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &str) -> std::io::Result<()> {
    let bytes = json.as_bytes();
    if bytes.len() as u64 > MAX_FRAME as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed JSON frame. `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Bind `addr` and serve until the server shuts down. Returns the bound
/// address immediately via `on_bound` (so callers can bind port 0), then
/// blocks in the accept loop: one thread per connection, shutdown polled
/// between accepts.
pub fn serve_tcp(
    server: Arc<Server>,
    addr: &str,
    on_bound: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = server.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_conn(&server, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

fn handle_conn(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    // Sniff the protocol: an HTTP verb in the first bytes means a human
    // with curl; anything else is a native length-prefixed peer.
    let mut head = [0u8; 4];
    let n = stream.peek(&mut head)?;
    if n >= 4 && (&head == b"POST" || &head == b"GET ") {
        return handle_http(server, stream);
    }
    handle_native(server, stream)
}

/// Bind `addr` and serve until the server shuts down, using a single
/// acceptor plus a readiness-polled event loop over nonblocking sockets.
/// Same wire protocols as [`serve_tcp`]; replies per connection are
/// written in request order. Returns once shutdown is observed and every
/// in-flight reply has been flushed.
pub fn serve_event_loop(
    server: Arc<Server>,
    addr: &str,
    on_bound: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);
    let mut conns: Vec<Conn> = Vec::new();
    let mut http_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let mut progressed = false;
        let shutting_down = server.is_shutting_down();
        if !shutting_down {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true)?;
                        conns.push(Conn::new(stream));
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            match conns[i].step(&server) {
                ConnStep::Keep(p) => {
                    progressed |= p;
                    i += 1;
                }
                ConnStep::Close => {
                    conns.swap_remove(i);
                    progressed = true;
                }
                ConnStep::Http => {
                    let conn = conns.swap_remove(i);
                    let server = server.clone();
                    http_threads.push(std::thread::spawn(move || {
                        let _ = handle_http_prefixed(&server, conn.stream, conn.read_buf);
                    }));
                    progressed = true;
                }
            }
        }
        if shutting_down && conns.iter().all(Conn::drained) {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
        http_threads.retain(|h| !h.is_finished());
    }
    for h in http_threads {
        let _ = h.join();
    }
    Ok(())
}

enum ConnStep {
    /// Connection stays registered; `true` when any byte or reply moved.
    Keep(bool),
    /// Connection finished (EOF + drained) or errored; drop it.
    Close,
    /// First bytes were an HTTP verb; hand the stream to a thread.
    Http,
}

/// Per-connection state machine for the event loop: bytes in, frames
/// parsed, requests submitted (nonblocking), replies polled in order,
/// bytes out — every step tolerates `WouldBlock`.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    pending: VecDeque<mpsc::Receiver<Reply>>,
    write_buf: Vec<u8>,
    written: usize,
    sniffed: bool,
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            write_buf: Vec::new(),
            written: 0,
            sniffed: false,
            eof: false,
        }
    }

    /// No replies owed and nothing left to flush.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.written >= self.write_buf.len()
    }

    fn step(&mut self, server: &Server) -> ConnStep {
        let mut progressed = false;
        // 1. Pull whatever bytes are ready (bounded per pass so one chatty
        //    peer cannot starve the loop).
        let mut scratch = [0u8; 4096];
        let mut pulled = 0usize;
        while !self.eof && pulled < 256 * 1024 {
            match self.stream.read(&mut scratch) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    pulled += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return ConnStep::Close,
            }
        }
        // 2. Protocol sniff, once.
        if !self.sniffed && self.read_buf.len() >= 4 {
            self.sniffed = true;
            if &self.read_buf[..4] == b"POST" || &self.read_buf[..4] == b"GET " {
                return ConnStep::Http;
            }
        }
        // 3. Parse complete frames and submit them; the reply receiver
        //    queues in arrival order so responses cannot reorder.
        while self.sniffed && self.read_buf.len() >= 4 {
            let len = u32::from_le_bytes(self.read_buf[..4].try_into().unwrap());
            if len > MAX_FRAME {
                self.enqueue_now(Reply::error(
                    0,
                    format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                ));
                self.eof = true; // poison the stream: flush then close
                self.read_buf.clear();
                progressed = true;
                break;
            }
            let total = 4 + len as usize;
            if self.read_buf.len() < total {
                break;
            }
            let frame: Vec<u8> = self.read_buf.drain(..total).skip(4).collect();
            match String::from_utf8(frame) {
                Ok(json) => match Request::from_json(&json) {
                    Ok(req) => self.pending.push_back(server.submit(req)),
                    Err(e) => self.enqueue_now(Reply::error(0, format!("bad request: {e}"))),
                },
                Err(_) => self.enqueue_now(Reply::error(0, "frame is not UTF-8")),
            }
            progressed = true;
        }
        // 4. Move ready replies (front first — strict request order) into
        //    the write buffer.
        while let Some(rx) = self.pending.front() {
            match rx.try_recv() {
                Ok(reply) => {
                    self.pending.pop_front();
                    let json = reply.to_json();
                    self.write_buf
                        .extend_from_slice(&(json.len() as u32).to_le_bytes());
                    self.write_buf.extend_from_slice(json.as_bytes());
                    progressed = true;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Should not happen (exactly-one-reply contract), but
                    // never wedge the connection on it.
                    self.pending.pop_front();
                    let json = Reply::error(0, "reply channel closed").to_json();
                    self.write_buf
                        .extend_from_slice(&(json.len() as u32).to_le_bytes());
                    self.write_buf.extend_from_slice(json.as_bytes());
                    progressed = true;
                }
            }
        }
        // 5. Flush as much as the socket accepts.
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return ConnStep::Close,
                Ok(n) => {
                    self.written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return ConnStep::Close,
            }
        }
        if self.written >= self.write_buf.len() && !self.write_buf.is_empty() {
            self.write_buf.clear();
            self.written = 0;
        }
        if self.eof && self.drained() {
            return ConnStep::Close;
        }
        ConnStep::Keep(progressed)
    }

    /// Queue an immediately-available reply without going through the
    /// server, preserving the in-order pending discipline.
    fn enqueue_now(&mut self, reply: Reply) {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(reply);
        self.pending.push_back(rx);
    }
}

fn handle_native(server: &Server, mut stream: TcpStream) -> std::io::Result<()> {
    while let Some(json) = read_frame(&mut stream)? {
        let reply = dispatch(server, &json);
        write_frame(&mut stream, &reply.to_json())?;
        if server.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

/// Parse-or-reject, then run the request through the server. A frame that
/// does not parse still gets a typed `Error` reply (id 0).
fn dispatch(server: &Server, json: &str) -> Reply {
    match Request::from_json(json) {
        Ok(req) => server.call(req),
        Err(e) => Reply::error(0, format!("bad request: {e}")),
    }
}

fn handle_http(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    let write_half = stream.try_clone()?;
    http_exchange(server, BufReader::new(stream), write_half)
}

/// HTTP handoff from the event loop: `prefix` holds bytes already pulled
/// off the (nonblocking) socket; the stream goes back to blocking mode
/// for the thread that owns it from here on.
fn handle_http_prefixed(
    server: &Server,
    stream: TcpStream,
    prefix: Vec<u8>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let write_half = stream.try_clone()?;
    let reader = BufReader::new(std::io::Cursor::new(prefix).chain(stream));
    http_exchange(server, reader, write_half)
}

fn http_exchange(
    server: &Server,
    mut reader: impl BufRead,
    mut stream: TcpStream,
) -> std::io::Result<()> {
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let is_get = request_line.starts_with("GET ");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let reply = if is_get {
        // `curl http://addr/` — a bare status probe.
        server.call(Request {
            id: 0,
            deadline_ms: None,
            body: crate::proto::RequestBody::Status,
        })
    } else if content_length as u64 > MAX_FRAME as u64 {
        Reply::error(0, "request body exceeds the frame cap")
    } else {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        match String::from_utf8(body) {
            Ok(json) => dispatch(server, &json),
            Err(_) => Reply::error(0, "request body is not UTF-8"),
        }
    };
    let json = reply.to_json();
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        json.len(),
        json
    )?;
    stream.flush()
}

/// Client helper: connect, send one request, read one reply.
///
/// # Errors
/// Socket/framing errors; a reply that fails to parse maps to
/// `InvalidData`.
pub fn request(addr: impl ToSocketAddrs, req: &Request) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &req.to_json())?;
    let json = read_frame(&mut stream)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before reply",
        )
    })?;
    Reply::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ReplyStatus;
    use crate::server::ServeConfig;

    fn started() -> Arc<Server> {
        let (s, _) = Server::start(ServeConfig::default(), None, None).unwrap();
        Arc::new(s)
    }

    fn spawn_server(server: Arc<Server>) -> SocketAddr {
        let (tx, rx) = std::sync::mpsc::channel();
        let srv = server.clone();
        std::thread::spawn(move || {
            serve_tcp(srv, "127.0.0.1:0", move |addr| {
                let _ = tx.send(addr);
            })
            .unwrap();
        });
        rx.recv().unwrap()
    }

    #[test]
    fn frames_round_trip_and_cap_is_enforced() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1}").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), "{\"x\":1}");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let e = read_frame(&mut std::io::Cursor::new(oversized)).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn native_protocol_serves_and_shuts_down() {
        let server = started();
        let addr = spawn_server(server.clone());
        let reply = request(addr, &Request::predict(7, vec![vec![1.0; 8]])).unwrap();
        assert_eq!(reply.id, 7);
        assert_eq!(reply.status, ReplyStatus::Degraded, "no model installed");
        // Garbage frame gets a typed error, not a dropped connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, "not json").unwrap();
        let r = Reply::from_json(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
        assert_eq!(r.status, ReplyStatus::Error);
        // Shutdown request stops the accept loop.
        let r = request(
            addr,
            &Request {
                id: 9,
                deadline_ms: None,
                body: crate::proto::RequestBody::Shutdown,
            },
        )
        .unwrap();
        assert_eq!(r.status, ReplyStatus::Ok);
        server.shutdown();
    }

    fn spawn_event_loop(server: Arc<Server>) -> SocketAddr {
        let (tx, rx) = std::sync::mpsc::channel();
        let srv = server.clone();
        std::thread::spawn(move || {
            serve_event_loop(srv, "127.0.0.1:0", move |addr| {
                let _ = tx.send(addr);
            })
            .unwrap();
        });
        rx.recv().unwrap()
    }

    #[test]
    fn event_loop_serves_pipelined_frames_in_order() {
        let server = started();
        let addr = spawn_event_loop(server.clone());
        // Pipeline several frames on one connection without reading
        // between writes — the threaded front-end cannot do this.
        let mut stream = TcpStream::connect(addr).unwrap();
        for id in 1..=5u64 {
            write_frame(
                &mut stream,
                &Request::predict(id, vec![vec![id as f64; 4]]).to_json(),
            )
            .unwrap();
        }
        for id in 1..=5u64 {
            let json = read_frame(&mut stream).unwrap().unwrap();
            let reply = Reply::from_json(&json).unwrap();
            assert_eq!(reply.id, id, "replies must come back in request order");
        }
        server.shutdown();
    }

    #[test]
    fn event_loop_holds_many_idle_connections() {
        let server = started();
        let addr = spawn_event_loop(server.clone());
        // Far more connections than worker threads (the server has 1).
        let idle: Vec<TcpStream> = (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let reply = request(addr, &Request::predict(42, vec![vec![1.0; 4]])).unwrap();
        assert_eq!(reply.id, 42);
        drop(idle);
        server.shutdown();
    }

    #[test]
    fn event_loop_answers_http_and_garbage_frames() {
        let server = started();
        let addr = spawn_event_loop(server.clone());
        // HTTP straggler handed off to a thread.
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"id\":3,\"kind\":\"status\"}";
        write!(
            stream,
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        // Garbage native frame gets a typed error reply.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, "not json").unwrap();
        let r = Reply::from_json(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
        assert_eq!(r.status, ReplyStatus::Error);
        server.shutdown();
    }

    #[test]
    fn http_fallback_answers_curl_style_requests() {
        let server = started();
        let addr = spawn_server(server.clone());
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"id\":3,\"kind\":\"status\"}";
        write!(
            stream,
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let json = resp.split("\r\n\r\n").nth(1).unwrap();
        let reply = Reply::from_json(json).unwrap();
        assert_eq!(reply.id, 3);
        assert_eq!(reply.model, "analytic");
        server.shutdown();
    }
}
