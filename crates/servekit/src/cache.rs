//! Digest-keyed in-memory feature cache for repeated `source` requests.
//!
//! Extraction (MiniHLS parse → synthesis → 302-wide feature rows) is by
//! far the most expensive serve stage, and HLS iteration loops resubmit
//! the same source text many times. The cache maps a **source digest**
//! (computed by the configured key function — the binary wires
//! `congestion_core::source_digest` in) to the extracted feature matrix
//! plus line map, so repeated `source` requests skip extraction entirely.
//!
//! **Swap-aware invalidation.** Every entry is stamped with the cache
//! *generation* at the time its extraction began. A model hot-swap (or
//! rollback, or mid-request demotion) bumps the generation and clears the
//! map, so a hot-swap can never serve rows extracted under stale
//! semantics; the stamp additionally closes the race where an extraction
//! started before a swap tries to insert after it — the stale insert is
//! dropped on the floor. The proptest suite in `tests/serve_conformance.rs`
//! drives arbitrary `source`/`predict`/`swap` interleavings against these
//! rules.
//!
//! **Determinism.** All decisions (hit/miss, LRU victim, generation
//! check) happen under one lock, so for a fixed operation order the cache
//! contents and the `serve.cache.*` counters are a pure function of that
//! order. The counters satisfy `hits + misses == lookups` by
//! construction: every lookup increments exactly one of the two.

use mlkit::Matrix;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A cached extraction result: the feature matrix ready for
/// `predict_into` plus the per-op source-line map echoed in replies.
#[derive(Debug)]
pub struct CachedFeatures {
    /// Extracted per-op feature rows.
    pub matrix: Matrix,
    /// Source line of each row.
    pub lines: Vec<u32>,
}

/// `serve.cache.*` counter snapshot. `hits + misses == lookups` always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache probes (disabled caches probe nothing).
    pub lookups: u64,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to extraction.
    pub misses: u64,
    /// Entries dropped to stay within capacity (LRU victim).
    pub evictions: u64,
    /// Entries dropped by generation bumps (swap/rollback/demote), plus
    /// stale inserts from extractions that straddled a swap.
    pub invalidations: u64,
}

struct CacheInner {
    map: HashMap<u64, (u64, Arc<CachedFeatures>)>, // key -> (generation, value)
    lru: VecDeque<u64>,                            // front = coldest
    generation: u64,
    stats: CacheStats,
}

/// Bounded LRU feature cache with generation-stamped entries.
/// Capacity 0 disables the cache (every call is a no-op miss-free path).
pub struct FeatureCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl FeatureCache {
    /// A cache holding at most `capacity` designs; 0 disables caching.
    pub fn new(capacity: usize) -> FeatureCache {
        FeatureCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                generation: 0,
                stats: CacheStats::default(),
            }),
            capacity,
        }
    }

    /// True when capacity is 0 and the cache never stores anything.
    pub fn disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Current generation; pass this to [`Self::insert`] so an extraction
    /// that straddles a swap cannot poison the post-swap cache.
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().generation
    }

    /// Probe for `key`. Counts exactly one hit or one miss per call.
    pub fn lookup(&self, key: u64) -> Option<Arc<CachedFeatures>> {
        if self.disabled() {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.stats.lookups += 1;
        match inner.map.get(&key).map(|(_, v)| v.clone()) {
            Some(v) => {
                inner.stats.hits += 1;
                // Refresh LRU position: move key to the hot end.
                if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                    inner.lru.remove(pos);
                }
                inner.lru.push_back(key);
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert `value` under `key` if `generation` is still current —
    /// a stale generation means a swap landed while the extraction ran,
    /// and the rows were produced under pre-swap semantics.
    pub fn insert(&self, key: u64, generation: u64, value: Arc<CachedFeatures>) {
        if self.disabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if generation != inner.generation {
            inner.stats.invalidations += 1; // stale insert dropped
            return;
        }
        if inner.map.insert(key, (generation, value)).is_none() {
            inner.lru.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(cold) = inner.lru.pop_front() {
                    inner.map.remove(&cold);
                    inner.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Bump the generation and drop every entry. Called on swap commit,
    /// rollback, and mid-request demotion.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.generation += 1;
        let dropped = inner.map.len() as u64;
        inner.stats.invalidations += dropped;
        inner.map.clear();
        inner.lru.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(tag: f64) -> Arc<CachedFeatures> {
        let mut m = Matrix::with_cols(2);
        m.push_row(&[tag, tag + 1.0]);
        Arc::new(CachedFeatures {
            matrix: m,
            lines: vec![tag as u32],
        })
    }

    #[test]
    fn hit_miss_accounting_balances() {
        let c = FeatureCache::new(4);
        assert!(c.lookup(1).is_none());
        c.insert(1, c.generation(), features(1.0));
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(2).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits + s.misses, s.lookups);
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let c = FeatureCache::new(2);
        let g = c.generation();
        c.insert(1, g, features(1.0));
        c.insert(2, g, features(2.0));
        assert!(c.lookup(1).is_some()); // 1 is now hot, 2 is coldest
        c.insert(3, g, features(3.0));
        assert!(c.lookup(2).is_none(), "coldest entry evicted");
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_drops_everything_and_bumps_generation() {
        let c = FeatureCache::new(4);
        let g0 = c.generation();
        c.insert(1, g0, features(1.0));
        c.insert(2, g0, features(2.0));
        c.invalidate();
        assert_eq!(c.len(), 0);
        assert!(c.lookup(1).is_none());
        assert_eq!(c.generation(), g0 + 1);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn stale_insert_is_dropped() {
        let c = FeatureCache::new(4);
        let g0 = c.generation();
        c.invalidate(); // swap lands while "extraction" is in flight
        c.insert(9, g0, features(9.0));
        assert!(c.lookup(9).is_none(), "pre-swap rows must not be served");
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn capacity_zero_disables() {
        let c = FeatureCache::new(0);
        c.insert(1, c.generation(), features(1.0));
        assert!(c.lookup(1).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 0, "disabled cache counts nothing");
    }
}
