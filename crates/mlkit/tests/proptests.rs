//! Property-based tests of the ML toolkit's invariants.

use mlkit::cv::kfold;
use mlkit::dataset::Matrix;
use mlkit::metrics::{mae, medae, r2, rmse};
use mlkit::scaler::StandardScaler;
use mlkit::tree::{BinnedMatrix, RegressionTree, TreeOptions};
use proptest::prelude::*;

fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..64)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #[test]
    fn metrics_are_nonnegative_and_zero_on_identity((y, p) in vec_pair()) {
        prop_assert!(mae(&y, &p) >= 0.0);
        prop_assert!(medae(&y, &p) >= 0.0);
        prop_assert!(rmse(&y, &p) >= 0.0);
        prop_assert!(mae(&y, &y) == 0.0);
        prop_assert!(medae(&y, &y) == 0.0);
        prop_assert!((r2(&y, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mae_dominates_medae_up_to_max((y, p) in vec_pair()) {
        // MedAE <= max error, MAE <= max error, MedAE can exceed MAE only
        // when more than half the errors are above the mean — but never the
        // maximum.
        let max_err = y.iter().zip(&p).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(mae(&y, &p) <= max_err + 1e-9);
        prop_assert!(medae(&y, &p) <= max_err + 1e-9);
    }

    #[test]
    fn rmse_dominates_mae((y, p) in vec_pair()) {
        prop_assert!(rmse(&y, &p) + 1e-9 >= mae(&y, &p));
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..200, k in 2usize..8, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = kfold(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0u32; n];
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            for &i in val {
                seen[i] += 1;
            }
            // No index appears in both halves of a fold.
            let tset: std::collections::HashSet<_> = train.iter().collect();
            prop_assert!(val.iter().all(|i| !tset.contains(i)));
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each sample validates exactly once");
    }

    #[test]
    fn scaler_produces_zero_mean(rows in prop::collection::vec(
        prop::collection::vec(-1e4f64..1e4, 3), 2..40)) {
        let x = Matrix::from_rows(&rows);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for j in 0..3 {
            let col = t.column(j);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {j} mean {mean}");
        }
    }

    #[test]
    fn bin_edges_are_monotone_and_cover_the_range(
        rows in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 3), 2..120),
        budget in 2usize..300,
    ) {
        let x = Matrix::from_rows(&rows);
        let b = mlkit::BinnedMatrix::with_bins(&x, budget);
        for j in 0..x.cols() {
            let edges = &b.thresholds[j];
            prop_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges strictly increase");
            let col = x.column(j);
            let max = col.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert_eq!(*edges.last().unwrap(), max, "last edge is the column max");
            prop_assert!(edges.len() <= budget.clamp(2, 256));
            for i in 0..x.rows() {
                let v = x.row(i)[j];
                let code = b.bin(i, j);
                prop_assert!(code < edges.len());
                // Order agreement: bin(v) <= c  <=>  v <= edges[c].
                for (c, &e) in edges.iter().enumerate() {
                    prop_assert_eq!(code <= c, v <= e, "v={} edge={}", v, e);
                }
            }
        }
    }

    #[test]
    fn fitted_splits_always_reduce_sse(
        data in prop::collection::vec((-100f64..100.0, -50f64..50.0, -50f64..50.0), 12..100)
    ) {
        let rows: Vec<Vec<f64>> = data.iter().map(|&(a, b, _)| vec![a, b]).collect();
        let y: Vec<f64> = data.iter().map(|&(_, _, t)| t).collect();
        let x = Matrix::from_rows(&rows);
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let tree = RegressionTree::fit(&binned, &y, &samples, &[0, 1], &TreeOptions::default());
        // Every accepted split carries a strictly positive SSE gain...
        let mut min_gain = f64::INFINITY;
        tree.for_each_split(|_, g| min_gain = min_gain.min(g));
        if tree.split_count() > 0 {
            prop_assert!(min_gain > 0.0, "split with non-positive gain {min_gain}");
        }
        // ...so the fitted tree never scores worse than the constant mean.
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sse_mean: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
        let sse_tree: f64 = x.iter_rows().zip(&y)
            .map(|(r, t)| { let p = tree.predict_one(r); (t - p) * (t - p) })
            .sum();
        prop_assert!(sse_tree <= sse_mean + 1e-6 * sse_mean.max(1.0),
            "tree SSE {sse_tree} vs mean SSE {sse_mean}");
    }

    #[test]
    fn training_is_invariant_to_row_permutation(
        data in prop::collection::vec((-40i32..40, -40i32..40, -20i32..20), 10..80),
        rot in 1usize..7,
    ) {
        // Integer-valued data keeps every histogram sum exact, so reordering
        // the f64 accumulation cannot perturb a split decision and the two
        // fits must agree to the last bit.
        let rows: Vec<Vec<f64>> = data.iter().map(|&(a, b, _)| vec![a as f64, b as f64]).collect();
        let y: Vec<f64> = data.iter().map(|&(_, _, t)| t as f64).collect();
        let n = rows.len();
        let rot = rot % n;
        let perm: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let rows_p: Vec<Vec<f64>> = perm.iter().map(|&i| rows[i].clone()).collect();
        let y_p: Vec<f64> = perm.iter().map(|&i| y[i]).collect();
        let fit = |rows: &[Vec<f64>], y: &[f64]| {
            let x = Matrix::from_rows(rows);
            let binned = BinnedMatrix::from_matrix(&x);
            let samples: Vec<usize> = (0..x.rows()).collect();
            RegressionTree::fit(&binned, y, &samples, &[0, 1], &TreeOptions::default())
        };
        let a = fit(&rows, &y);
        let b = fit(&rows_p, &y_p);
        for row in rows.iter() {
            prop_assert_eq!(a.predict_one(row).to_bits(), b.predict_one(row).to_bits());
        }
    }

    #[test]
    fn worker_count_never_changes_training(
        data in prop::collection::vec((-100f64..100.0, -50f64..50.0, -50f64..50.0), 10..80)
    ) {
        let rows: Vec<Vec<f64>> = data.iter().map(|&(a, b, _)| vec![a, b]).collect();
        let y: Vec<f64> = data.iter().map(|&(_, _, t)| t).collect();
        let x = Matrix::from_rows(&rows);
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let opts = TreeOptions::default();
        let (serial, s1) = RegressionTree::fit_hist(&binned, &y, &samples, &[0, 1], &opts, 1);
        let (parallel, s8) = RegressionTree::fit_hist(&binned, &y, &samples, &[0, 1], &opts, 8);
        prop_assert_eq!(s1, s8, "identical work counters");
        for row in x.iter_rows() {
            prop_assert_eq!(serial.predict_one(row).to_bits(), parallel.predict_one(row).to_bits());
        }
    }

    #[test]
    fn tree_predictions_stay_within_target_range(
        data in prop::collection::vec((-100f64..100.0, -50f64..50.0), 10..80)
    ) {
        let rows: Vec<Vec<f64>> = data.iter().map(|&(a, _)| vec![a]).collect();
        let y: Vec<f64> = data.iter().map(|&(_, b)| b).collect();
        let x = Matrix::from_rows(&rows);
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let tree = RegressionTree::fit(&binned, &y, &samples, &[0], &TreeOptions::default());
        let lo = y.iter().cloned().fold(f64::MAX, f64::min);
        let hi = y.iter().cloned().fold(f64::MIN, f64::max);
        for row in x.iter_rows() {
            let p = tree.predict_one(row);
            // Leaf values are means of targets, so they stay inside the
            // observed range.
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }
}
