//! Model telemetry: the quality signals a served model is monitored by.
//!
//! [`ModelTelemetry`] packages what the run ledger records per training
//! run: gain-weighted per-feature split importance from the GBRT, and
//! [`obskit::QuantileSketch`]es of the model's predictions and residuals
//! on an evaluation set. Everything here is a pure function of the fitted
//! model and the data, so telemetry inherits training's determinism —
//! identical runs produce byte-identical ledger content.

use crate::dataset::Matrix;
use crate::gbrt::GbrtRegressor;
use crate::model::Regressor;
use obskit::{QuantileSketch, RunRecord};

/// Distribution-level telemetry for one fitted model on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTelemetry {
    /// `(feature_index, gain_share)` sorted by descending share, ties by
    /// index; only features with nonzero share appear.
    pub importance: Vec<(usize, f64)>,
    /// Distribution of model predictions on the evaluation set.
    pub predictions: QuantileSketch,
    /// Distribution of residuals (`prediction - truth`).
    pub residuals: QuantileSketch,
}

impl ModelTelemetry {
    /// Telemetry for a fitted GBRT on `(x, y)`: split-gain importance plus
    /// prediction/residual sketches.
    pub fn of_gbrt(model: &GbrtRegressor, x: &Matrix, y: &[f64]) -> ModelTelemetry {
        let mut telemetry = Self::of_regressor(model, x, y);
        telemetry.importance = rank_importance(&model.feature_importance_gain());
        telemetry
    }

    /// Telemetry for any regressor (no split-gain importance): prediction
    /// and residual sketches on `(x, y)`.
    pub fn of_regressor<M: Regressor + ?Sized>(model: &M, x: &Matrix, y: &[f64]) -> ModelTelemetry {
        let pred = model.predict(x);
        let mut predictions = QuantileSketch::new();
        let mut residuals = QuantileSketch::new();
        for (p, t) in pred.iter().zip(y) {
            predictions.observe(*p);
            residuals.observe(p - t);
        }
        ModelTelemetry {
            importance: Vec::new(),
            predictions,
            residuals,
        }
    }

    /// Record this telemetry into a ledger record: the top `top_k`
    /// importances as gauges (`model.importance.f<idx>`, named via
    /// `names` when provided) and the two sketches' summary quantiles.
    pub fn record(&self, rec: &mut RunRecord, names: Option<&[String]>, top_k: usize) {
        for &(idx, share) in self.importance.iter().take(top_k) {
            let label = names
                .and_then(|n| n.get(idx))
                .map(|n| format!("model.importance.{n}"))
                .unwrap_or_else(|| format!("model.importance.f{idx}"));
            rec.gauges.insert(label, share);
        }
        for (name, sketch) in [
            ("model.predictions", &self.predictions),
            ("model.residuals", &self.residuals),
        ] {
            rec.gauges.insert(format!("{name}.mean"), sketch.mean());
            for (q, tag) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
                rec.gauges
                    .insert(format!("{name}.{tag}"), sketch.quantile(q));
            }
            rec.counters.insert(format!("{name}.count"), sketch.count());
        }
    }
}

/// Sort a dense importance vector into `(index, share)` pairs, descending
/// share with index tie-breaks, dropping zero entries.
fn rank_importance(dense: &[f64]) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = dense
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, v)| v > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbrt::GbrtOptions;

    /// y depends on feature 0 only; feature 1 is noise-free constant.
    fn fitted() -> (GbrtRegressor, Matrix, Vec<f64>) {
        let mut x = Matrix::with_cols(2);
        let mut y = Vec::new();
        for i in 0..120 {
            let v = (i % 40) as f64;
            x.push_row(&[v, 1.0]);
            y.push(3.0 * v);
        }
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: 30,
            ..Default::default()
        });
        m.fit(&x, &y);
        (m, x, y)
    }

    #[test]
    fn gbrt_telemetry_ranks_the_informative_feature_first() {
        let (m, x, y) = fitted();
        let t = ModelTelemetry::of_gbrt(&m, &x, &y);
        assert_eq!(t.importance[0].0, 0, "all gain must come from feature 0");
        assert!(t.importance[0].1 > 0.99);
        assert_eq!(t.predictions.count(), 120);
        assert_eq!(t.residuals.count(), 120);
        // Residuals of a well-fit model concentrate near zero.
        assert!(t.residuals.quantile(0.5).abs() < 5.0);
        // Determinism: telemetry of the same fit is identical.
        let again = ModelTelemetry::of_gbrt(&m, &x, &y);
        assert_eq!(t, again);
    }

    #[test]
    fn record_writes_ledger_gauges() {
        let (m, x, y) = fitted();
        let t = ModelTelemetry::of_gbrt(&m, &x, &y);
        let mut rec = RunRecord::new("test", "train", "0", "0");
        let names = vec!["informative".to_string(), "constant".to_string()];
        t.record(&mut rec, Some(&names), 5);
        assert!(rec.gauges.contains_key("model.importance.informative"));
        assert!(rec.gauges.contains_key("model.residuals.p90"));
        assert!(rec.gauges.contains_key("model.predictions.mean"));
        assert_eq!(rec.counters["model.residuals.count"], 120);
        let line = rec.to_json_line();
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn regressor_telemetry_has_no_importance() {
        let (m, x, y) = fitted();
        let t = ModelTelemetry::of_regressor(&m, &x, &y);
        assert!(t.importance.is_empty());
        assert_eq!(t.predictions.count(), 120);
    }
}
