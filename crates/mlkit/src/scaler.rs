//! Feature standardization (zero mean, unit variance).

use crate::dataset::Matrix;

/// A per-column standard scaler.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column standard deviations (zero-variance columns get 1.0).
    pub std: Vec<f64>,
}

impl StandardScaler {
    /// Fit to the columns of `x`.
    pub fn fit(x: &Matrix) -> StandardScaler {
        let n = x.rows().max(1) as f64;
        let cols = x.cols();
        let mut mean = vec![0.0; cols];
        for row in x.iter_rows() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; cols];
        for row in x.iter_rows() {
            for j in 0..cols {
                let d = row[j] - mean[j];
                var[j] += d * d;
            }
        }
        let std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Standardize one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for j in 0..row.len().min(self.mean.len()) {
            row[j] = (row[j] - self.mean[j]) / self.std[j];
        }
    }

    /// Standardize a whole matrix into a new one.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::with_cols(x.cols());
        for row in x.iter_rows() {
            let mut r = row.to_vec();
            self.transform_row(&mut r);
            out.push_row(&r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        // Column 0: mean 3, values -> symmetric around 0.
        let c0 = t.column(0);
        assert!((c0.iter().sum::<f64>()).abs() < 1e-9);
        assert!(c0[0] < 0.0 && c0[2] > 0.0);
        // Constant column: untouched scale (std fallback 1.0), zero-centred.
        let c1 = t.column(1);
        assert!(c1.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[vec![2.0], vec![4.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        let mut r = vec![2.0];
        s.transform_row(&mut r);
        assert_eq!(r[0], t.row(0)[0]);
    }
}
