//! Gradient-boosted regression trees.
//!
//! "GBRT builds the model in a stage-wise manner and introduces a weak
//! estimator in each stage based on the gradients of the existing weak
//! estimators" (paper §III-C2). With squared loss the gradient is the
//! residual, so each stage fits a small tree to the current residuals.
//! Feature importance follows the paper's definition: "averaging the number
//! of times that a feature is used as a split point" (§IV-B).
//!
//! Two training kernels sit behind the same options struct
//! ([`GbrtKernel`]): the production **histogram** engine (features binned
//! once per fit, per-node histograms with the parent-minus-sibling
//! subtraction trick, parallel feature chunks via `parkit`) and the
//! **exact-split reference** that scans every candidate threshold — kept
//! forever, like the router's `MazeKernel::ReferenceDijkstra`, so the
//! differential suite can prove the fast kernel never silently changes
//! the paper's Table IV numbers. After fitting, the ensemble is compiled
//! into a flat [`CompiledEnsemble`] node table; batched prediction
//! ([`Regressor::predict`] / [`Regressor::predict_into`]) runs on it and
//! is bit-identical to per-row [`Regressor::predict_one`].

use crate::binning::{BinnedMatrix, DEFAULT_BINS};
use crate::compiled::CompiledEnsemble;
use crate::dataset::Matrix;
use crate::model::Regressor;
use crate::tree::{RegressionTree, TreeFitStats, TreeOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which split-search engine fits each boosting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GbrtKernel {
    /// Histogram engine: binned features, subtraction trick, parallel
    /// histogram construction. The production default.
    #[default]
    Histogram,
    /// Exact-split reference: sorts samples per node and scans every
    /// boundary between distinct values. The accuracy gold standard.
    ReferenceExact,
}

impl GbrtKernel {
    /// Stable display name (used in metrics and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            GbrtKernel::Histogram => "histogram",
            GbrtKernel::ReferenceExact => "reference-exact",
        }
    }

    /// Parse a CLI spelling (`histogram`/`hist` or `exact`/`reference-exact`).
    pub fn parse(s: &str) -> Option<GbrtKernel> {
        match s {
            "histogram" | "hist" => Some(GbrtKernel::Histogram),
            "exact" | "reference-exact" | "reference_exact" => Some(GbrtKernel::ReferenceExact),
            _ => None,
        }
    }
}

/// GBRT hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GbrtOptions {
    /// Number of boosting stages.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage.
    pub learning_rate: f64,
    /// Per-tree growth options.
    pub tree: TreeOptions,
    /// Fraction of rows sampled per stage (stochastic gradient boosting).
    pub subsample: f64,
    /// Fraction of features considered per stage.
    pub feature_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Split-search engine.
    pub kernel: GbrtKernel,
    /// Histogram-kernel bin budget per feature (clamped to 2..=256).
    pub max_bins: usize,
    /// Worker threads for histogram construction (1 = serial). Training is
    /// bit-identical for any value; CV/grid-search factories keep 1 to
    /// avoid nesting thread pools inside parallel folds.
    pub workers: usize,
}

impl Default for GbrtOptions {
    fn default() -> Self {
        GbrtOptions {
            n_estimators: 200,
            learning_rate: 0.08,
            tree: TreeOptions::default(),
            subsample: 0.8,
            feature_fraction: 0.4,
            seed: 11,
            kernel: GbrtKernel::Histogram,
            max_bins: DEFAULT_BINS,
            workers: 1,
        }
    }
}

/// The boosted ensemble.
#[derive(Debug, Clone)]
pub struct GbrtRegressor {
    /// Hyperparameters.
    pub options: GbrtOptions,
    base: f64,
    trees: Vec<RegressionTree>,
    compiled: CompiledEnsemble,
    n_features: usize,
}

impl GbrtRegressor {
    /// A regressor with the given options.
    pub fn new(options: GbrtOptions) -> Self {
        GbrtRegressor {
            options,
            base: 0.0,
            trees: Vec::new(),
            compiled: CompiledEnsemble::default(),
            n_features: 0,
        }
    }

    /// Split-count feature importance, normalized to sum to 1 (the paper's
    /// measure). Empty before fitting.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.n_features];
        for t in &self.trees {
            t.for_each_split(|f, _| counts[f] += 1.0);
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Gain-weighted feature importance (sklearn-style alternative).
    pub fn feature_importance_gain(&self) -> Vec<f64> {
        let mut gains = vec![0.0f64; self.n_features];
        for t in &self.trees {
            t.for_each_split(|f, g| gains[f] += g.max(0.0));
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in &mut gains {
                *g /= total;
            }
        }
        gains
    }

    /// Number of fitted stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The flattened inference engine for the fitted ensemble.
    pub fn compiled(&self) -> &CompiledEnsemble {
        &self.compiled
    }

    /// [`Regressor::fit`] recording training telemetry into `obs`: the
    /// per-stage squared-loss curve (`train.gbrt.stage_loss` histogram —
    /// deterministic for a given seed), the `train.gbrt.stages` counter,
    /// and the `mlkit.gbrt.*` kernel work counters (histograms scanned vs
    /// derived by subtraction, split count, fit wall-clock).
    pub fn fit_observed(&mut self, x: &Matrix, y: &[f64], obs: &obskit::Collector) {
        self.fit_inner(x, y, Some(obs));
    }

    fn fit_inner(&mut self, x: &Matrix, y: &[f64], obs: Option<&obskit::Collector>) {
        assert_eq!(x.rows(), y.len());
        assert!(!y.is_empty());
        let started = std::time::Instant::now();
        let n = x.rows();
        let p = x.cols();
        self.n_features = p;
        self.base = y.iter().sum::<f64>() / n as f64;
        self.trees.clear();

        // The histogram kernel quantizes features exactly once per fit.
        let binned = (self.options.kernel == GbrtKernel::Histogram)
            .then(|| BinnedMatrix::with_bins(x, self.options.max_bins));
        let workers = self.options.workers.max(1);
        let mut stats = TreeFitStats::default();

        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut pred = vec![self.base; n];
        let mut residual = vec![0.0f64; n];
        let mut all_rows: Vec<usize> = (0..n).collect();
        let mut all_feats: Vec<usize> = (0..p).collect();

        let n_rows = ((n as f64) * self.options.subsample).ceil() as usize;
        let n_feats = (((p as f64) * self.options.feature_fraction).ceil() as usize).clamp(1, p);

        let mut consecutive_empty = 0usize;
        for _ in 0..self.options.n_estimators {
            for i in 0..n {
                residual[i] = y[i] - pred[i];
            }
            all_rows.shuffle(&mut rng);
            let rows = &all_rows[..n_rows.clamp(1, n)];
            all_feats.shuffle(&mut rng);
            let mut feats: Vec<usize> = all_feats[..n_feats].to_vec();
            feats.sort_unstable();

            let tree = match &binned {
                Some(binned) => {
                    let (tree, tree_stats) = RegressionTree::fit_hist(
                        binned,
                        &residual,
                        rows,
                        &feats,
                        &self.options.tree,
                        workers,
                    );
                    stats.absorb(&tree_stats);
                    tree
                }
                None => RegressionTree::fit_exact(x, &residual, rows, &feats, &self.options.tree),
            };
            if tree.split_count() == 0 {
                // This stage's feature sample had no signal. A few empty
                // stages in a row means the residuals are exhausted.
                consecutive_empty += 1;
                if consecutive_empty >= 8 {
                    break;
                }
                continue;
            }
            consecutive_empty = 0;
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.options.learning_rate * tree.predict_one(x.row(i));
            }
            self.trees.push(tree);
            if let Some(obs) = obs {
                let loss = pred
                    .iter()
                    .zip(y)
                    .map(|(p, t)| (t - p) * (t - p))
                    .sum::<f64>()
                    / n as f64;
                obs.observe("train.gbrt.stage_loss", loss);
                obs.inc("train.gbrt.stages", 1);
            }
        }

        self.compiled =
            CompiledEnsemble::from_trees(self.base, self.options.learning_rate, &self.trees);

        if let Some(obs) = obs {
            let splits: u64 = self.trees.iter().map(|t| t.split_count() as u64).sum();
            obs.inc("mlkit.gbrt.splits", splits);
            obs.inc("mlkit.gbrt.hist.scanned", stats.hist_scanned);
            obs.inc("mlkit.gbrt.hist.subtracted", stats.hist_subtracted);
            obs.inc(
                match self.options.kernel {
                    GbrtKernel::Histogram => "mlkit.gbrt.fits.histogram",
                    GbrtKernel::ReferenceExact => "mlkit.gbrt.fits.reference_exact",
                },
                1,
            );
            obs.observe("mlkit.gbrt.fit_ms", started.elapsed().as_secs_f64() * 1e3);
        }
    }
}

impl Default for GbrtRegressor {
    fn default() -> Self {
        GbrtRegressor::new(GbrtOptions::default())
    }
}

impl Regressor for GbrtRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.fit_inner(x, y, None);
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.base
            + self.options.learning_rate
                * self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>()
    }

    /// Batched prediction on the compiled node table — bit-identical to
    /// mapping [`Self::predict_one`] over the rows, just cache-friendly.
    fn predict_into(&self, x: &Matrix, out: &mut [f64]) {
        self.compiled.predict_into(x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    fn friedman_like(n: usize) -> (Matrix, Vec<f64>) {
        // y = 10 sin(x0) + 5 x1^2 + 2 x2, x3 irrelevant.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 31) as f64 / 31.0;
            let b = ((i * 7) % 23) as f64 / 23.0;
            let c = ((i * 13) % 17) as f64 / 17.0;
            let d = ((i * 5) % 11) as f64 / 11.0;
            rows.push(vec![a, b, c, d]);
            y.push(10.0 * (a * 3.0).sin() + 5.0 * b * b + 2.0 * c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_target() {
        let (x, y) = friedman_like(500);
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: 150,
            ..Default::default()
        });
        m.fit(&x, &y);
        let err = mae(&y, &m.predict(&x));
        let spread =
            y.iter().cloned().fold(f64::MIN, f64::max) - y.iter().cloned().fold(f64::MAX, f64::min);
        assert!(err < spread * 0.08, "mae {err} vs spread {spread}");
    }

    #[test]
    fn reference_exact_kernel_fits_nonlinear_target() {
        let (x, y) = friedman_like(400);
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: 100,
            kernel: GbrtKernel::ReferenceExact,
            ..Default::default()
        });
        m.fit(&x, &y);
        let err = mae(&y, &m.predict(&x));
        let spread =
            y.iter().cloned().fold(f64::MIN, f64::max) - y.iter().cloned().fold(f64::MAX, f64::min);
        assert!(err < spread * 0.08, "mae {err} vs spread {spread}");
    }

    #[test]
    fn kernels_agree_within_tolerance() {
        let (x, y) = friedman_like(400);
        let fit_with = |kernel| {
            let mut m = GbrtRegressor::new(GbrtOptions {
                n_estimators: 80,
                kernel,
                ..Default::default()
            });
            m.fit(&x, &y);
            mae(&y, &m.predict(&x))
        };
        let hist = fit_with(GbrtKernel::Histogram);
        let exact = fit_with(GbrtKernel::ReferenceExact);
        assert!(
            (hist - exact).abs() <= exact.max(0.05) * 0.35,
            "hist {hist} vs exact {exact}"
        );
    }

    #[test]
    fn batched_predict_matches_per_row_bitwise() {
        let (x, y) = friedman_like(300);
        for kernel in [GbrtKernel::Histogram, GbrtKernel::ReferenceExact] {
            let mut m = GbrtRegressor::new(GbrtOptions {
                n_estimators: 40,
                kernel,
                ..Default::default()
            });
            m.fit(&x, &y);
            let batched = m.predict(&x);
            for (i, row) in x.iter_rows().enumerate() {
                assert_eq!(
                    batched[i].to_bits(),
                    m.predict_one(row).to_bits(),
                    "{kernel:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn importance_finds_informative_features() {
        let (x, y) = friedman_like(500);
        let mut m = GbrtRegressor::default();
        m.fit(&x, &y);
        let imp = m.feature_importance();
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // x0 (the sine input) dominates the irrelevant x3.
        assert!(imp[0] > imp[3]);
        let gain = m.feature_importance_gain();
        assert!(gain[0] > gain[3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedman_like(200);
        let mut a = GbrtRegressor::default();
        a.fit(&x, &y);
        let mut b = GbrtRegressor::default();
        b.fit(&x, &y);
        assert_eq!(a.predict_one(x.row(5)), b.predict_one(x.row(5)));
    }

    #[test]
    fn worker_count_does_not_change_the_model() {
        let (x, y) = friedman_like(300);
        let fit_with = |workers| {
            let mut m = GbrtRegressor::new(GbrtOptions {
                n_estimators: 30,
                workers,
                ..Default::default()
            });
            m.fit(&x, &y);
            m.predict(&x)
        };
        let serial = fit_with(1);
        let parallel = fit_with(8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn more_trees_fit_better() {
        let (x, y) = friedman_like(300);
        let mut small = GbrtRegressor::new(GbrtOptions {
            n_estimators: 5,
            ..Default::default()
        });
        small.fit(&x, &y);
        let mut big = GbrtRegressor::new(GbrtOptions {
            n_estimators: 200,
            ..Default::default()
        });
        big.fit(&x, &y);
        assert!(mae(&y, &big.predict(&x)) < mae(&y, &small.predict(&x)));
    }

    #[test]
    fn observed_fit_matches_plain_fit_and_records_loss_curve() {
        let (x, y) = friedman_like(200);
        let mut plain = GbrtRegressor::default();
        plain.fit(&x, &y);
        let obs = obskit::Collector::new();
        let mut observed = GbrtRegressor::default();
        observed.fit_observed(&x, &y, &obs);
        assert_eq!(
            plain.predict_one(x.row(3)),
            observed.predict_one(x.row(3)),
            "telemetry must not perturb training"
        );
        let rec = obs.finish();
        assert_eq!(
            rec.metrics.counters["train.gbrt.stages"],
            observed.n_trees() as u64
        );
        let h = &rec.metrics.histograms["train.gbrt.stage_loss"];
        assert_eq!(h.count(), observed.n_trees() as u64);
        assert!(h.sum.is_finite() && h.sum >= 0.0);
    }

    #[test]
    fn observed_fit_records_kernel_work_counters() {
        let (x, y) = friedman_like(200);
        let obs = obskit::Collector::new();
        let mut m = GbrtRegressor::new(GbrtOptions {
            n_estimators: 20,
            ..Default::default()
        });
        m.fit_observed(&x, &y, &obs);
        let rec = obs.finish();
        let scanned = rec.metrics.counters["mlkit.gbrt.hist.scanned"];
        let subtracted = rec.metrics.counters["mlkit.gbrt.hist.subtracted"];
        let splits = rec.metrics.counters["mlkit.gbrt.splits"];
        assert!(splits > 0);
        assert!(subtracted > 0, "subtraction trick engaged");
        // One scan per split (smaller child) + one per stage (root); every
        // sibling histogram is derived, never scanned.
        assert!(scanned <= splits + m.n_trees() as u64 + 8);
        assert_eq!(rec.metrics.counters["mlkit.gbrt.fits.histogram"], 1);
        assert_eq!(rec.metrics.histograms["mlkit.gbrt.fit_ms"].count(), 1);
    }

    #[test]
    fn constant_target_stops_early() {
        let x = Matrix::from_rows(&(0..50).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y = vec![3.5; 50];
        let mut m = GbrtRegressor::default();
        m.fit(&x, &y);
        assert_eq!(m.n_trees(), 0, "no residual structure to fit");
        assert!((m.predict_one(&[10.0]) - 3.5).abs() < 1e-9);
    }
}
