//! Lasso linear regression via cyclic coordinate descent.
//!
//! "We apply the Lasso linear model with L1-regularization … the tuning
//! parameter … multiplies the L1-regularization term and determines the
//! sparsity of model weights" (paper §III-C2).

use crate::dataset::Matrix;
use crate::model::Regressor;
use crate::scaler::StandardScaler;

/// Lasso hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LassoOptions {
    /// L1 regularization strength (scikit-learn's `alpha`).
    pub alpha: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient update.
    pub tol: f64,
}

impl Default for LassoOptions {
    fn default() -> Self {
        LassoOptions {
            alpha: 0.01,
            max_iter: 500,
            tol: 1e-5,
        }
    }
}

/// The Lasso model. Inputs are standardized internally.
#[derive(Debug, Clone, Default)]
pub struct Lasso {
    /// Hyperparameters.
    pub options: LassoOptions,
    scaler: StandardScaler,
    /// Coefficients in standardized feature space.
    pub coef: Vec<f64>,
    /// Intercept (mean of `y`).
    pub intercept: f64,
}

impl Lasso {
    /// A Lasso with the given options.
    pub fn new(options: LassoOptions) -> Self {
        Lasso {
            options,
            ..Default::default()
        }
    }

    /// Number of non-zero coefficients (L1 sparsity).
    pub fn nonzero_coefs(&self) -> usize {
        self.coef.iter().filter(|c| c.abs() > 1e-12).count()
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len());
        assert!(!y.is_empty());
        let n = x.rows();
        let p = x.cols();
        self.scaler = StandardScaler::fit(x);
        let xs = self.scaler.transform(x);
        self.intercept = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - self.intercept).collect();

        // Column norms (constant after standardization, but compute anyway).
        let mut col_sq = vec![0.0f64; p];
        for row in xs.iter_rows() {
            for j in 0..p {
                col_sq[j] += row[j] * row[j];
            }
        }

        self.coef = vec![0.0; p];
        let mut residual = yc.clone(); // r = y - X beta
        let alpha_n = self.options.alpha * n as f64;
        for _ in 0..self.options.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..p {
                if col_sq[j] < 1e-12 {
                    continue;
                }
                // rho = x_j . (r + x_j * beta_j)
                let mut rho = 0.0;
                for (i, row) in xs.iter_rows().enumerate() {
                    rho += row[j] * residual[i];
                }
                rho += col_sq[j] * self.coef[j];
                let new = soft_threshold(rho, alpha_n) / col_sq[j];
                let delta = new - self.coef[j];
                if delta != 0.0 {
                    for (i, row) in xs.iter_rows().enumerate() {
                        residual[i] -= row[j] * delta;
                    }
                    self.coef[j] = new;
                }
                max_delta = max_delta.max(delta.abs());
            }
            if max_delta < self.options.tol {
                break;
            }
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        let mut r = row.to_vec();
        self.scaler.transform_row(&mut r);
        self.intercept + r.iter().zip(&self.coef).map(|(a, b)| a * b).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 3 x0 - 2 x1 + 5
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = ((i * 7) % 13) as f64;
            rows.push(vec![a, b, 0.0]); // third column is dead
            y.push(3.0 * a - 2.0 * b + 5.0);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn recovers_linear_relationship() {
        let (x, y) = linear_data(200);
        let mut m = Lasso::new(LassoOptions {
            alpha: 1e-4,
            ..Default::default()
        });
        m.fit(&x, &y);
        for (row, target) in x.iter_rows().zip(&y) {
            assert!((m.predict_one(row) - target).abs() < 0.1);
        }
    }

    #[test]
    fn large_alpha_shrinks_to_intercept() {
        let (x, y) = linear_data(100);
        let mut m = Lasso::new(LassoOptions {
            alpha: 1e6,
            ..Default::default()
        });
        m.fit(&x, &y);
        assert_eq!(m.nonzero_coefs(), 0);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m.predict_one(x.row(0)) - mean).abs() < 1e-9);
    }

    #[test]
    fn alpha_controls_sparsity() {
        let (x, y) = linear_data(100);
        let mut loose = Lasso::new(LassoOptions {
            alpha: 1e-4,
            ..Default::default()
        });
        loose.fit(&x, &y);
        let mut tight = Lasso::new(LassoOptions {
            alpha: 10.0,
            ..Default::default()
        });
        tight.fit(&x, &y);
        assert!(tight.nonzero_coefs() <= loose.nonzero_coefs());
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
    }
}
