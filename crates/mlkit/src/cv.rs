//! K-fold cross-validation and grid search.
//!
//! The paper "employ[s] a 10-fold cross-validation on the training set and
//! grid search … to find the best hyperparameters of each model" (§IV-A).

use crate::dataset::Dataset;
use crate::metrics::mae;
use crate::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic k-fold index split: returns `(train, validation)` index
/// vectors for each fold.
///
/// # Panics
/// Panics if `k < 2` or `n < k`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k must be at least 2");
    assert!(n >= k, "need at least k samples");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, val));
    }
    folds
}

/// Mean CV MAE of a model factory over `k` folds.
pub fn cross_val_mae<M, F>(data: &Dataset, k: usize, seed: u64, make: F) -> f64
where
    M: Regressor,
    F: Fn() -> M,
{
    let folds = kfold(data.len(), k, seed);
    let mut total = 0.0;
    for (train_idx, val_idx) in &folds {
        let train = data.select(train_idx);
        let val = data.select(val_idx);
        let mut model = make();
        model.fit(&train.x, &train.y);
        let pred = model.predict(&val.x);
        total += mae(&val.y, &pred);
    }
    total / folds.len() as f64
}

/// Pick the parameter set with the lowest CV MAE. Returns
/// `(best_param_index, best_score)`.
///
/// # Panics
/// Panics if `params` is empty.
pub fn grid_search<M, P, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    params: &[P],
    make: F,
) -> (usize, f64)
where
    M: Regressor,
    F: Fn(&P) -> M,
{
    assert!(!params.is_empty(), "empty parameter grid");
    let mut best = (0usize, f64::INFINITY);
    for (i, p) in params.iter().enumerate() {
        let score = cross_val_mae(data, k, seed, || make(p));
        if score < best.1 {
            best = (i, score);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{Lasso, LassoOptions};

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::with_cols(1);
        for i in 0..n {
            let x = i as f64;
            d.push(&[x], 2.0 * x + 1.0);
        }
        d
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold(100, 10, 1);
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 100];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 100);
            for &i in val {
                assert!(!seen[i], "sample {i} in two validation folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kfold_handles_uneven_sizes() {
        let folds = kfold(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    #[should_panic]
    fn kfold_rejects_k_one() {
        kfold(10, 1, 0);
    }

    #[test]
    fn cv_score_near_zero_on_learnable_data() {
        let d = toy(60);
        let score = cross_val_mae(&d, 5, 1, || {
            Lasso::new(LassoOptions {
                alpha: 1e-5,
                ..Default::default()
            })
        });
        assert!(score < 0.5, "cv mae = {score}");
    }

    #[test]
    fn grid_search_prefers_lower_alpha_on_clean_data() {
        let d = toy(60);
        let alphas = [1e3, 1e-4];
        let (best, score) = grid_search(&d, 5, 1, &alphas, |&a| {
            Lasso::new(LassoOptions {
                alpha: a,
                ..Default::default()
            })
        });
        assert_eq!(best, 1, "small alpha wins on noiseless linear data");
        assert!(score < 1.0);
    }
}
