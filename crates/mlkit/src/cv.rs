//! K-fold cross-validation and grid search.
//!
//! The paper "employ[s] a 10-fold cross-validation on the training set and
//! grid search … to find the best hyperparameters of each model" (§IV-A).

use crate::dataset::Dataset;
use crate::metrics::mae;
use crate::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Why a cross-validation or grid-search request is unsatisfiable. The
/// `try_*` entry points return these; the panicking wrappers keep the old
/// ergonomics for callers whose inputs are statically valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvError {
    /// `k < 2`: a single fold has no held-out data to score.
    TooFewFolds {
        /// The requested fold count.
        k: usize,
    },
    /// `n < k`: some fold would have an empty validation set.
    TooFewSamples {
        /// Available samples.
        n: usize,
        /// Requested folds.
        k: usize,
    },
    /// Grid search over zero parameter sets has no winner.
    EmptyGrid,
}

impl std::fmt::Display for CvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvError::TooFewFolds { k } => write!(f, "k-fold needs k >= 2, got k = {k}"),
            CvError::TooFewSamples { n, k } => {
                write!(f, "k-fold needs at least k samples, got n = {n} < k = {k}")
            }
            CvError::EmptyGrid => write!(f, "grid search over an empty parameter grid"),
        }
    }
}

impl std::error::Error for CvError {}

/// One fold's `(train, validation)` index vectors.
pub type Fold = (Vec<usize>, Vec<usize>);

/// Deterministic k-fold index split: returns `(train, validation)` index
/// vectors for each fold, or a [`CvError`] explaining why the split is
/// impossible.
pub fn try_kfold(n: usize, k: usize, seed: u64) -> Result<Vec<Fold>, CvError> {
    if k < 2 {
        return Err(CvError::TooFewFolds { k });
    }
    if n < k {
        return Err(CvError::TooFewSamples { n, k });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, val));
    }
    Ok(folds)
}

/// [`try_kfold`] for statically valid inputs.
///
/// # Panics
/// Panics if `k < 2` or `n < k`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    match try_kfold(n, k, seed) {
        Ok(folds) => folds,
        Err(e) => panic!("{e}"),
    }
}

/// One fold's MAE: train on `train_idx`, score on `val_idx`.
fn fold_mae<M, F>(data: &Dataset, train_idx: &[usize], val_idx: &[usize], make: &F) -> f64
where
    M: Regressor,
    F: Fn() -> M,
{
    let train = data.select(train_idx);
    let val = data.select(val_idx);
    let mut model = make();
    model.fit(&train.x, &train.y);
    let pred = model.predict(&val.x);
    mae(&val.y, &pred)
}

/// Mean CV MAE of a model factory over `k` folds.
///
/// Folds are evaluated on parallel worker threads (worker count from
/// [`parkit::num_threads`], i.e. `RAYON_NUM_THREADS`), which is why `make`
/// must be `Sync`. The result is deterministic regardless of worker count:
/// fold scores come back in fold order and are summed in that order, so the
/// floating-point reduction is identical to the serial loop.
pub fn cross_val_mae<M, F>(data: &Dataset, k: usize, seed: u64, make: F) -> f64
where
    M: Regressor,
    F: Fn() -> M + Sync,
{
    match try_cross_val_mae(data, k, seed, make) {
        Ok(score) => score,
        Err(e) => panic!("{e}"),
    }
}

/// [`cross_val_mae`] returning a [`CvError`] instead of panicking when the
/// fold split is impossible.
pub fn try_cross_val_mae<M, F>(data: &Dataset, k: usize, seed: u64, make: F) -> Result<f64, CvError>
where
    M: Regressor,
    F: Fn() -> M + Sync,
{
    let folds = try_kfold(data.len(), k, seed)?;
    let scores = parkit::par_map(&folds, |(train_idx, val_idx)| {
        fold_mae(data, train_idx, val_idx, &make)
    });
    Ok(scores.iter().sum::<f64>() / folds.len() as f64)
}

/// [`cross_val_mae`] recording per-fold telemetry into `obs`: one `cv.fold`
/// span, a `cv.fold.wall_ms` histogram sample, and a `cv.fold.mae`
/// histogram sample per fold (the per-fold accuracy the run ledger keeps),
/// plus the `cv.folds` counter. Each parallel fold records into its own
/// collector; the records are absorbed **in fold order**, so every
/// deterministic metric — per-fold MAE included — is bit-identical for any
/// worker count.
pub fn cross_val_mae_observed<M, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    make: F,
    obs: &obskit::Collector,
) -> f64
where
    M: Regressor,
    F: Fn() -> M + Sync,
{
    let folds = kfold(data.len(), k, seed);
    let results = parkit::par_map(&folds, |(train_idx, val_idx)| {
        let fold_obs = obskit::Collector::new();
        let start = std::time::Instant::now();
        let score = {
            let _span = fold_obs.span("cv.fold");
            fold_mae(data, train_idx, val_idx, &make)
        };
        fold_obs.observe("cv.fold.wall_ms", start.elapsed().as_secs_f64() * 1e3);
        fold_obs.observe("cv.fold.mae", score);
        fold_obs.inc("cv.folds", 1);
        (score, fold_obs.finish())
    });
    let mut total = 0.0;
    for (score, rec) in &results {
        total += score;
        obs.absorb(rec.clone());
    }
    total / folds.len() as f64
}

/// [`cross_val_mae`] on the calling thread — used by [`grid_search`], which
/// already parallelizes across grid points and must not nest thread pools.
fn cross_val_mae_serial<M, F>(data: &Dataset, k: usize, seed: u64, make: F) -> f64
where
    M: Regressor,
    F: Fn() -> M,
{
    let folds = kfold(data.len(), k, seed);
    let total: f64 = folds
        .iter()
        .map(|(train_idx, val_idx)| fold_mae(data, train_idx, val_idx, &make))
        .sum();
    total / folds.len() as f64
}

/// Pick the parameter set with the lowest CV MAE. Returns
/// `(best_param_index, best_score)`.
///
/// Grid points are evaluated on parallel worker threads (each point runs
/// its folds serially, so the pools do not nest). Scores are compared in
/// grid order with a strict `<`, so ties resolve to the lowest index — the
/// same winner the serial loop picks, for any worker count.
///
/// # Panics
/// Panics if `params` is empty.
pub fn grid_search<M, P, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    params: &[P],
    make: F,
) -> (usize, f64)
where
    M: Regressor,
    P: Sync,
    F: Fn(&P) -> M + Sync,
{
    match try_grid_search(data, k, seed, params, make) {
        Ok(best) => best,
        Err(e) => panic!("{e}"),
    }
}

/// [`grid_search`] returning a [`CvError`] instead of panicking on an empty
/// grid or an impossible fold split.
pub fn try_grid_search<M, P, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    params: &[P],
    make: F,
) -> Result<(usize, f64), CvError>
where
    M: Regressor,
    P: Sync,
    F: Fn(&P) -> M + Sync,
{
    if params.is_empty() {
        return Err(CvError::EmptyGrid);
    }
    try_kfold(data.len(), k, seed)?; // validate once up front
    let scores = parkit::par_map(params, |p| cross_val_mae_serial(data, k, seed, || make(p)));
    Ok(pick_best(&scores))
}

/// [`grid_search`] recording progress telemetry into `obs`: one
/// `cv.grid.point` span and a `cv.grid.points` counter increment per grid
/// point (absorbed in grid order), plus `cv.grid.best_index` /
/// `cv.grid.best_mae` gauges for the winner.
///
/// # Panics
/// Panics if `params` is empty.
pub fn grid_search_observed<M, P, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    params: &[P],
    make: F,
    obs: &obskit::Collector,
) -> (usize, f64)
where
    M: Regressor,
    P: Sync,
    F: Fn(&P) -> M + Sync,
{
    assert!(!params.is_empty(), "empty parameter grid");
    let results = parkit::par_map(params, |p| {
        let point_obs = obskit::Collector::new();
        let start = std::time::Instant::now();
        let score = {
            let _span = point_obs.span("cv.grid.point");
            cross_val_mae_serial(data, k, seed, || make(p))
        };
        point_obs.observe("cv.grid.point.wall_ms", start.elapsed().as_secs_f64() * 1e3);
        point_obs.inc("cv.grid.points", 1);
        (score, point_obs.finish())
    });
    let mut scores = Vec::with_capacity(results.len());
    for (score, rec) in results {
        scores.push(score);
        obs.absorb(rec);
    }
    let best = pick_best(&scores);
    obs.set_gauge("cv.grid.best_index", best.0 as f64);
    obs.set_gauge("cv.grid.best_mae", best.1);
    best
}

/// Lowest score wins; ties resolve to the lowest index (strict `<`), the
/// same winner the serial loop picks for any worker count.
fn pick_best(scores: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, &score) in scores.iter().enumerate() {
        if score < best.1 {
            best = (i, score);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{Lasso, LassoOptions};

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::with_cols(1);
        for i in 0..n {
            let x = i as f64;
            d.push(&[x], 2.0 * x + 1.0);
        }
        d
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold(100, 10, 1);
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 100];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 100);
            for &i in val {
                assert!(!seen[i], "sample {i} in two validation folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kfold_handles_uneven_sizes() {
        let folds = kfold(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    #[should_panic]
    fn kfold_rejects_k_one() {
        kfold(10, 1, 0);
    }

    #[test]
    fn try_variants_report_typed_errors() {
        assert_eq!(try_kfold(10, 1, 0), Err(CvError::TooFewFolds { k: 1 }));
        assert_eq!(
            try_kfold(3, 5, 0),
            Err(CvError::TooFewSamples { n: 3, k: 5 })
        );
        let d = toy(4);
        let make = || Lasso::new(LassoOptions::default());
        assert_eq!(
            try_cross_val_mae(&d, 10, 0, make),
            Err(CvError::TooFewSamples { n: 4, k: 10 })
        );
        let empty: [f64; 0] = [];
        assert_eq!(
            try_grid_search(&d, 2, 0, &empty, |_| make()),
            Err(CvError::EmptyGrid)
        );
        assert_eq!(
            CvError::EmptyGrid.to_string(),
            "grid search over an empty parameter grid"
        );
    }

    #[test]
    fn try_variants_match_panicking_apis_on_valid_input() {
        let d = toy(60);
        let make = || {
            Lasso::new(LassoOptions {
                alpha: 1e-3,
                ..Default::default()
            })
        };
        let plain = cross_val_mae(&d, 5, 1, make);
        let tried = try_cross_val_mae(&d, 5, 1, make).unwrap();
        assert_eq!(plain.to_bits(), tried.to_bits());
        let alphas = [1e3, 1e-4];
        let mk = |&a: &f64| {
            Lasso::new(LassoOptions {
                alpha: a,
                ..Default::default()
            })
        };
        let (bi, bs) = grid_search(&d, 5, 1, &alphas, mk);
        let (ti, ts) = try_grid_search(&d, 5, 1, &alphas, mk).unwrap();
        assert_eq!((bi, bs.to_bits()), (ti, ts.to_bits()));
    }

    #[test]
    fn cv_score_near_zero_on_learnable_data() {
        let d = toy(60);
        let score = cross_val_mae(&d, 5, 1, || {
            Lasso::new(LassoOptions {
                alpha: 1e-5,
                ..Default::default()
            })
        });
        assert!(score < 0.5, "cv mae = {score}");
    }

    #[test]
    fn parallel_cv_is_bitwise_deterministic() {
        let d = toy(64);
        let make = || {
            Lasso::new(LassoOptions {
                alpha: 1e-3,
                ..Default::default()
            })
        };
        let first = cross_val_mae(&d, 8, 7, make);
        // Fold scores are reduced in fold order, so repeated parallel runs
        // (and the serial path) agree to the last bit.
        for _ in 0..3 {
            assert_eq!(first.to_bits(), cross_val_mae(&d, 8, 7, make).to_bits());
        }
        assert_eq!(
            first.to_bits(),
            cross_val_mae_serial(&d, 8, 7, make).to_bits()
        );
    }

    #[test]
    fn observed_cv_matches_plain_cv_and_counts_folds() {
        let d = toy(64);
        let make = || {
            Lasso::new(LassoOptions {
                alpha: 1e-3,
                ..Default::default()
            })
        };
        let plain = cross_val_mae(&d, 8, 7, make);
        let obs = obskit::Collector::new();
        let observed = cross_val_mae_observed(&d, 8, 7, make, &obs);
        assert_eq!(plain.to_bits(), observed.to_bits());
        let rec = obs.finish();
        assert_eq!(rec.metrics.counters["cv.folds"], 8);
        assert_eq!(rec.metrics.histograms["cv.fold.wall_ms"].count(), 8);
        assert_eq!(rec.events.len(), 8, "one cv.fold span per fold");
        assert!(rec.events.iter().all(|e| e.name == "cv.fold"));
    }

    #[test]
    fn observed_grid_search_records_progress_and_winner() {
        let d = toy(60);
        let alphas = [1e3, 1e-4];
        let obs = obskit::Collector::new();
        let (plain_best, plain_score) = grid_search(&d, 5, 1, &alphas, |&a| {
            Lasso::new(LassoOptions {
                alpha: a,
                ..Default::default()
            })
        });
        let (best, score) = grid_search_observed(
            &d,
            5,
            1,
            &alphas,
            |&a| {
                Lasso::new(LassoOptions {
                    alpha: a,
                    ..Default::default()
                })
            },
            &obs,
        );
        assert_eq!((plain_best, plain_score.to_bits()), (best, score.to_bits()));
        let rec = obs.finish();
        assert_eq!(rec.metrics.counters["cv.grid.points"], 2);
        assert_eq!(rec.metrics.gauges["cv.grid.best_index"], best as f64);
    }

    #[test]
    fn grid_search_ties_resolve_to_lowest_index() {
        let d = toy(30);
        // Identical parameters → identical scores; strict `<` keeps index 0.
        let alphas = [1e-3, 1e-3, 1e-3];
        let (best, _) = grid_search(&d, 3, 1, &alphas, |&a| {
            Lasso::new(LassoOptions {
                alpha: a,
                ..Default::default()
            })
        });
        assert_eq!(best, 0);
    }

    #[test]
    fn grid_search_prefers_lower_alpha_on_clean_data() {
        let d = toy(60);
        let alphas = [1e3, 1e-4];
        let (best, score) = grid_search(&d, 5, 1, &alphas, |&a| {
            Lasso::new(LassoOptions {
                alpha: a,
                ..Default::default()
            })
        });
        assert_eq!(best, 1, "small alpha wins on noiseless linear data");
        assert!(score < 1.0);
    }
}
