//! Regression error metrics.
//!
//! The paper evaluates with MAE (mean absolute error) and MedAE (median
//! absolute error): "MedAE reflects the distribution of the absolute …
//! errors which is robust to outliers" (§IV-A).

/// Mean absolute error `1/N Σ |yᵢ − ŷᵢ|`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Median absolute error `median(|y₁ − ŷ₁|, …)`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn medae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let mut errs: Vec<f64> = y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b).abs())
        .collect();
    // total_cmp, not partial_cmp().unwrap(): a NaN error (e.g. a model that
    // diverged during grid search) must yield NaN, not panic mid-search.
    errs.sort_by(f64::total_cmp);
    let n = errs.len();
    if n % 2 == 1 {
        errs[n / 2]
    } else {
        (errs[n / 2 - 1] + errs[n / 2]) / 2.0
    }
}

/// Root mean squared error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let mse = y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R².
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let ss_tot: f64 = y_true.iter().map(|a| (a - mean) * (a - mean)).sum();
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[1.0, 3.0, 5.0]), 1.0);
        assert_eq!(mae(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn medae_is_outlier_robust() {
        let y = [0.0, 0.0, 0.0, 0.0, 0.0];
        let p = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert_eq!(medae(&y, &p), 1.0);
        assert!(mae(&y, &p) > 20.0);
    }

    #[test]
    fn medae_even_count_averages() {
        assert_eq!(medae(&[0.0, 0.0], &[1.0, 3.0]), 2.0);
    }

    #[test]
    fn rmse_penalizes_large_errors() {
        let y = [0.0, 0.0];
        assert!(rmse(&y, &[2.0, 0.0]) > mae(&y, &[2.0, 0.0]));
    }

    #[test]
    fn r2_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&y, &mean_pred).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        mae(&[], &[]);
    }

    #[test]
    fn nan_predictions_do_not_panic() {
        // Regression test: medae used to panic inside sort on NaN, killing a
        // whole grid search because one hyperparameter diverged. NaN inputs
        // must instead propagate as NaN scores (total_cmp sorts NaN last, so
        // a NaN reaches the median slot once enough predictions diverge).
        let y = [1.0, 2.0, 3.0, 4.0];
        let p = [f64::NAN, f64::NAN, f64::NAN, f64::NAN];
        assert!(medae(&y, &p).is_nan());
        assert!(mae(&y, &p).is_nan());
        assert!(rmse(&y, &p).is_nan());

        // A single NaN among finite errors: still no panic, and the finite
        // half of the distribution is unaffected below the median.
        let p2 = [1.5, 2.5, 3.5, f64::NAN];
        let m = medae(&y, &p2);
        assert!(m.is_finite() && (m - 0.5).abs() < 1e-12, "medae = {m}");
    }
}
