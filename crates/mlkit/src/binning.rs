//! Feature quantization for histogram-based tree training.
//!
//! Every feature column is quantized **once per ensemble fit** into at most
//! [`MAX_BINS`] equal-frequency bins (LightGBM's scheme). Tree growth then
//! works on the small `u8` bin codes instead of raw `f64` values, turning
//! per-node split search from a sort-and-scan over samples into a
//! fixed-size histogram accumulation.
//!
//! Two invariants are load-bearing for training correctness (and pinned by
//! the property suite in `crates/mlkit/tests/proptests.rs`):
//!
//! 1. **Bin edges are strictly increasing** per feature, and the last edge
//!    is the column maximum, so the edges cover the data range.
//! 2. **Bin order agrees with value order**: `bin(v) <= b` if and only if
//!    `v <= edges[b]`. A split "bin <= b" learned on codes is therefore
//!    *exactly* the raw-value split "v <= edges[b]" — trees trained on bins
//!    predict on raw rows with no translation error.

use crate::dataset::Matrix;

/// Hard upper limit on bins per feature (bin codes are stored as `u8`).
pub const MAX_BINS: usize = 256;

/// Default bin budget per feature (`--gbrt-bins` overrides it).
pub const DEFAULT_BINS: usize = 256;

/// A feature matrix quantized to per-feature equal-frequency bins, shared
/// by every tree of an ensemble.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// `bins[row * cols + col]` = bin code of that cell.
    bins: Vec<u8>,
    /// Per feature: the upper edge of each bin, strictly increasing; the
    /// last edge is the column maximum. Splitting at bin `b` means the raw
    /// threshold `thresholds[feature][b]` with `<=` going left.
    pub thresholds: Vec<Vec<f64>>,
    rows: usize,
    cols: usize,
}

impl BinnedMatrix {
    /// Quantize with the [`DEFAULT_BINS`] budget.
    pub fn from_matrix(x: &Matrix) -> BinnedMatrix {
        Self::with_bins(x, DEFAULT_BINS)
    }

    /// Quantize a matrix into at most `max_bins` equal-frequency bins per
    /// feature (clamped to `2..=`[`MAX_BINS`]). Edges are quantiles of the
    /// *distinct* sorted values, so constant columns collapse to one bin
    /// and heavy ties never split a bin.
    pub fn with_bins(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let rows = x.rows();
        let cols = x.cols();
        let mut bins = vec![0u8; rows * cols];
        let mut thresholds = Vec::with_capacity(cols);
        for j in 0..cols {
            let mut vals = x.column(j);
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.is_empty() {
                thresholds.push(Vec::new());
                continue;
            }
            let nb = max_bins.min(vals.len());
            let mut cuts = Vec::with_capacity(nb);
            for b in 1..=nb {
                // Upper edge of bin b-1: the (b/nb)-quantile of the distinct
                // values. `idx >= 1` because `nb <= vals.len()`, and `b = nb`
                // lands exactly on the maximum, so the edges cover the range.
                let idx = (b * vals.len()) / nb;
                cuts.push(vals[idx - 1]);
            }
            cuts.dedup_by(|a, b| a == b);
            for i in 0..rows {
                let v = x.row(i)[j];
                let bin = cuts
                    .partition_point(|&c| c < v)
                    .min(cuts.len().saturating_sub(1));
                bins[i * cols + j] = bin as u8;
            }
            thresholds.push(cuts);
        }
        BinnedMatrix {
            bins,
            thresholds,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of bins actually used by feature `col`.
    pub fn n_bins(&self, col: usize) -> usize {
        self.thresholds[col].len()
    }

    /// The widest per-feature bin count (histogram stride).
    pub fn max_bins_used(&self) -> usize {
        self.thresholds.iter().map(Vec::len).max().unwrap_or(1)
    }

    /// The bin code of one cell.
    #[inline]
    pub fn bin(&self, row: usize, col: usize) -> usize {
        self.bins[row * self.cols + col] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_strictly_increasing_and_cover_range() {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i % 97) as f64 * 0.31, ((i * 7) % 13) as f64])
            .collect();
        let x = Matrix::from_rows(&rows);
        let b = BinnedMatrix::with_bins(&x, 32);
        for j in 0..x.cols() {
            let edges = &b.thresholds[j];
            assert!(edges.windows(2).all(|w| w[0] < w[1]), "monotone edges");
            let max = x.column(j).iter().cloned().fold(f64::MIN, f64::max);
            assert_eq!(*edges.last().unwrap(), max, "last edge is the max");
        }
    }

    #[test]
    fn bin_order_agrees_with_value_order() {
        // bin(v) <= b  <=>  v <= edges[b]: the invariant that lets trees
        // trained on bin codes predict on raw values.
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![((i * 37) % 101) as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let b = BinnedMatrix::with_bins(&x, 16);
        for i in 0..x.rows() {
            let v = x.row(i)[0];
            for (bb, &edge) in b.thresholds[0].iter().enumerate() {
                assert_eq!(b.bin(i, 0) <= bb, v <= edge, "v={v} bin_edge={edge}");
            }
        }
    }

    #[test]
    fn bin_budget_is_respected_and_clamped() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        assert_eq!(BinnedMatrix::with_bins(&x, 8).n_bins(0), 8);
        assert_eq!(BinnedMatrix::with_bins(&x, 100_000).n_bins(0), MAX_BINS);
        assert_eq!(BinnedMatrix::with_bins(&x, 0).n_bins(0), 2);
    }

    #[test]
    fn constant_column_collapses_to_one_bin() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let b = BinnedMatrix::from_matrix(&x);
        assert_eq!(b.n_bins(0), 1);
    }

    #[test]
    fn tolerates_nan_features() {
        // A NaN feature value (e.g. a 0/0 ratio upstream) must not panic
        // the sort; total_cmp orders NaN after all numbers.
        let x = Matrix::from_rows(&[
            vec![1.0, f64::NAN],
            vec![2.0, 0.5],
            vec![3.0, f64::NAN],
            vec![4.0, 0.25],
        ]);
        let b = BinnedMatrix::from_matrix(&x);
        assert_eq!(b.thresholds.len(), 2);
    }

    #[test]
    fn fewer_distinct_values_than_bins() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 3) as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let b = BinnedMatrix::with_bins(&x, 64);
        assert_eq!(b.n_bins(0), 3);
        for i in 0..50 {
            assert_eq!(b.bin(i, 0), i % 3);
        }
    }
}
