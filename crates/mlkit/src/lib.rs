//! # mlkit
//!
//! A small, dependency-light regression toolkit implementing exactly the
//! models and evaluation protocol the paper uses through scikit-learn:
//!
//! * [`Lasso`](linear::Lasso) — L1-regularized linear regression via cyclic
//!   coordinate descent;
//! * [`MlpRegressor`](ann::MlpRegressor) — a feed-forward neural network
//!   (ReLU hidden layers, Adam optimizer);
//! * [`GbrtRegressor`](gbrt::GbrtRegressor) — gradient-boosted regression
//!   trees with split-count feature importance (the paper's §IV-B measure);
//! * [`metrics`] — MAE and MedAE (the paper's Table IV columns), RMSE, R²;
//! * [`cv`] — k-fold cross-validation and grid search;
//! * [`scaler`] — feature standardization.
//!
//! ```
//! use mlkit::dataset::Matrix;
//! use mlkit::linear::{Lasso, LassoOptions};
//! use mlkit::model::Regressor;
//!
//! // y = 2 x0, noise-free
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
//! let y = vec![0.0, 2.0, 4.0, 6.0];
//! let mut m = Lasso::new(LassoOptions { alpha: 1e-4, ..Default::default() });
//! m.fit(&x, &y);
//! assert!((m.predict_one(&[1.5]) - 3.0).abs() < 0.1);
//! ```

pub mod ann;
pub mod binning;
pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod gbrt;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod scaler;
pub mod telemetry;
pub mod tree;

pub use ann::{MlpOptions, MlpRegressor};
pub use binning::BinnedMatrix;
pub use compiled::CompiledEnsemble;
pub use cv::CvError;
pub use dataset::{Dataset, Matrix};
pub use gbrt::{GbrtKernel, GbrtOptions, GbrtRegressor};
pub use linear::{Lasso, LassoOptions};
pub use model::Regressor;
pub use scaler::StandardScaler;
pub use telemetry::ModelTelemetry;
