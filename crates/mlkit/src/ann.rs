//! A feed-forward artificial neural network (MLP) regressor.
//!
//! ReLU hidden layers, linear output, mini-batch Adam, optional early
//! stopping. "It is more challenging to train the ANN model because a number
//! of hyperparameters need to be tuned carefully" (paper §III-C2) — the
//! hyperparameters live in [`MlpOptions`] so the grid search can tune them.

use crate::dataset::Matrix;
use crate::model::Regressor;
use crate::scaler::StandardScaler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpOptions {
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    /// Stop early when the epoch loss improves by less than this fraction
    /// for 5 consecutive epochs.
    pub early_stop_tol: f64,
}

impl Default for MlpOptions {
    fn default() -> Self {
        MlpOptions {
            hidden: vec![64, 32],
            learning_rate: 1e-3,
            epochs: 120,
            batch_size: 32,
            weight_decay: 1e-5,
            seed: 7,
            early_stop_tol: 1e-4,
        }
    }
}

/// One dense layer.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam state
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Layer {
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(input).map(|(a, b)| a * b).sum::<f64>() + self.b[o];
            out.push(z);
        }
    }
}

/// The MLP regressor.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    /// Hyperparameters.
    pub options: MlpOptions,
    layers: Vec<Layer>,
    x_scaler: StandardScaler,
    y_mean: f64,
    y_std: f64,
    trained: bool,
}

impl MlpRegressor {
    /// A regressor with the given options.
    pub fn new(options: MlpOptions) -> Self {
        MlpRegressor {
            options,
            layers: Vec::new(),
            x_scaler: StandardScaler::default(),
            y_mean: 0.0,
            y_std: 1.0,
            trained: false,
        }
    }

    /// Forward pass on a standardized row; returns per-layer activations
    /// (activations[0] = input).
    fn forward_all(&self, row: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = vec![row.to_vec()];
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().unwrap(), &mut buf);
            let last = li == self.layers.len() - 1;
            let act: Vec<f64> = if last {
                buf.clone()
            } else {
                buf.iter().map(|&z| z.max(0.0)).collect()
            };
            acts.push(act);
        }
        acts
    }
}

impl Default for MlpRegressor {
    fn default() -> Self {
        MlpRegressor::new(MlpOptions::default())
    }
}

impl MlpRegressor {
    /// [`Regressor::fit`] recording training telemetry into `obs`: the
    /// per-epoch loss curve (`train.ann.epoch_loss` histogram —
    /// deterministic for a given seed) and the `train.ann.epochs` counter.
    pub fn fit_observed(&mut self, x: &Matrix, y: &[f64], obs: &obskit::Collector) {
        self.fit_inner(x, y, Some(obs));
    }

    fn fit_inner(&mut self, x: &Matrix, y: &[f64], obs: Option<&obskit::Collector>) {
        assert_eq!(x.rows(), y.len());
        assert!(!y.is_empty());
        let mut rng = StdRng::seed_from_u64(self.options.seed);

        self.x_scaler = StandardScaler::fit(x);
        let xs = self.x_scaler.transform(x);
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        self.y_std = {
            let v = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
            v.sqrt().max(1e-9)
        };
        let ys: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        // Build layers.
        let mut sizes = vec![x.cols()];
        sizes.extend(&self.options.hidden);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut t_step = 0u64;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut prev_loss = f64::INFINITY;
        let mut stall = 0;

        for _epoch in 0..self.options.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.options.batch_size.max(1)) {
                // Accumulate gradients over the batch.
                let mut gw: Vec<Vec<f64>> =
                    self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
                let mut gb: Vec<Vec<f64>> =
                    self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in batch {
                    let acts = self.forward_all(xs.row(i));
                    let pred = acts.last().unwrap()[0];
                    let err = pred - ys[i];
                    epoch_loss += err * err;
                    // Backprop.
                    let mut delta = vec![err];
                    for li in (0..self.layers.len()).rev() {
                        let layer = &self.layers[li];
                        let input = &acts[li];
                        for (o, &d) in delta.iter().enumerate() {
                            gb[li][o] += d;
                            let row = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                            for (g, inp) in row.iter_mut().zip(input) {
                                *g += d * inp;
                            }
                        }
                        if li > 0 {
                            let mut next = vec![0.0; layer.n_in];
                            for (o, &d) in delta.iter().enumerate() {
                                let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                                for (j, &w) in row.iter().enumerate() {
                                    next[j] += d * w;
                                }
                            }
                            // ReLU derivative on the hidden activation.
                            for (j, v) in next.iter_mut().enumerate() {
                                if acts[li][j] <= 0.0 {
                                    *v = 0.0;
                                }
                            }
                            delta = next;
                        }
                    }
                }
                // Adam update.
                t_step += 1;
                let bs = batch.len() as f64;
                let lr = self.options.learning_rate;
                let bc1 = 1.0 - b1.powi(t_step as i32);
                let bc2 = 1.0 - b2.powi(t_step as i32);
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    for (k, &gsum) in gw[li].iter().enumerate() {
                        let g = gsum / bs + self.options.weight_decay * layer.w[k];
                        layer.mw[k] = b1 * layer.mw[k] + (1.0 - b1) * g;
                        layer.vw[k] = b2 * layer.vw[k] + (1.0 - b2) * g * g;
                        let mhat = layer.mw[k] / bc1;
                        let vhat = layer.vw[k] / bc2;
                        layer.w[k] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                    for (k, &gsum) in gb[li].iter().enumerate() {
                        let g = gsum / bs;
                        layer.mb[k] = b1 * layer.mb[k] + (1.0 - b1) * g;
                        layer.vb[k] = b2 * layer.vb[k] + (1.0 - b2) * g * g;
                        let mhat = layer.mb[k] / bc1;
                        let vhat = layer.vb[k] / bc2;
                        layer.b[k] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
            epoch_loss /= n as f64;
            if let Some(obs) = obs {
                obs.observe("train.ann.epoch_loss", epoch_loss);
                obs.inc("train.ann.epochs", 1);
            }
            if prev_loss - epoch_loss < self.options.early_stop_tol * prev_loss.abs().max(1e-9) {
                stall += 1;
                if stall >= 5 {
                    break;
                }
            } else {
                stall = 0;
            }
            prev_loss = epoch_loss;
        }
        self.trained = true;
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.fit_inner(x, y, None);
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        if !self.trained {
            return 0.0;
        }
        let mut r = row.to_vec();
        self.x_scaler.transform_row(&mut r);
        let acts = self.forward_all(&r);
        acts.last().unwrap()[0] * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    fn nonlinear_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = x0^2 + 2 x1
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 20) as f64 / 10.0 - 1.0;
            let b = ((i * 3) % 15) as f64 / 7.0 - 1.0;
            rows.push(vec![a, b]);
            y.push(a * a + 2.0 * b);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_nonlinear_function() {
        let (x, y) = nonlinear_data(300);
        let mut m = MlpRegressor::new(MlpOptions {
            hidden: vec![32],
            epochs: 200,
            ..Default::default()
        });
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let err = mae(&y, &pred);
        assert!(err < 0.15, "mae = {err}");
    }

    #[test]
    fn beats_linear_on_quadratic() {
        use crate::linear::{Lasso, LassoOptions};
        let (x, y) = nonlinear_data(300);
        let mut mlp = MlpRegressor::new(MlpOptions {
            hidden: vec![32],
            epochs: 200,
            ..Default::default()
        });
        mlp.fit(&x, &y);
        let mut lin = Lasso::new(LassoOptions {
            alpha: 1e-3,
            ..Default::default()
        });
        lin.fit(&x, &y);
        let mlp_err = mae(&y, &mlp.predict(&x));
        let lin_err = mae(&y, &lin.predict(&x));
        assert!(
            mlp_err < lin_err,
            "mlp {mlp_err} should beat linear {lin_err} on x^2"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = nonlinear_data(100);
        let opts = MlpOptions {
            hidden: vec![8],
            epochs: 20,
            ..Default::default()
        };
        let mut a = MlpRegressor::new(opts.clone());
        a.fit(&x, &y);
        let mut b = MlpRegressor::new(opts);
        b.fit(&x, &y);
        assert_eq!(a.predict_one(x.row(0)), b.predict_one(x.row(0)));
    }

    #[test]
    fn untrained_predicts_zero() {
        let m = MlpRegressor::default();
        assert_eq!(m.predict_one(&[1.0, 2.0]), 0.0);
    }
}
