//! The common regressor interface.

use crate::dataset::Matrix;

/// A trainable regression model.
pub trait Regressor {
    /// Fit the model to features `x` and targets `y`.
    ///
    /// # Panics
    /// Implementations may panic if `x.rows() != y.len()` or the data is
    /// empty.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predict the target of a single feature row.
    fn predict_one(&self, row: &[f64]) -> f64;

    /// Predict every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mean(f64);
    impl Regressor for Mean {
        fn fit(&mut self, _x: &Matrix, y: &[f64]) {
            self.0 = y.iter().sum::<f64>() / y.len() as f64;
        }
        fn predict_one(&self, _row: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_predict_maps_rows() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut m = Mean(0.0);
        m.fit(&x, &[2.0, 4.0]);
        assert_eq!(m.predict(&x), vec![3.0, 3.0]);
    }
}
