//! The common regressor interface.

use crate::dataset::Matrix;

/// A trainable regression model.
pub trait Regressor {
    /// Fit the model to features `x` and targets `y`.
    ///
    /// # Panics
    /// Implementations may panic if `x.rows() != y.len()` or the data is
    /// empty.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predict the target of a single feature row.
    fn predict_one(&self, row: &[f64]) -> f64;

    /// Predict every row of `x` into a caller-provided buffer. The default
    /// maps [`Self::predict_one`]; batched engines (the compiled GBRT node
    /// table) override it.
    ///
    /// # Panics
    /// Panics if `out.len() != x.rows()`.
    fn predict_into(&self, x: &Matrix, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output length mismatch");
        for (o, row) in out.iter_mut().zip(x.iter_rows()) {
            *o = self.predict_one(row);
        }
    }

    /// Predict every row of `x` — one allocation, then
    /// [`Self::predict_into`] (so overriding `predict_into` accelerates
    /// every caller, including CV and grid search).
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.predict_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mean(f64);
    impl Regressor for Mean {
        fn fit(&mut self, _x: &Matrix, y: &[f64]) {
            self.0 = y.iter().sum::<f64>() / y.len() as f64;
        }
        fn predict_one(&self, _row: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_predict_maps_rows() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut m = Mean(0.0);
        m.fit(&x, &[2.0, 4.0]);
        assert_eq!(m.predict(&x), vec![3.0, 3.0]);
    }

    #[test]
    fn default_predict_into_fills_buffer() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut m = Mean(0.0);
        m.fit(&x, &[1.0, 2.0, 3.0]);
        let mut out = vec![f64::NAN; 3];
        m.predict_into(&x, &mut out);
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn default_predict_into_checks_length() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        Mean(0.0).predict_into(&x, &mut []);
    }
}
