//! Row-major feature matrices and labelled datasets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense row-major matrix of `f64` features.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An empty matrix with `cols` columns.
    pub fn with_cols(cols: usize) -> Self {
        Matrix {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = Matrix::with_cols(cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Build from an already-flat row-major buffer — the zero-copy entry
    /// point for producers that fill a matrix row by row elsewhere (the
    /// SoA feature extractor hands its buffer over through this).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `cols` (a matrix with
    /// zero columns must be empty).
    pub fn from_flat(cols: usize, data: Vec<f64>) -> Self {
        let rows = if cols == 0 {
            assert!(data.is_empty(), "zero-column matrix must have no data");
            0
        } else {
            assert_eq!(data.len() % cols, 0, "flat buffer length mismatch");
            data.len() / cols
        };
        Matrix { data, rows, cols }
    }

    /// The underlying row-major buffer.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append one zero-filled row and return it for in-place filling —
    /// lets extractors write features straight into the matrix without a
    /// staging buffer.
    pub fn alloc_row(&mut self) -> &mut [f64] {
        self.data.resize(self.data.len() + self.cols, 0.0);
        self.rows += 1;
        let start = self.data.len() - self.cols;
        &mut self.data[start..]
    }

    /// Append every row of `other` — one flat copy, no per-row traffic.
    ///
    /// # Panics
    /// Panics if the column counts differ (a zero-row `other` merges into
    /// anything).
    pub fn extend(&mut self, other: &Matrix) {
        if other.rows == 0 {
            return;
        }
        assert_eq!(other.cols, self.cols, "column count mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable access to the `i`-th row.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// A new matrix containing the given rows (by index).
    pub fn select(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::with_cols(self.cols);
        for &i in indices {
            m.push_row(self.row(i));
        }
        m
    }

    /// Column `j` as a vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i)[j]).collect()
    }
}

/// A labelled dataset: features plus one target per row.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature matrix.
    pub x: Matrix,
    /// Targets, one per row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// An empty dataset with `cols` feature columns.
    pub fn with_cols(cols: usize) -> Self {
        Dataset {
            x: Matrix::with_cols(cols),
            y: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn push(&mut self, features: &[f64], target: f64) {
        self.x.push_row(features);
        self.y.push(target);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Subset by row indices.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Deterministic shuffled train/test split with `test_fraction` of the
    /// samples held out (the paper holds out 20 %).
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        (self.select(train_idx), self.select(test_idx))
    }

    /// Merge another dataset into this one.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn extend(&mut self, other: &Dataset) {
        for (row, &t) in other.x.iter_rows().zip(&other.y) {
            self.push(row, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::with_cols(2);
        for i in 0..n {
            d.push(&[i as f64, (i * 2) as f64], i as f64);
        }
        d
    }

    #[test]
    fn matrix_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_rejected() {
        let mut m = Matrix::with_cols(3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn matrix_extend_appends_flat() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        a.extend(&b);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(2), &[5.0, 6.0]);
        // Empty other is a no-op even with mismatched cols.
        a.extend(&Matrix::with_cols(7));
        assert_eq!(a.rows(), 3);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(100);
        let (train, test) = d.train_test_split(0.2, 7);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<f64> = train.y.iter().chain(test.y.iter()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let (a, _) = d.train_test_split(0.2, 3);
        let (b, _) = d.train_test_split(0.2, 3);
        assert_eq!(a.y, b.y);
        let (c, _) = d.train_test_split(0.2, 4);
        assert_ne!(a.y, c.y);
    }

    #[test]
    fn select_and_extend() {
        let d = toy(10);
        let sub = d.select(&[1, 3, 5]);
        assert_eq!(sub.y, vec![1.0, 3.0, 5.0]);
        let mut e = Dataset::with_cols(2);
        e.extend(&sub);
        e.extend(&sub);
        assert_eq!(e.len(), 6);
    }
}
