//! CART regression trees: histogram training engine + exact-split reference.
//!
//! Two fit kernels produce the same tree *type* (raw-value thresholds, so
//! prediction never needs the training-time representation):
//!
//! * [`RegressionTree::fit_hist`] — the production engine. Features are
//!   quantized once per ensemble ([`BinnedMatrix`]), per-node split search
//!   accumulates gradient/count histograms over bin codes, and each split
//!   only *scans* the smaller child — the larger child's histogram is
//!   derived with the parent-minus-sibling subtraction trick (LightGBM's
//!   scheme). Histogram construction parallelizes across feature chunks via
//!   `parkit`; every feature's accumulator sees its addends in sample
//!   order regardless of chunking, so the result is **bit-identical for
//!   any worker count**.
//! * [`RegressionTree::fit_exact`] — the reference kernel
//!   (`GbrtKernel::ReferenceExact`): sorts the node's samples per feature
//!   and scans every boundary between distinct values. Slow, but the
//!   accuracy gold standard the differential suite compares against.

pub use crate::binning::BinnedMatrix;
use crate::dataset::Matrix;

/// Default bin budget, re-exported for backward compatibility.
pub const BINS: usize = crate::binning::DEFAULT_BINS;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeOptions {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            max_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

/// Work accounting for one histogram-kernel fit (summed over an ensemble by
/// [`crate::gbrt::GbrtRegressor`] into the `mlkit.gbrt.*` obskit counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeFitStats {
    /// Node histograms built by scanning rows.
    pub hist_scanned: u64,
    /// Node histograms derived via parent-minus-sibling subtraction.
    pub hist_subtracted: u64,
    /// Nodes emitted (splits + leaves).
    pub nodes: u64,
    /// Split nodes emitted.
    pub splits: u64,
}

impl TreeFitStats {
    /// Accumulate another fit's counters.
    pub fn absorb(&mut self, other: &TreeFitStats) {
        self.hist_scanned += other.hist_scanned;
        self.hist_subtracted += other.hist_subtracted;
        self.nodes += other.nodes;
        self.splits += other.splits;
    }
}

/// A fitted tree node. `pub(crate)` so [`crate::compiled`] can flatten
/// ensembles into its SoA node table.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Values `<= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
        /// Variance reduction achieved.
        gain: f64,
    },
}

impl Default for Node {
    fn default() -> Self {
        Node::Leaf { value: 0.0 }
    }
}

/// A CART regression tree.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Gains below this are noise, not structure; both kernels share the cutoff
/// so their "no split" decisions agree on flat targets.
const MIN_GAIN: f64 = 1e-12;

/// Minimum `samples × features` product before histogram construction fans
/// out to parallel workers; below it, thread spawn overhead dominates.
const PAR_THRESHOLD: usize = 1 << 15;

/// Per-node count/sum histograms over every candidate feature, flattened as
/// `feature_slot * stride + bin`.
struct Hist {
    counts: Vec<u32>,
    sums: Vec<f64>,
}

impl Hist {
    /// Derive this histogram minus `other` in place: the subtraction trick
    /// turning a parent histogram into the larger child's.
    fn subtract(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a -= b;
        }
    }
}

/// Shared, immutable context of one histogram-kernel fit.
struct HistCtx<'a> {
    binned: &'a BinnedMatrix,
    y: &'a [f64],
    features: &'a [usize],
    /// Histogram stride: the widest bin count among `features`.
    stride: usize,
    opts: TreeOptions,
    workers: usize,
}

impl HistCtx<'_> {
    /// Build the count/sum histograms of one node by scanning its samples.
    ///
    /// Large nodes fan out over contiguous feature chunks on `workers`
    /// parkit threads. Each feature's accumulator receives its addends in
    /// sample order no matter how features are chunked, and chunk results
    /// are concatenated in feature order (parkit's ordered map), so the
    /// result is bit-identical for any worker count.
    fn build_hist(&self, samples: &[usize]) -> Hist {
        let nf = self.features.len();
        if self.workers > 1 && samples.len().saturating_mul(nf) >= PAR_THRESHOLD && nf > 1 {
            let chunk_len = nf.div_ceil(self.workers);
            let chunks: Vec<&[usize]> = self.features.chunks(chunk_len).collect();
            let parts = parkit::par_map_threads(self.workers, &chunks, |chunk| {
                self.scan_chunk(chunk, samples)
            });
            let mut counts = Vec::with_capacity(nf * self.stride);
            let mut sums = Vec::with_capacity(nf * self.stride);
            for (c, s) in parts {
                counts.extend_from_slice(&c);
                sums.extend_from_slice(&s);
            }
            Hist { counts, sums }
        } else {
            let (counts, sums) = self.scan_chunk(self.features, samples);
            Hist { counts, sums }
        }
    }

    /// Histogram a contiguous chunk of candidate features (row-major scan,
    /// cache-friendly on the bin-code matrix).
    fn scan_chunk(&self, chunk: &[usize], samples: &[usize]) -> (Vec<u32>, Vec<f64>) {
        let mut counts = vec![0u32; chunk.len() * self.stride];
        let mut sums = vec![0.0f64; chunk.len() * self.stride];
        for &i in samples {
            let yi = self.y[i];
            for (slot, &fj) in chunk.iter().enumerate() {
                let b = slot * self.stride + self.binned.bin(i, fj);
                counts[b] += 1;
                sums[b] += yi;
            }
        }
        (counts, sums)
    }
}

impl RegressionTree {
    /// Histogram-kernel fit on the given sample indices of a binned matrix
    /// against targets `y` (full-length array indexed by sample id),
    /// restricted to `features`. Serial; see [`Self::fit_hist`] for the
    /// parallel engine with work accounting.
    pub fn fit(
        binned: &BinnedMatrix,
        y: &[f64],
        samples: &[usize],
        features: &[usize],
        opts: &TreeOptions,
    ) -> RegressionTree {
        Self::fit_hist(binned, y, samples, features, opts, 1).0
    }

    /// Histogram-kernel fit with up to `workers` parkit threads building
    /// node histograms. Bit-identical output for any `workers` value.
    pub fn fit_hist(
        binned: &BinnedMatrix,
        y: &[f64],
        samples: &[usize],
        features: &[usize],
        opts: &TreeOptions,
        workers: usize,
    ) -> (RegressionTree, TreeFitStats) {
        let stride = features
            .iter()
            .map(|&fj| binned.n_bins(fj))
            .max()
            .unwrap_or(1);
        let ctx = HistCtx {
            binned,
            y,
            features,
            stride,
            opts: *opts,
            workers: workers.max(1),
        };
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut stats = TreeFitStats::default();
        let root_hist = ctx.build_hist(samples);
        stats.hist_scanned += 1;
        tree.grow_hist(&ctx, samples.to_vec(), root_hist, 0, &mut stats);
        (tree, stats)
    }

    fn grow_hist(
        &mut self,
        ctx: &HistCtx<'_>,
        samples: Vec<usize>,
        hist: Hist,
        depth: usize,
        stats: &mut TreeFitStats,
    ) -> usize {
        let n = samples.len();
        let sum: f64 = samples.iter().map(|&i| ctx.y[i]).sum();
        let mean = sum / n.max(1) as f64;

        let make_leaf = |nodes: &mut Vec<Node>, stats: &mut TreeFitStats| {
            let id = nodes.len();
            nodes.push(Node::Leaf { value: mean });
            stats.nodes += 1;
            id
        };

        if depth >= ctx.opts.max_depth || n < 2 * ctx.opts.min_samples_leaf {
            return make_leaf(&mut self.nodes, stats);
        }

        // Best split over features × bins; ties resolve to the first
        // candidate in (feature-slot, bin) order via strict `>`.
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        for (slot, &fj) in ctx.features.iter().enumerate() {
            let nb = ctx.binned.n_bins(fj);
            if nb <= 1 {
                continue;
            }
            let counts = &hist.counts[slot * ctx.stride..slot * ctx.stride + nb];
            let sums = &hist.sums[slot * ctx.stride..slot * ctx.stride + nb];
            let mut left_cnt = 0usize;
            let mut left_sum = 0.0f64;
            for b in 0..nb - 1 {
                left_cnt += counts[b] as usize;
                left_sum += sums[b];
                let right_cnt = n - left_cnt;
                if left_cnt < ctx.opts.min_samples_leaf || right_cnt < ctx.opts.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let score = left_sum * left_sum / left_cnt as f64
                    + right_sum * right_sum / right_cnt as f64;
                let gain = score - sum * sum / n as f64;
                if gain > best.map(|(_, _, g)| g).unwrap_or(MIN_GAIN) {
                    best = Some((fj, b, gain));
                }
            }
        }

        let Some((feature, bin, gain)) = best else {
            return make_leaf(&mut self.nodes, stats);
        };

        let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
            .iter()
            .partition(|&&i| ctx.binned.bin(i, feature) <= bin);

        // Subtraction trick: scan only the smaller child; the larger
        // child's histogram is parent − sibling.
        let left_is_small = left_samples.len() <= right_samples.len();
        let small = if left_is_small {
            &left_samples
        } else {
            &right_samples
        };
        let small_hist = ctx.build_hist(small);
        stats.hist_scanned += 1;
        let mut large_hist = hist;
        large_hist.subtract(&small_hist);
        stats.hist_subtracted += 1;
        let (left_hist, right_hist) = if left_is_small {
            (small_hist, large_hist)
        } else {
            (large_hist, small_hist)
        };

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        stats.nodes += 1;
        stats.splits += 1;
        let left = self.grow_hist(ctx, left_samples, left_hist, depth + 1, stats);
        let right = self.grow_hist(ctx, right_samples, right_hist, depth + 1, stats);
        self.nodes[id] = Node::Split {
            feature,
            threshold: ctx.binned.thresholds[feature][bin],
            left,
            right,
            gain,
        };
        id
    }

    /// Exact-split reference fit: per node, sort the samples by each
    /// candidate feature and scan every boundary between distinct values.
    /// O(samples · log samples · features) per node — the accuracy gold
    /// standard (`GbrtKernel::ReferenceExact`), not the production path.
    pub fn fit_exact(
        x: &Matrix,
        y: &[f64],
        samples: &[usize],
        features: &[usize],
        opts: &TreeOptions,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow_exact(x, y, samples.to_vec(), features, opts, 0);
        tree
    }

    fn grow_exact(
        &mut self,
        x: &Matrix,
        y: &[f64],
        samples: Vec<usize>,
        features: &[usize],
        opts: &TreeOptions,
        depth: usize,
    ) -> usize {
        let n = samples.len();
        let sum: f64 = samples.iter().map(|&i| y[i]).sum();
        let mean = sum / n.max(1) as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            let id = nodes.len();
            nodes.push(Node::Leaf { value: mean });
            id
        };

        if depth >= opts.max_depth || n < 2 * opts.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &fj in features {
            pairs.clear();
            pairs.extend(samples.iter().map(|&i| (x.row(i)[fj], y[i])));
            // Stable sort: ties keep sample order, so prefix sums are
            // deterministic.
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_sum = 0.0f64;
            for (i, &(v, yi)) in pairs.iter().take(n - 1).enumerate() {
                left_sum += yi;
                if v == pairs[i + 1].0 {
                    continue; // not a boundary between distinct values
                }
                let left_cnt = i + 1;
                let right_cnt = n - left_cnt;
                if left_cnt < opts.min_samples_leaf || right_cnt < opts.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let score = left_sum * left_sum / left_cnt as f64
                    + right_sum * right_sum / right_cnt as f64;
                let gain = score - sum * sum / n as f64;
                if gain > best.map(|(_, _, g)| g).unwrap_or(MIN_GAIN) {
                    best = Some((fj, v, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
            .iter()
            .partition(|&&i| x.row(i)[feature] <= threshold);

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.grow_exact(x, y, left_samples, features, opts, depth + 1);
        let right = self.grow_exact(x, y, right_samples, features, opts, depth + 1);
        self.nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
            gain,
        };
        id
    }

    /// Predict one raw (un-binned) feature row.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Visit all splits: `(feature, gain)` per split node.
    pub fn for_each_split(&self, mut f: impl FnMut(usize, f64)) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                f(*feature, *gain);
            }
        }
    }

    /// Number of split nodes.
    pub fn split_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Split { .. }))
            .count()
    }

    /// The node table, for ensemble compilation.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 10 if x0 > 0.5 else 0
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            rows.push(vec![v, 0.0]);
            y.push(if v > 0.5 { 10.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let features = vec![0, 1];
        let t = RegressionTree::fit(&binned, &y, &samples, &features, &TreeOptions::default());
        assert!(t.split_count() >= 1);
        assert!((t.predict_one(&[0.2, 0.0]) - 0.0).abs() < 1.0);
        assert!((t.predict_one(&[0.9, 0.0]) - 10.0).abs() < 1.0);
    }

    #[test]
    fn exact_kernel_learns_step_function() {
        let (x, y) = step_data();
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit_exact(&x, &y, &samples, &[0, 1], &TreeOptions::default());
        assert!(t.split_count() >= 1);
        assert!((t.predict_one(&[0.2, 0.0]) - 0.0).abs() < 1.0);
        assert!((t.predict_one(&[0.9, 0.0]) - 10.0).abs() < 1.0);
    }

    #[test]
    fn hist_and_exact_agree_on_clean_step() {
        // With one distinct value per bin the kernels see the same split
        // candidates, so the fitted trees predict identically.
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let h = RegressionTree::fit(&binned, &y, &samples, &[0, 1], &TreeOptions::default());
        let e = RegressionTree::fit_exact(&x, &y, &samples, &[0, 1], &TreeOptions::default());
        for row in x.iter_rows() {
            assert_eq!(h.predict_one(row).to_bits(), e.predict_one(row).to_bits());
        }
    }

    #[test]
    fn splits_on_informative_feature() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(&binned, &y, &samples, &[0, 1], &TreeOptions::default());
        let mut feats = Vec::new();
        t.for_each_split(|f, _| feats.push(f));
        assert!(feats.contains(&0));
        assert!(!feats.contains(&1), "constant feature never split");
    }

    #[test]
    fn respects_max_depth_zero() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(
            &binned,
            &y,
            &samples,
            &[0, 1],
            &TreeOptions {
                max_depth: 0,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(t.split_count(), 0);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_one(&[0.9, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(
            &binned,
            &y,
            &samples,
            &[0, 1],
            &TreeOptions {
                max_depth: 10,
                min_samples_leaf: 60,
            },
        );
        // Can't split 100 samples into two leaves of >= 60.
        assert_eq!(t.split_count(), 0);
    }

    #[test]
    fn worker_count_does_not_change_the_tree() {
        // Large enough that the parallel path engages (given >1 workers).
        let n = 600;
        let nf = 60;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..nf)
                    .map(|j| (((i * 31 + j * 17) % 251) as f64) * 0.37)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| rows[i][0] * 2.0 - rows[i][1] + (rows[i][2] * 0.1).sin())
            .collect();
        let x = Matrix::from_rows(&rows);
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..n).collect();
        let features: Vec<usize> = (0..nf).collect();
        let opts = TreeOptions {
            max_depth: 5,
            min_samples_leaf: 3,
        };
        let (serial, s1) = RegressionTree::fit_hist(&binned, &y, &samples, &features, &opts, 1);
        let (parallel, s8) = RegressionTree::fit_hist(&binned, &y, &samples, &features, &opts, 8);
        assert_eq!(s1, s8, "identical work accounting");
        for row in x.iter_rows() {
            assert_eq!(
                serial.predict_one(row).to_bits(),
                parallel.predict_one(row).to_bits(),
                "1 vs 8 workers must agree to the bit"
            );
        }
    }

    #[test]
    fn subtraction_trick_scans_fewer_histograms_than_nodes() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let opts = TreeOptions {
            max_depth: 4,
            min_samples_leaf: 2,
        };
        let (t, stats) = RegressionTree::fit_hist(&binned, &y, &samples, &[0, 1], &opts, 1);
        assert_eq!(stats.splits, t.split_count() as u64);
        // One scanned histogram per split (the smaller child) plus the
        // root; every sibling comes from subtraction.
        assert_eq!(stats.hist_scanned, stats.splits + 1);
        assert_eq!(stats.hist_subtracted, stats.splits);
    }
}
