//! CART regression trees with histogram-based split search.
//!
//! Features are quantized to at most 64 bins once per ensemble fit, making
//! split search O(samples × features) per node — fast enough to boost
//! hundreds of trees over the 302-feature congestion dataset.

use crate::dataset::Matrix;

/// Number of histogram bins per feature.
pub const BINS: usize = 64;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeOptions {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            max_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

/// Pre-binned feature matrix shared by all trees of an ensemble.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// bins[row * cols + col] = bin index.
    bins: Vec<u8>,
    /// Per feature: the upper value of each bin (for threshold recovery).
    pub thresholds: Vec<Vec<f64>>,
    rows: usize,
    cols: usize,
}

impl BinnedMatrix {
    /// Quantize a matrix into per-feature equal-frequency bins.
    pub fn from_matrix(x: &Matrix) -> BinnedMatrix {
        let rows = x.rows();
        let cols = x.cols();
        let mut bins = vec![0u8; rows * cols];
        let mut thresholds = Vec::with_capacity(cols);
        for j in 0..cols {
            let mut vals = x.column(j);
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            // Candidate thresholds: quantiles of the distinct values.
            let nb = BINS.min(vals.len());
            let mut cuts = Vec::with_capacity(nb);
            for b in 1..=nb {
                let idx = (b * vals.len()) / nb;
                cuts.push(vals[idx.min(vals.len() - 1)]);
            }
            cuts.dedup_by(|a, b| a == b);
            for i in 0..rows {
                let v = x.row(i)[j];
                let bin = cuts
                    .partition_point(|&c| c < v)
                    .min(cuts.len().saturating_sub(1));
                bins[i * cols + j] = bin as u8;
            }
            thresholds.push(cuts);
        }
        BinnedMatrix {
            bins,
            thresholds,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn bin(&self, row: usize, col: usize) -> usize {
        self.bins[row * self.cols + col] as usize
    }
}

/// A fitted tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Values `<= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
        /// Variance reduction achieved.
        gain: f64,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl Default for Node {
    fn default() -> Self {
        Node::Leaf { value: 0.0 }
    }
}

impl RegressionTree {
    /// Fit a tree on the given sample indices of a binned matrix against
    /// targets `y` (full-length array indexed by sample id), restricted to
    /// `features`.
    pub fn fit(
        binned: &BinnedMatrix,
        y: &[f64],
        samples: &[usize],
        features: &[usize],
        opts: &TreeOptions,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        let root_samples: Vec<usize> = samples.to_vec();
        tree.grow(binned, y, root_samples, features, opts, 0);
        tree
    }

    fn grow(
        &mut self,
        binned: &BinnedMatrix,
        y: &[f64],
        samples: Vec<usize>,
        features: &[usize],
        opts: &TreeOptions,
        depth: usize,
    ) -> usize {
        let n = samples.len();
        let sum: f64 = samples.iter().map(|&i| y[i]).sum();
        let mean = sum / n.max(1) as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            let id = nodes.len();
            nodes.push(Node::Leaf { value: mean });
            id
        };

        if depth >= opts.max_depth || n < 2 * opts.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        // Best split over features x bins.
        let total_sq: f64 = samples.iter().map(|&i| y[i] * y[i]).sum();
        let parent_score = total_sq - sum * sum / n as f64;
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        let mut hist_cnt = [0usize; BINS];
        let mut hist_sum = [0.0f64; BINS];
        for &fj in features {
            let nb = binned.thresholds[fj].len();
            if nb <= 1 {
                continue;
            }
            hist_cnt[..nb].fill(0);
            hist_sum[..nb].fill(0.0);
            for &i in &samples {
                let b = binned.bin(i, fj);
                hist_cnt[b] += 1;
                hist_sum[b] += y[i];
            }
            let mut left_cnt = 0usize;
            let mut left_sum = 0.0f64;
            for b in 0..nb - 1 {
                left_cnt += hist_cnt[b];
                left_sum += hist_sum[b];
                let right_cnt = n - left_cnt;
                if left_cnt < opts.min_samples_leaf || right_cnt < opts.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let score = left_sum * left_sum / left_cnt as f64
                    + right_sum * right_sum / right_cnt as f64;
                let gain = score - sum * sum / n as f64;
                if gain > best.map(|(_, _, g)| g).unwrap_or(1e-12) {
                    best = Some((fj, b, gain));
                }
            }
        }
        let _ = parent_score;

        let Some((feature, bin, gain)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
            .iter()
            .partition(|&&i| binned.bin(i, feature) <= bin);

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.grow(binned, y, left_samples, features, opts, depth + 1);
        let right = self.grow(binned, y, right_samples, features, opts, depth + 1);
        self.nodes[id] = Node::Split {
            feature,
            threshold: binned.thresholds[feature][bin],
            left,
            right,
            gain,
        };
        id
    }

    /// Predict one raw (un-binned) feature row.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Visit all splits: `(feature, gain)` per split node.
    pub fn for_each_split(&self, mut f: impl FnMut(usize, f64)) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                f(*feature, *gain);
            }
        }
    }

    /// Number of split nodes.
    pub fn split_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Split { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 10 if x0 > 0.5 else 0
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            rows.push(vec![v, 0.0]);
            y.push(if v > 0.5 { 10.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn binning_tolerates_nan_features() {
        // A NaN feature value (e.g. a 0/0 ratio upstream) must not panic the
        // sort; total_cmp orders NaN after all numbers.
        let x = Matrix::from_rows(&[
            vec![1.0, f64::NAN],
            vec![2.0, 0.5],
            vec![3.0, f64::NAN],
            vec![4.0, 0.25],
        ]);
        let b = BinnedMatrix::from_matrix(&x);
        assert_eq!(b.thresholds.len(), 2);
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let features = vec![0, 1];
        let t = RegressionTree::fit(&binned, &y, &samples, &features, &TreeOptions::default());
        assert!(t.split_count() >= 1);
        assert!((t.predict_one(&[0.2, 0.0]) - 0.0).abs() < 1.0);
        assert!((t.predict_one(&[0.9, 0.0]) - 10.0).abs() < 1.0);
    }

    #[test]
    fn splits_on_informative_feature() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(&binned, &y, &samples, &[0, 1], &TreeOptions::default());
        let mut feats = Vec::new();
        t.for_each_split(|f, _| feats.push(f));
        assert!(feats.contains(&0));
        assert!(!feats.contains(&1), "constant feature never split");
    }

    #[test]
    fn respects_max_depth_zero() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(
            &binned,
            &y,
            &samples,
            &[0, 1],
            &TreeOptions {
                max_depth: 0,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(t.split_count(), 0);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_one(&[0.9, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let t = RegressionTree::fit(
            &binned,
            &y,
            &samples,
            &[0, 1],
            &TreeOptions {
                max_depth: 10,
                min_samples_leaf: 60,
            },
        );
        // Can't split 100 samples into two leaves of >= 60.
        assert_eq!(t.split_count(), 0);
    }

    #[test]
    fn binning_handles_constant_columns() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let b = BinnedMatrix::from_matrix(&x);
        assert_eq!(b.thresholds[0].len(), 1);
    }
}
