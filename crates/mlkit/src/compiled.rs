//! Flattened, batched inference for fitted tree ensembles.
//!
//! [`crate::tree::RegressionTree`] stores nodes as a per-tree enum vector
//! — fine for training, but batch prediction then chases a separate heap
//! allocation per tree and pays an enum-discriminant match per node.
//! [`CompiledEnsemble`] re-lays every tree into **one contiguous table of
//! packed 24-byte node records** (trees back-to-back, children addressed
//! by global `u32` index) and predicts a **block of rows at a time**:
//! every row of a block traverses one tree before the next tree starts,
//! so each tree's top levels stay hot in cache across the whole block and
//! one bounds-checked load fetches a whole node.
//!
//! Bit-identity contract: for every row, the batched result equals
//! `base + scale * Σ_t tree_t.predict_one(row)` with the tree outputs
//! added in tree order — the exact float sequence the per-row path
//! produces — so swapping in the compiled engine can never move a
//! reported metric. The differential suite pins this.

use crate::dataset::Matrix;
use crate::tree::RegressionTree;

/// Sentinel in a node's `feature` field marking a leaf (its `threshold`
/// field holds the leaf value).
const LEAF: u32 = u32::MAX;

/// Rows advanced together through the node table. Big enough to amortize
/// per-tree loop overhead, small enough that per-row cursors stay in L1.
const BLOCK: usize = 64;

/// One packed node record: 24 bytes, 8-byte aligned, so a single cache
/// line holds 2–3 nodes and one indexed load fetches everything a
/// traversal step needs.
#[derive(Debug, Clone, Copy)]
struct CompiledNode {
    /// Split feature; [`LEAF`] marks a leaf.
    feature: u32,
    /// Left child index (global), valid for split nodes.
    left: u32,
    /// Right child index (global), valid for split nodes.
    right: u32,
    /// Split threshold (`<=` goes left); leaf value for leaves.
    threshold: f64,
}

/// A fitted ensemble compiled to a contiguous flat node table.
#[derive(Debug, Clone, Default)]
pub struct CompiledEnsemble {
    /// Constant prediction offset (the training-target mean).
    base: f64,
    /// Shrinkage applied to the summed tree outputs.
    scale: f64,
    /// All trees' nodes, back-to-back in boosting-stage order.
    nodes: Vec<CompiledNode>,
    /// Root node index of each tree, in boosting-stage order.
    roots: Vec<u32>,
}

impl CompiledEnsemble {
    /// Flatten `trees` (in boosting-stage order) into one node table.
    pub fn from_trees(base: f64, scale: f64, trees: &[RegressionTree]) -> CompiledEnsemble {
        use crate::tree::Node;
        let total: usize = trees.iter().map(|t| t.nodes().len()).sum();
        let mut c = CompiledEnsemble {
            base,
            scale,
            nodes: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
        };
        for tree in trees {
            let offset = c.nodes.len() as u32;
            c.roots.push(offset); // grow() always places the root at index 0
            for node in tree.nodes() {
                c.nodes.push(match node {
                    Node::Leaf { value } => CompiledNode {
                        feature: LEAF,
                        left: 0,
                        right: 0,
                        threshold: *value,
                    },
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => CompiledNode {
                        feature: *feature as u32,
                        left: offset + *left as u32,
                        right: offset + *right as u32,
                        threshold: *threshold,
                    },
                });
            }
        }
        c
    }

    /// Rebuild an ensemble from its raw parts — the deserialization path
    /// for serialized model artifacts (`servekit.model.v1`). Unlike
    /// [`Self::from_trees`], the input is untrusted (a file on disk), so
    /// every structural invariant the traversal relies on is checked:
    ///
    /// * every root index is inside the node table;
    /// * every split node's children are inside the table **and** strictly
    ///   after the node itself (the push-order layout `from_trees`
    ///   produces), which also proves the table is acyclic — a corrupt
    ///   artifact can therefore never hang or out-of-bounds a traversal;
    /// * every split feature is below `n_features`;
    /// * `base`/`scale` and all thresholds are finite.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn from_raw(
        base: f64,
        scale: f64,
        roots: Vec<u32>,
        nodes: Vec<(u32, u32, u32, f64)>,
        n_features: usize,
    ) -> Result<CompiledEnsemble, String> {
        if !base.is_finite() || !scale.is_finite() {
            return Err("base/scale must be finite".to_string());
        }
        let len = nodes.len();
        for (i, &root) in roots.iter().enumerate() {
            if root as usize >= len {
                return Err(format!(
                    "tree {i}: root {root} outside the {len}-node table"
                ));
            }
        }
        let compiled: Vec<CompiledNode> = nodes
            .iter()
            .map(|&(feature, left, right, threshold)| CompiledNode {
                feature,
                left,
                right,
                threshold,
            })
            .collect();
        for (i, n) in compiled.iter().enumerate() {
            if !n.threshold.is_finite() {
                return Err(format!("node {i}: non-finite threshold/leaf value"));
            }
            if n.feature == LEAF {
                continue;
            }
            if n.feature as usize >= n_features {
                return Err(format!(
                    "node {i}: split feature {} outside the {n_features}-feature space",
                    n.feature
                ));
            }
            for child in [n.left, n.right] {
                if child as usize >= len {
                    return Err(format!(
                        "node {i}: child {child} outside the {len}-node table"
                    ));
                }
                // Children strictly after parents is the layout from_trees
                // emits; enforcing it proves acyclicity in one pass.
                if child as usize <= i {
                    return Err(format!(
                        "node {i}: child {child} does not follow its parent (cycle risk)"
                    ));
                }
            }
        }
        Ok(CompiledEnsemble {
            base,
            scale,
            nodes: compiled,
            roots,
        })
    }

    /// Constant prediction offset (the training-target mean).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Shrinkage applied to the summed tree outputs.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Root node index of each tree, in boosting-stage order.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The packed node table as `(feature, left, right, threshold)` rows,
    /// in table order. Leaves carry [`u32::MAX`] in the feature field and
    /// their value in the threshold field — the exact shape
    /// [`Self::from_raw`] accepts, so serialize/deserialize round-trips.
    pub fn nodes_raw(&self) -> impl Iterator<Item = (u32, u32, u32, f64)> + '_ {
        self.nodes
            .iter()
            .map(|n| (n.feature, n.left, n.right, n.threshold))
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes in the flattened table.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Predict one raw feature row (walks the flat table; used for spot
    /// checks — batches should go through [`Self::predict_into`]).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for &root in &self.roots {
            let mut n = self.nodes[root as usize];
            while n.feature != LEAF {
                let next = if row[n.feature as usize] <= n.threshold {
                    n.left
                } else {
                    n.right
                };
                n = self.nodes[next as usize];
            }
            acc += n.threshold;
        }
        self.base + self.scale * acc
    }

    /// Predict every row of `x` into `out`, block-wise: all rows of a
    /// block traverse one tree before the next tree starts, so each tree's
    /// upper levels stay hot in cache for the whole block and the node
    /// table is read front-to-back once per block.
    ///
    /// # Panics
    /// Panics if `out.len() != x.rows()`.
    pub fn predict_into(&self, x: &Matrix, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output length mismatch");
        let mut acc = [0.0f64; BLOCK];
        let mut rows: Vec<&[f64]> = Vec::with_capacity(BLOCK);
        for block_start in (0..x.rows()).step_by(BLOCK) {
            let bl = BLOCK.min(x.rows() - block_start);
            acc[..bl].fill(0.0);
            rows.clear();
            rows.extend((0..bl).map(|r| x.row(block_start + r)));
            for &root in &self.roots {
                for (slot, row) in acc[..bl].iter_mut().zip(&rows) {
                    let mut n = self.nodes[root as usize];
                    while n.feature != LEAF {
                        let next = if row[n.feature as usize] <= n.threshold {
                            n.left
                        } else {
                            n.right
                        };
                        n = self.nodes[next as usize];
                    }
                    // Per-row accumulation stays in tree order, so the
                    // float sequence matches `predict_row` exactly.
                    *slot += n.threshold;
                }
            }
            for (r, &a) in acc[..bl].iter().enumerate() {
                out[block_start + r] = self.base + self.scale * a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedMatrix;
    use crate::tree::TreeOptions;

    fn wavy(n: usize, cols: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..cols)
                    .map(|j| (((i * 13 + j * 7) % 101) as f64) * 0.21)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * 0.4).sin() * 8.0 + r[1] * 0.5)
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    fn fit_forest(x: &Matrix, y: &[f64], k: usize) -> Vec<RegressionTree> {
        let binned = BinnedMatrix::from_matrix(x);
        let samples: Vec<usize> = (0..x.rows()).collect();
        let features: Vec<usize> = (0..x.cols()).collect();
        (0..k)
            .map(|d| {
                RegressionTree::fit(
                    &binned,
                    y,
                    &samples,
                    &features,
                    &TreeOptions {
                        max_depth: 1 + d % 4,
                        min_samples_leaf: 2,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn batched_matches_per_row_bitwise() {
        let (x, y) = wavy(333, 5); // odd count: exercises the partial block
        let trees = fit_forest(&x, &y, 7);
        let c = CompiledEnsemble::from_trees(1.25, 0.1, &trees);
        let mut out = vec![0.0; x.rows()];
        c.predict_into(&x, &mut out);
        for (i, row) in x.iter_rows().enumerate() {
            let per_row = 1.25 + 0.1 * trees.iter().map(|t| t.predict_one(row)).sum::<f64>();
            assert_eq!(out[i].to_bits(), per_row.to_bits(), "row {i}");
            assert_eq!(c.predict_row(row).to_bits(), per_row.to_bits(), "row {i}");
        }
    }

    #[test]
    fn empty_ensemble_predicts_base() {
        let c = CompiledEnsemble::from_trees(3.5, 0.1, &[]);
        assert_eq!(c.n_trees(), 0);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut out = vec![0.0; 2];
        c.predict_into(&x, &mut out);
        assert_eq!(out, vec![3.5, 3.5]);
    }

    #[test]
    fn node_table_is_contiguous_and_complete() {
        let (x, y) = wavy(120, 3);
        let trees = fit_forest(&x, &y, 4);
        let c = CompiledEnsemble::from_trees(0.0, 1.0, &trees);
        let expected: usize = trees.iter().map(|t| t.split_count() * 2 + 1).sum();
        // A binary tree with s splits has s+1 leaves => 2s+1 nodes.
        assert_eq!(c.n_nodes(), expected);
        assert_eq!(c.n_trees(), 4);
    }

    #[test]
    fn raw_round_trip_is_bitwise() {
        let (x, y) = wavy(150, 4);
        let trees = fit_forest(&x, &y, 5);
        let c = CompiledEnsemble::from_trees(0.7, 0.09, &trees);
        let back = CompiledEnsemble::from_raw(
            c.base(),
            c.scale(),
            c.roots().to_vec(),
            c.nodes_raw().collect(),
            x.cols(),
        )
        .unwrap();
        for row in x.iter_rows() {
            assert_eq!(
                back.predict_row(row).to_bits(),
                c.predict_row(row).to_bits()
            );
        }
    }

    #[test]
    fn from_raw_rejects_corrupt_tables() {
        let split = |f: u32, l: u32, r: u32| (f, l, r, 0.5);
        let leaf = (LEAF, 0, 0, 1.0);
        // Root outside the table.
        let e = CompiledEnsemble::from_raw(0.0, 1.0, vec![3], vec![leaf], 4).unwrap_err();
        assert!(e.contains("root"), "{e}");
        // Child outside the table.
        let e = CompiledEnsemble::from_raw(0.0, 1.0, vec![0], vec![split(0, 1, 9)], 4).unwrap_err();
        assert!(e.contains("outside"), "{e}");
        // Self-referencing child (cycle).
        let e = CompiledEnsemble::from_raw(0.0, 1.0, vec![0], vec![split(0, 0, 0)], 4).unwrap_err();
        assert!(e.contains("cycle"), "{e}");
        // Split feature outside the feature space.
        let e = CompiledEnsemble::from_raw(0.0, 1.0, vec![0], vec![split(7, 1, 1), leaf], 4)
            .unwrap_err();
        assert!(e.contains("feature"), "{e}");
        // Non-finite leaf value.
        let e = CompiledEnsemble::from_raw(0.0, 1.0, vec![0], vec![(LEAF, 0, 0, f64::NAN)], 4)
            .unwrap_err();
        assert!(e.contains("finite"), "{e}");
        // Non-finite scale.
        let e = CompiledEnsemble::from_raw(0.0, f64::INFINITY, vec![], vec![], 4).unwrap_err();
        assert!(e.contains("finite"), "{e}");
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn predict_into_checks_length() {
        let c = CompiledEnsemble::from_trees(0.0, 1.0, &[]);
        let x = Matrix::from_rows(&[vec![1.0]]);
        c.predict_into(&x, &mut []);
    }
}
