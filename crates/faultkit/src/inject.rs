//! Thread-local injection context and the injection points themselves.
//!
//! The [`Supervisor`](crate::Supervisor) arms a scope —
//! `(plan, design, attempt)` — around each stage attempt; instrumented code
//! deep inside the pipeline calls [`inject`] (fallible stages) or
//! [`inject_abort`] (infallible stages) with its stage name. With no armed
//! scope both calls are a two-instruction no-op, so production binaries pay
//! nothing for carrying the injection points.
//!
//! The context is thread-local on purpose: the dataset builder fans designs
//! out one-per-worker (`parkit`), and each worker supervises its own design
//! with its own attempt counter. A process-global context would leak one
//! design's faults into another's stages.

use crate::plan::{FaultKind, FaultPlan};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// A typed, injected transient error. Fallible stages wrap this into their
/// own error enum (e.g. `SynthError::Injected`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Injection-point name.
    pub stage: String,
    /// Design being processed when the fault fired.
    pub design: String,
    /// Attempt number (0-based) the fault fired on.
    pub attempt: u32,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faultkit: injected transient error at `{}` (design `{}`, attempt {})",
            self.stage, self.design, self.attempt
        )
    }
}

impl std::error::Error for InjectedFault {}

/// The panic payload used for injected panics, so supervisors (and the
/// quiet panic hook) can tell injected panics from genuine bugs by
/// downcasting instead of string-matching.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// Human-readable description of the injection.
    pub message: String,
    /// True when the plan asked for a *typed error* at an infallible stage:
    /// the panic is just the transport, and the supervisor records the
    /// attempt as a transient error rather than a panic.
    pub as_error: bool,
}

struct Ctx {
    plan: Arc<FaultPlan>,
    design: String,
    attempt: u32,
    fired: u32,
}

thread_local! {
    static STACK: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
}

/// An armed injection scope; disarms (pops) on drop. Returned by [`arm`].
pub struct InjectionScope {
    depth: usize,
}

impl InjectionScope {
    /// How many faults fired inside this scope so far. Survives a panic in
    /// the scoped code — read it *after* catching, *before* dropping.
    pub fn fired(&self) -> u32 {
        STACK.with(|s| {
            s.borrow()
                .get(self.depth)
                .map(|c| c.fired)
                .unwrap_or_default()
        })
    }
}

impl Drop for InjectionScope {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.len(), self.depth + 1, "injection scopes must nest");
            s.truncate(self.depth);
        });
    }
}

/// Arm fault injection on the current thread for one stage attempt.
pub fn arm(plan: Arc<FaultPlan>, design: &str, attempt: u32) -> InjectionScope {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(Ctx {
            plan,
            design: design.to_string(),
            attempt,
            fired: 0,
        });
        InjectionScope { depth: s.len() - 1 }
    })
}

/// The fault decided for `stage` under the innermost armed scope, if any.
/// Marks the fault as fired.
fn decide(stage: &str) -> Option<(FaultKind, InjectedFault)> {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        let ctx = s.last_mut()?;
        let rule = ctx.plan.fault_for(&ctx.design, stage, ctx.attempt)?;
        let fault = InjectedFault {
            stage: stage.to_string(),
            design: ctx.design.clone(),
            attempt: ctx.attempt,
        };
        let kind = rule.kind.clone();
        ctx.fired += 1;
        Some((kind, fault))
    })
}

/// Injection point for **fallible** stages. Returns `Err(InjectedFault)`
/// for `error` faults (wrap it into the stage's error type), panics with an
/// [`InjectedPanic`] payload for `panic` faults, sleeps for `delay_ms`
/// faults, and is a no-op when no scope is armed or no rule matches.
pub fn inject(stage: &str) -> Result<(), InjectedFault> {
    let Some((kind, fault)) = decide(stage) else {
        return Ok(());
    };
    match kind {
        FaultKind::Error => Err(fault),
        FaultKind::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultKind::Panic => {
            std::panic::panic_any(InjectedPanic {
                message: format!(
                    "faultkit: injected panic at `{}` (design `{}`, attempt {})",
                    fault.stage, fault.design, fault.attempt
                ),
                as_error: false,
            });
        }
    }
}

/// Injection point for **infallible** stages (the router has no error
/// path). `error` faults are transported as a panic whose payload is
/// flagged `as_error`, which the supervisor classifies back into a
/// transient error; `panic` and `delay_ms` behave as in [`inject`].
pub fn inject_abort(stage: &str) {
    let Some((kind, fault)) = decide(stage) else {
        return;
    };
    match kind {
        FaultKind::Delay(d) => std::thread::sleep(d),
        FaultKind::Panic => std::panic::panic_any(InjectedPanic {
            message: format!(
                "faultkit: injected panic at `{}` (design `{}`, attempt {})",
                fault.stage, fault.design, fault.attempt
            ),
            as_error: false,
        }),
        FaultKind::Error => std::panic::panic_any(InjectedPanic {
            message: fault.to_string(),
            as_error: true,
        }),
    }
}

/// Install a process-wide panic hook that suppresses the default
/// "thread panicked" stderr message for *injected* panics (payload is an
/// [`InjectedPanic`]) and delegates everything else to the previous hook.
/// Idempotent; call it from chaos tests and from the CLI when a fault plan
/// is loaded, so supervised chaos runs don't spray stderr.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultRule};

    fn plan(kind: FaultKind) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(0).with_rule(FaultRule::once("d", "s", kind)))
    }

    #[test]
    fn noop_without_scope() {
        assert!(inject("s").is_ok());
        inject_abort("s"); // must not panic
    }

    #[test]
    fn error_fault_is_typed_and_counted() {
        let scope = arm(plan(FaultKind::Error), "d", 0);
        let e = inject("s").unwrap_err();
        assert_eq!(e.stage, "s");
        assert_eq!(e.design, "d");
        assert_eq!(e.attempt, 0);
        // Second call fires again (the rule still matches this attempt).
        assert!(inject("s").is_err());
        assert!(inject("other").is_ok());
        assert_eq!(scope.fired(), 2);
    }

    #[test]
    fn panic_fault_carries_marker_payload() {
        silence_injected_panics();
        let scope = arm(plan(FaultKind::Panic), "d", 0);
        let caught = std::panic::catch_unwind(|| inject("s")).unwrap_err();
        let p = caught
            .downcast_ref::<InjectedPanic>()
            .expect("marker payload");
        assert!(!p.as_error);
        assert!(p.message.contains("`s`"));
        assert_eq!(scope.fired(), 1);
    }

    #[test]
    fn abort_point_transports_errors_as_flagged_panics() {
        silence_injected_panics();
        let _scope = arm(plan(FaultKind::Error), "d", 0);
        let caught = std::panic::catch_unwind(|| inject_abort("s")).unwrap_err();
        let p = caught
            .downcast_ref::<InjectedPanic>()
            .expect("marker payload");
        assert!(p.as_error);
    }

    #[test]
    fn attempt_gates_injection() {
        let p = plan(FaultKind::Error);
        {
            let _s = arm(p.clone(), "d", 0);
            assert!(inject("s").is_err());
        }
        {
            let _s = arm(p, "d", 1);
            assert!(inject("s").is_ok(), "attempts_below=1 spares attempt 1");
        }
    }

    #[test]
    fn scopes_nest_and_restore() {
        let p = plan(FaultKind::Error);
        let outer = arm(p.clone(), "d", 5);
        assert!(inject("s").is_ok(), "outer scope is attempt 5");
        {
            let inner = arm(p, "d", 0);
            assert!(inject("s").is_err());
            assert_eq!(inner.fired(), 1);
        }
        assert!(inject("s").is_ok(), "inner scope popped");
        assert_eq!(outer.fired(), 0);
    }
}
