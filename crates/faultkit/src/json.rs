//! A minimal JSON reader/writer (no serde in-tree — same constraint that
//! produced the `shims/` crates and `obskit::json`).
//!
//! Faultkit needs to *parse* JSON, not just write it: fault plans arrive as
//! files on the command line and checkpoint metadata must round-trip. The
//! parser below is a small recursive-descent implementation over the full
//! JSON value grammar; it is strict about structure (no trailing commas, no
//! comments) and lenient about nothing.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a [`BTreeMap`], so re-serialization is
/// deterministic (keys sorted), which keeps checkpoint files diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Look up a key on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialize back to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number literal; non-finite floats become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (one top-level value, optionally
/// surrounded by whitespace).
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn num(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced, not paired — plan files
                            // and checkpoint metadata never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn roundtrips_through_to_json() {
        let src = r#"{"rules":[{"design":"d \"q\"","p":0.5}],"seed":42.0}"#;
        let v = parse(src).unwrap();
        let again = parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
