//! Stage supervision: panic isolation, bounded deterministic retries, and
//! per-stage attempt/time budgets.
//!
//! A [`Supervisor`] wraps one design's trip through the pipeline. Each stage
//! runs under [`Supervisor::run_stage`], which:
//!
//! 1. arms the fault-injection scope for `(design, stage, attempt)`;
//! 2. catches panics at the stage boundary (`catch_unwind`), so one design's
//!    crash degrades into a per-design failure instead of sinking the batch;
//! 3. classifies each attempt — success, typed error (transient or
//!    permanent), injected error, panic, or budget overrun — and retries
//!    transient outcomes up to the policy's attempt budget with
//!    deterministic exponential backoff;
//! 4. returns the value *plus* a [`StageLog`] of every attempt, which the
//!    pipeline folds into the design report and obskit counters.
//!
//! **Determinism.** The backoff *schedule* (which attempts run, and the
//! backoff recorded before each) is a pure function of
//! `(policy, design, stage, attempt)` — wall-clock only decides *timeout*
//! classification, which is driven by injected latency in chaos runs. The
//! schedule is therefore bit-identical across worker counts, which
//! `StageLog: PartialEq` lets tests assert directly.

use crate::inject::{self, InjectedPanic};
use crate::plan::{fnv1a, FaultPlan};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry/budget policy applied to every supervised stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorPolicy {
    /// Retries allowed after the first attempt (attempt budget is
    /// `max_retries + 1` attempts per stage).
    pub max_retries: u32,
    /// Per-attempt wall-clock budget. Checked *after* the attempt returns
    /// (cooperative — the supervisor never kills a thread); an attempt that
    /// overran is discarded and classified [`AttemptOutcome::TimedOut`],
    /// even if it produced a value. `None` disables the check, which also
    /// keeps supervision wall-clock-free (fully deterministic).
    pub stage_timeout: Option<Duration>,
    /// First backoff; attempt `n` (1-based retry) backs off
    /// `base * 2^(n-1)` plus deterministic jitter, capped at `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff.
    pub backoff_cap: Duration,
    /// Actually sleep the backoff before retrying. Chaos tests turn this
    /// off: the *schedule* is still computed and logged, just not slept.
    pub sleep_on_retry: bool,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 2,
            stage_timeout: None,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            sleep_on_retry: true,
        }
    }
}

impl SupervisorPolicy {
    /// Default policy without backoff sleeps (tests).
    pub fn no_sleep() -> Self {
        SupervisorPolicy {
            sleep_on_retry: false,
            ..Self::default()
        }
    }

    /// The backoff scheduled before `attempt` (0-based; attempt 0 has
    /// none). Deterministic: exponential in the attempt number with jitter
    /// hashed from `(design, stage, attempt)` — no wall-clock, no RNG — so
    /// two runs of the same plan produce the same schedule.
    pub fn backoff_for(&self, design: &str, stage: &str, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let base = self.backoff_base.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(20));
        // Jitter in [0, base/2], decided by hash — spreads synchronized
        // retries without sacrificing replayability.
        let jitter = if base == 0 {
            0
        } else {
            fnv1a(&[design.as_bytes(), stage.as_bytes(), &attempt.to_le_bytes()]) % (base / 2 + 1)
        };
        Duration::from_millis(exp.saturating_add(jitter)).min(self.backoff_cap)
    }
}

/// How one attempt of one stage ended. Carries no wall-clock, so attempt
/// logs compare equal across runs and worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The stage returned a value within budget.
    Ok,
    /// The stage returned, but past the per-attempt budget; the value was
    /// discarded and the attempt retried.
    TimedOut,
    /// The stage returned a typed error.
    Failed {
        /// Whether the error class is worth retrying.
        transient: bool,
        /// Rendered error.
        message: String,
    },
    /// The stage panicked and the supervisor caught it.
    Panicked {
        /// True when the panic was injected by a fault plan.
        injected: bool,
        /// Rendered panic payload.
        message: String,
    },
}

/// One attempt in a [`StageLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 0-based attempt number.
    pub attempt: u32,
    /// Backoff scheduled before this attempt (zero for the first).
    pub backoff: Duration,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// Everything the supervisor observed while running one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLog {
    /// Stage name.
    pub stage: String,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Faults injected across all attempts of this stage.
    pub injected: u32,
}

impl StageLog {
    /// Retries performed (attempts beyond the first).
    pub fn retries(&self) -> u32 {
        (self.attempts.len() as u32).saturating_sub(1)
    }

    /// Panics caught across attempts.
    pub fn panics_caught(&self) -> u32 {
        self.attempts
            .iter()
            .filter(|a| matches!(a.outcome, AttemptOutcome::Panicked { .. }))
            .count() as u32
    }

    /// Attempts discarded for exceeding the per-attempt budget.
    pub fn timeouts(&self) -> u32 {
        self.attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::TimedOut)
            .count() as u32
    }
}

/// Terminal failure of a supervised stage, after retries are exhausted.
#[derive(Debug)]
pub enum StageFailure<E> {
    /// The stage's own typed error (permanent, or transient with the
    /// attempt budget exhausted).
    Error(E),
    /// An injected transient error at an infallible stage, retries
    /// exhausted.
    Injected {
        /// Rendered injected fault.
        message: String,
    },
    /// The stage panicked on its last allowed attempt.
    Panic {
        /// True when the panic was injected by a fault plan.
        injected: bool,
        /// Rendered panic payload.
        message: String,
    },
    /// Every allowed attempt overran the per-attempt budget.
    Timeout {
        /// The budget each attempt exceeded.
        budget: Duration,
    },
}

impl<E: fmt::Display> fmt::Display for StageFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageFailure::Error(e) => write!(f, "{e}"),
            StageFailure::Injected { message } => write!(f, "{message}"),
            StageFailure::Panic { message, .. } => write!(f, "panic: {message}"),
            StageFailure::Timeout { budget } => {
                write!(f, "exceeded stage budget of {budget:?}")
            }
        }
    }
}

/// Result of a supervised stage: the value or terminal failure, plus the
/// full attempt log either way.
pub struct StageRun<T, E> {
    /// The stage's value, or why it ultimately failed.
    pub result: Result<T, StageFailure<E>>,
    /// Every attempt the supervisor made.
    pub log: StageLog,
}

/// Supervises one design's pipeline stages. See the module docs.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Retry/budget policy.
    pub policy: SupervisorPolicy,
    /// Armed fault plan, if any.
    pub plan: Option<Arc<FaultPlan>>,
    /// Design under supervision (keys the injection scope and backoff
    /// jitter).
    pub design: String,
}

impl Supervisor {
    /// A supervisor for one design.
    pub fn new(policy: SupervisorPolicy, plan: Option<Arc<FaultPlan>>, design: &str) -> Supervisor {
        Supervisor {
            policy,
            plan,
            design: design.to_string(),
        }
    }

    /// Run `stage` under supervision. `attempt_fn` receives the 0-based
    /// attempt number; `is_transient` classifies the stage's typed errors
    /// (transient errors are retried, permanent ones fail immediately).
    ///
    /// The closure runs behind an `AssertUnwindSafe` boundary: the pipeline
    /// only ever passes values that are either consumed by the attempt or
    /// rebuilt on retry, so a half-mutated value can never leak across an
    /// unwind into another attempt.
    pub fn run_stage<T, E, F, C>(
        &self,
        stage: &str,
        mut attempt_fn: F,
        is_transient: C,
    ) -> StageRun<T, E>
    where
        F: FnMut(u32) -> Result<T, E>,
        C: Fn(&E) -> bool,
        E: fmt::Display,
    {
        let mut log = StageLog {
            stage: stage.to_string(),
            attempts: Vec::new(),
            injected: 0,
        };
        let attempts_allowed = self.policy.max_retries + 1;
        let mut terminal: Option<StageFailure<E>> = None;

        for attempt in 0..attempts_allowed {
            let backoff = self.policy.backoff_for(&self.design, stage, attempt);
            if self.policy.sleep_on_retry && !backoff.is_zero() {
                std::thread::sleep(backoff);
            }

            let scope = self
                .plan
                .as_ref()
                .map(|p| inject::arm(p.clone(), &self.design, attempt));
            let started = Instant::now();
            let caught = catch_unwind(AssertUnwindSafe(|| attempt_fn(attempt)));
            let elapsed = started.elapsed();
            if let Some(scope) = scope {
                log.injected += scope.fired();
            }

            let record = |outcome: AttemptOutcome| AttemptRecord {
                attempt,
                backoff,
                outcome,
            };
            match caught {
                Ok(Ok(value)) => {
                    if let Some(budget) = self.policy.stage_timeout {
                        if elapsed > budget {
                            log.attempts.push(record(AttemptOutcome::TimedOut));
                            terminal = Some(StageFailure::Timeout { budget });
                            continue; // discard the late value, retry
                        }
                    }
                    log.attempts.push(record(AttemptOutcome::Ok));
                    return StageRun {
                        result: Ok(value),
                        log,
                    };
                }
                Ok(Err(e)) => {
                    let transient = is_transient(&e);
                    log.attempts.push(record(AttemptOutcome::Failed {
                        transient,
                        message: e.to_string(),
                    }));
                    terminal = Some(StageFailure::Error(e));
                    if !transient {
                        break;
                    }
                }
                Err(payload) => {
                    let panic = classify_panic(payload);
                    match panic {
                        PanicClass::AsError(message) => {
                            log.attempts.push(record(AttemptOutcome::Failed {
                                transient: true,
                                message: message.clone(),
                            }));
                            terminal = Some(StageFailure::Injected { message });
                        }
                        PanicClass::Panic { injected, message } => {
                            log.attempts.push(record(AttemptOutcome::Panicked {
                                injected,
                                message: message.clone(),
                            }));
                            terminal = Some(StageFailure::Panic { injected, message });
                        }
                    }
                }
            }
        }

        StageRun {
            result: Err(terminal.unwrap_or(StageFailure::Timeout {
                // Unreachable: attempts_allowed >= 1, so some attempt always
                // sets `terminal` before the loop ends without returning.
                budget: Duration::ZERO,
            })),
            log,
        }
    }
}

enum PanicClass {
    /// Injected `error` fault transported through an infallible stage.
    AsError(String),
    /// A real (or injected) panic.
    Panic { injected: bool, message: String },
}

fn classify_panic(payload: Box<dyn Any + Send>) -> PanicClass {
    if let Some(ip) = payload.downcast_ref::<InjectedPanic>() {
        if ip.as_error {
            PanicClass::AsError(ip.message.clone())
        } else {
            PanicClass::Panic {
                injected: true,
                message: ip.message.clone(),
            }
        }
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        PanicClass::Panic {
            injected: false,
            message: (*s).to_string(),
        }
    } else if let Some(s) = payload.downcast_ref::<String>() {
        PanicClass::Panic {
            injected: false,
            message: s.clone(),
        }
    } else {
        PanicClass::Panic {
            injected: false,
            message: "non-string panic payload".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::silence_injected_panics;
    use crate::plan::{FaultKind, FaultPlan, FaultRule};

    fn sup(plan: Option<FaultPlan>) -> Supervisor {
        Supervisor::new(SupervisorPolicy::no_sleep(), plan.map(Arc::new), "d")
    }

    #[test]
    fn success_needs_one_attempt() {
        let run = sup(None).run_stage("s", |_| Ok::<_, String>(42), |_| false);
        assert_eq!(run.result.unwrap(), 42);
        assert_eq!(run.log.attempts.len(), 1);
        assert_eq!(run.log.attempts[0].outcome, AttemptOutcome::Ok);
        assert_eq!(run.log.retries(), 0);
    }

    #[test]
    fn permanent_error_is_not_retried() {
        let mut calls = 0;
        let run = sup(None).run_stage(
            "s",
            |_| -> Result<(), String> {
                calls += 1;
                Err("invalid IR".into())
            },
            |_| false,
        );
        assert!(matches!(run.result, Err(StageFailure::Error(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_error_retries_until_success() {
        let run = sup(None).run_stage(
            "s",
            |attempt| {
                if attempt < 2 {
                    Err(format!("flaky {attempt}"))
                } else {
                    Ok(attempt)
                }
            },
            |_| true,
        );
        assert_eq!(run.result.unwrap(), 2);
        assert_eq!(run.log.retries(), 2);
        assert_eq!(run.log.attempts[2].outcome, AttemptOutcome::Ok);
    }

    #[test]
    fn retries_are_bounded() {
        let mut calls = 0u32;
        let run = sup(None).run_stage(
            "s",
            |_| -> Result<(), String> {
                calls += 1;
                Err("always".into())
            },
            |_| true,
        );
        assert!(run.result.is_err());
        assert_eq!(calls, SupervisorPolicy::default().max_retries + 1);
    }

    #[test]
    fn panics_are_caught_and_retried() {
        silence_injected_panics();
        let run = sup(None).run_stage(
            "s",
            |attempt| -> Result<u32, String> {
                if attempt == 0 {
                    panic!("boom faultkit-test");
                }
                Ok(7)
            },
            |_| false,
        );
        assert_eq!(run.result.unwrap(), 7);
        assert_eq!(run.log.panics_caught(), 1);
        match &run.log.attempts[0].outcome {
            AttemptOutcome::Panicked { injected, message } => {
                assert!(!injected);
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic record, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_and_error_classified() {
        silence_injected_panics();
        let plan = FaultPlan::new(0)
            .with_rule(FaultRule::once("d", "p", FaultKind::Panic))
            .with_rule(FaultRule::once("d", "e", FaultKind::Error));
        let s = sup(Some(plan));

        let run = s.run_stage(
            "p",
            |_| -> Result<(), String> { crate::inject("p").map_err(|f| f.to_string()) },
            |_| true,
        );
        assert!(run.result.is_ok(), "retry recovers the injected panic");
        assert!(matches!(
            run.log.attempts[0].outcome,
            AttemptOutcome::Panicked { injected: true, .. }
        ));
        assert_eq!(run.log.injected, 1);

        let run = s.run_stage(
            "e",
            |_| -> Result<(), String> {
                crate::inject_abort("e");
                Ok(())
            },
            |_| false,
        );
        assert!(run.result.is_ok());
        assert!(matches!(
            run.log.attempts[0].outcome,
            AttemptOutcome::Failed {
                transient: true,
                ..
            }
        ));
    }

    #[test]
    fn late_values_are_discarded_as_timeouts() {
        let mut s = sup(Some(FaultPlan::new(0).with_rule(FaultRule::once(
            "d",
            "slow",
            FaultKind::Delay(Duration::from_millis(120)),
        ))));
        s.policy.stage_timeout = Some(Duration::from_millis(40));
        let run = s.run_stage(
            "slow",
            |attempt| {
                crate::inject("slow").map_err(|f| f.to_string())?;
                Ok::<_, String>(attempt)
            },
            |_| false,
        );
        // Attempt 0 slept 120ms > 40ms budget → discarded; attempt 1 clean.
        assert_eq!(run.result.unwrap(), 1);
        assert_eq!(run.log.timeouts(), 1);
        assert_eq!(run.log.attempts[0].outcome, AttemptOutcome::TimedOut);
    }

    #[test]
    fn timeout_every_attempt_is_terminal() {
        let mut s = sup(Some(
            FaultPlan::new(0).with_rule(
                FaultRule::once("d", "slow", FaultKind::Delay(Duration::from_millis(80)))
                    .for_attempts(u32::MAX),
            ),
        ));
        s.policy.stage_timeout = Some(Duration::from_millis(10));
        s.policy.max_retries = 1;
        let run = s.run_stage(
            "slow",
            |_| {
                crate::inject("slow").map_err(|f| f.to_string())?;
                Ok::<_, String>(())
            },
            |_| false,
        );
        assert!(matches!(run.result, Err(StageFailure::Timeout { .. })));
        assert_eq!(run.log.timeouts(), 2);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let p = SupervisorPolicy::default();
        let b1 = p.backoff_for("d", "s", 1);
        let b2 = p.backoff_for("d", "s", 2);
        let b3 = p.backoff_for("d", "s", 3);
        assert_eq!(b1, p.backoff_for("d", "s", 1), "same inputs, same backoff");
        assert!(b2 > b1 && b3 > b2, "{b1:?} {b2:?} {b3:?}");
        assert!(b3 <= p.backoff_cap);
        assert_ne!(
            p.backoff_for("d", "s", 1),
            p.backoff_for("other", "s", 1),
            "jitter separates designs"
        );
        assert_eq!(p.backoff_for("d", "s", 0), Duration::ZERO);
    }

    #[test]
    fn attempt_logs_compare_equal_across_runs() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::once("d", "s", FaultKind::Error));
        let go = || {
            sup(Some(plan.clone())).run_stage(
                "s",
                |_| crate::inject("s").map_err(|f| f.to_string()),
                |_| true,
            )
        };
        assert_eq!(go().log, go().log);
    }
}
