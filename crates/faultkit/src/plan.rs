//! Serializable, deterministic fault plans.
//!
//! A [`FaultPlan`] is a list of rules saying *where* (design × stage), *when*
//! (attempt number), and *what* (panic / typed error / latency) to inject.
//! Every decision is a pure function of `(plan seed, design name, stage,
//! attempt)` — no wall-clock, no global RNG — so a chaos run is bit-identical
//! across repetitions and worker counts, and a failure found under a plan can
//! be replayed from the plan file alone.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// What a matching rule injects at the injection point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`crate::InjectedPanic`] payload (tests panic isolation).
    Panic,
    /// A typed, transient error (tests retry logic). Fallible stages surface
    /// it through their own error type; infallible stages panic with a
    /// payload the supervisor classifies back into a transient error.
    Error,
    /// Sleep for the given duration before continuing (tests stage
    /// time budgets).
    Delay(Duration),
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::Delay(_) => "delay_ms",
        }
    }
}

/// One injection rule. Matches on design name and stage (either may be the
/// wildcard `*`), fires while `attempt < attempts_below`, optionally
/// downsampled by `probability` (decided by a seeded hash, not an RNG).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Design name to match, or `*` for every design.
    pub design: String,
    /// Injection-point name to match (`hls`, `route`, `backtrace`,
    /// `features`, …), or `*` for every stage.
    pub stage: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Fire while `attempt < attempts_below`. `1` (the default) makes the
    /// fault transient — it hits the first attempt only, so a retry
    /// recovers; a large value makes it persistent.
    pub attempts_below: u32,
    /// Probability the rule fires on a matching `(design, stage, attempt)`,
    /// decided deterministically from the plan seed. Default `1.0`.
    pub probability: f64,
}

impl FaultRule {
    /// A rule firing on the first attempt only, with probability 1.
    pub fn once(design: &str, stage: &str, kind: FaultKind) -> FaultRule {
        FaultRule {
            design: design.to_string(),
            stage: stage.to_string(),
            kind,
            attempts_below: 1,
            probability: 1.0,
        }
    }

    /// Same rule firing on every attempt below `n`.
    pub fn for_attempts(mut self, n: u32) -> FaultRule {
        self.attempts_below = n;
        self
    }

    fn matches(&self, seed: u64, design: &str, stage: &str, attempt: u32) -> bool {
        if self.design != "*" && self.design != design {
            return false;
        }
        if self.stage != "*" && self.stage != stage {
            return false;
        }
        if attempt >= self.attempts_below {
            return false;
        }
        self.probability >= 1.0 || roll(seed, design, stage, attempt) < self.probability
    }
}

/// A deterministic fault-injection plan: a seed plus an ordered rule list
/// (first matching rule wins).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every probabilistic decision.
    pub seed: u64,
    /// Rules, evaluated in order.
    pub rules: Vec<FaultRule>,
}

/// Error parsing a fault-plan file.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanParseError(pub String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule (builder style, used heavily by chaos tests).
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// The fault to inject at `(design, stage, attempt)`, if any: the first
    /// rule that matches. Pure — same arguments, same answer, forever.
    pub fn fault_for(&self, design: &str, stage: &str, attempt: u32) -> Option<&FaultRule> {
        self.rules
            .iter()
            .find(|r| r.matches(self.seed, design, stage, attempt))
    }

    /// Serialize to the JSON schema accepted by [`FaultPlan::from_json`].
    pub fn to_json(&self) -> String {
        let rules: Vec<Value> = self
            .rules
            .iter()
            .map(|r| {
                let mut obj = BTreeMap::new();
                obj.insert("design".into(), Value::Str(r.design.clone()));
                obj.insert("stage".into(), Value::Str(r.stage.clone()));
                obj.insert("kind".into(), Value::Str(r.kind.name().into()));
                if let FaultKind::Delay(d) = r.kind {
                    obj.insert("delay_ms".into(), Value::Num(d.as_millis() as f64));
                }
                obj.insert(
                    "attempts_below".into(),
                    Value::Num(f64::from(r.attempts_below)),
                );
                obj.insert("probability".into(), Value::Num(r.probability));
                Value::Obj(obj)
            })
            .collect();
        let mut top = BTreeMap::new();
        top.insert("seed".into(), Value::Num(self.seed as f64));
        top.insert("rules".into(), Value::Arr(rules));
        Value::Obj(top).to_json()
    }

    /// Parse a plan from JSON:
    ///
    /// ```json
    /// {
    ///   "seed": 7,
    ///   "rules": [
    ///     {"design": "*", "stage": "route", "kind": "panic"},
    ///     {"design": "d2", "stage": "hls", "kind": "delay_ms", "delay_ms": 800},
    ///     {"design": "d3", "stage": "hls", "kind": "error", "attempts_below": 99}
    ///   ]
    /// }
    /// ```
    ///
    /// `attempts_below` defaults to 1 (first attempt only) and
    /// `probability` to 1.0.
    ///
    /// # Errors
    /// Returns a [`PlanParseError`] describing the first malformed field.
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanParseError> {
        let doc = json::parse(text).map_err(|e| PlanParseError(e.to_string()))?;
        if doc.as_obj().is_none() {
            return Err(PlanParseError(
                "top-level value must be an object with `seed` and `rules`".into(),
            ));
        }
        let seed = match doc.get("seed") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| PlanParseError("`seed` must be a non-negative integer".into()))?,
        };
        let mut rules = Vec::new();
        if let Some(list) = doc.get("rules") {
            let list = list
                .as_arr()
                .ok_or_else(|| PlanParseError("`rules` must be an array".into()))?;
            for (i, r) in list.iter().enumerate() {
                rules.push(parse_rule(r, i)?);
            }
        }
        Ok(FaultPlan { seed, rules })
    }
}

fn parse_rule(v: &Value, i: usize) -> Result<FaultRule, PlanParseError> {
    let err = |m: String| PlanParseError(format!("rule {i}: {m}"));
    let field = |k: &str| -> Result<&str, PlanParseError> {
        v.get(k)
            .and_then(Value::as_str)
            .ok_or_else(|| err(format!("missing string field `{k}`")))
    };
    let design = field("design")?.to_string();
    let stage = field("stage")?.to_string();
    let kind = match field("kind")? {
        "panic" => FaultKind::Panic,
        "error" => FaultKind::Error,
        "delay_ms" => {
            let ms = v
                .get("delay_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| err("kind `delay_ms` needs an integer `delay_ms` field".into()))?;
            FaultKind::Delay(Duration::from_millis(ms))
        }
        other => return Err(err(format!("unknown kind `{other}`"))),
    };
    let attempts_below = match v.get("attempts_below") {
        None => 1,
        Some(n) => n
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| err("`attempts_below` must be a small non-negative integer".into()))?,
    };
    let probability = match v.get("probability") {
        None => 1.0,
        Some(p) => {
            let p = p
                .as_f64()
                .ok_or_else(|| err("`probability` must be a number".into()))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(err(format!("probability {p} outside [0, 1]")));
            }
            p
        }
    };
    Ok(FaultRule {
        design,
        stage,
        kind,
        attempts_below,
        probability,
    })
}

/// Canonical injection-point names inside the serving daemon (`congestd`),
/// so chaos plans, the server, and tests agree on spelling. Stage names in
/// a [`FaultPlan`] are free strings — these constants are the serve-side
/// vocabulary, the way `hls`/`route`/`backtrace`/`features` are the
/// dataset-side one.
pub mod serve_stages {
    /// Request admission: queue push, framing, request decode.
    pub const ADMISSION: &str = "serve.admission";
    /// On-the-fly feature extraction for `Source` requests.
    pub const EXTRACT: &str = "serve.extract";
    /// Batched ensemble inference (`predict_into`).
    pub const PREDICT: &str = "serve.predict";
    /// Model-registry hot-swap (load, validate, commit).
    pub const SWAP: &str = "serve.swap";
    /// Every serve-side injection point, in lifecycle order.
    pub const ALL: &[&str] = &[ADMISSION, EXTRACT, PREDICT, SWAP];
}

/// FNV-1a over an arbitrary byte stream — the only "randomness" in
/// faultkit, and a convenient stable digest for callers keying
/// checkpoints or deriving jitter.
pub fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash differently.
        h ^= 0xff;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic uniform draw in `[0, 1)` for a probabilistic rule.
fn roll(seed: u64, design: &str, stage: &str, attempt: u32) -> f64 {
    let h = fnv1a(&[
        &seed.to_le_bytes(),
        design.as_bytes(),
        stage.as_bytes(),
        &attempt.to_le_bytes(),
    ]);
    // 53 high bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_matching_rule_wins_and_wildcards_match() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::once("d0", "hls", FaultKind::Error))
            .with_rule(FaultRule::once("*", "hls", FaultKind::Panic));
        assert_eq!(
            plan.fault_for("d0", "hls", 0).unwrap().kind,
            FaultKind::Error
        );
        assert_eq!(
            plan.fault_for("d9", "hls", 0).unwrap().kind,
            FaultKind::Panic
        );
        assert!(plan.fault_for("d9", "route", 0).is_none());
        // attempts_below = 1 → silent from the second attempt on.
        assert!(plan.fault_for("d0", "hls", 1).is_none());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(99).with_rule(FaultRule {
            probability: 0.5,
            ..FaultRule::once("*", "*", FaultKind::Panic)
        });
        for attempt in 0..32 {
            let a = plan.fault_for("design", "route", attempt).is_some();
            let b = plan.fault_for("design", "route", attempt).is_some();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn probability_roughly_respected() {
        let plan = FaultPlan::new(7).with_rule(FaultRule {
            probability: 0.25,
            attempts_below: u32::MAX,
            ..FaultRule::once("*", "*", FaultKind::Panic)
        });
        let fired = (0..4000)
            .filter(|&a| plan.fault_for("d", "s", a).is_some())
            .count();
        assert!((800..1200).contains(&fired), "fired {fired}/4000");
    }

    #[test]
    fn json_example_parses() {
        let plan = FaultPlan::from_json(
            r#"{"seed": 7, "rules": [
                {"design": "*", "stage": "route", "kind": "panic"},
                {"design": "d2", "stage": "hls", "kind": "delay_ms", "delay_ms": 800},
                {"design": "d3", "stage": "hls", "kind": "error", "attempts_below": 99, "probability": 0.75}
            ]}"#,
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules[1].kind,
            FaultKind::Delay(Duration::from_millis(800))
        );
        assert_eq!(plan.rules[2].attempts_below, 99);
        assert_eq!(plan.rules[2].probability, 0.75);
    }

    #[test]
    fn serve_stage_points_match_and_roundtrip() {
        let mut plan = FaultPlan::new(3);
        for (i, stage) in serve_stages::ALL.iter().enumerate() {
            plan.rules.push(FaultRule {
                attempts_below: i as u32 + 1,
                ..FaultRule::once("*", stage, FaultKind::Error)
            });
        }
        for stage in serve_stages::ALL {
            assert!(
                plan.fault_for("req-17", stage, 0).is_some(),
                "serve stage `{stage}` must be targetable"
            );
        }
        assert!(plan.fault_for("req-17", "serve.reply", 0).is_none());
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back, "serve-stage plans survive the JSON round-trip");
    }

    #[test]
    fn bad_plans_rejected_with_context() {
        for (text, needle) in [
            ("[]", "object"),                             // not an object
            (r#"{"rules": [{"design": "d"}]}"#, "stage"), // missing field
            (
                r#"{"rules": [{"design":"d","stage":"s","kind":"x"}]}"#,
                "unknown kind",
            ),
            (
                r#"{"rules": [{"design":"d","stage":"s","kind":"delay_ms"}]}"#,
                "delay_ms",
            ),
            (
                r#"{"rules": [{"design":"d","stage":"s","kind":"panic","probability":2}]}"#,
                "probability",
            ),
        ] {
            let e = FaultPlan::from_json(text).unwrap_err();
            assert!(e.0.contains(needle), "`{text}` → {e}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any plan survives a JSON round-trip bit-identically (delays are
        /// whole milliseconds, so `Duration` round-trips exactly).
        #[test]
        fn plan_roundtrips_through_json(
            seed in 0u64..1_000_000,
            n in 0usize..6,
            k in 0u32..3,
            ms in 1u64..5_000,
            attempts in 1u32..100,
            prob_pct in 0u32..101,
        ) {
            let kind = match k {
                0 => FaultKind::Panic,
                1 => FaultKind::Error,
                _ => FaultKind::Delay(Duration::from_millis(ms)),
            };
            let mut plan = FaultPlan::new(seed);
            for i in 0..n {
                plan.rules.push(FaultRule {
                    design: format!("design-{i}"),
                    stage: match i % 4 {
                        0 => "hls".into(),
                        1 => "*".into(),
                        2 => serve_stages::PREDICT.into(),
                        _ => serve_stages::ADMISSION.into(),
                    },
                    kind: kind.clone(),
                    attempts_below: attempts,
                    probability: f64::from(prob_pct) / 100.0,
                });
            }
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            prop_assert_eq!(plan, back);
        }
    }
}
