//! # faultkit
//!
//! Deterministic fault injection and stage supervision for the congestion
//! pipeline — the robustness substrate the dataset builder (and every
//! future scaling layer: sharding, remote workers, serving) runs on.
//!
//! Three pieces:
//!
//! * [`FaultPlan`] — a serializable chaos plan. Rules match
//!   `(design, stage, attempt)` and inject a panic, a typed transient
//!   error, or artificial latency. Every decision is a pure function of the
//!   plan seed and those three coordinates — no wall-clock, no global RNG —
//!   so chaos runs replay bit-identically from the plan file alone.
//! * [`inject`] / [`inject_abort`] — the injection points, compiled into
//!   `hls-synth` (stage `hls`), `fpga-fabric`'s router (stage `route`), and
//!   `congestion-core`'s back-trace/feature stages. No-ops (two loads) when
//!   no plan is armed.
//! * [`Supervisor`] — wraps each pipeline stage with `catch_unwind` panic
//!   isolation, bounded retries with deterministic exponential backoff, and
//!   per-stage attempt/time budgets, downgrading failures into per-design
//!   outcomes instead of aborting the batch.
//!
//! ```
//! use faultkit::{FaultKind, FaultPlan, FaultRule, Supervisor, SupervisorPolicy};
//! use std::sync::Arc;
//!
//! faultkit::silence_injected_panics();
//! // Panic at stage `route` of every design, first attempt only.
//! let plan = FaultPlan::new(7).with_rule(FaultRule::once("*", "route", FaultKind::Panic));
//! let sup = Supervisor::new(SupervisorPolicy::no_sleep(), Some(Arc::new(plan)), "my-design");
//! let run = sup.run_stage(
//!     "route",
//!     |_attempt| {
//!         faultkit::inject_abort("route"); // the instrumented stage body
//!         Ok::<_, String>("routed")
//!     },
//!     |_e| false,
//! );
//! assert_eq!(run.result.unwrap(), "routed"); // attempt 1 recovered it
//! assert_eq!(run.log.panics_caught(), 1);
//! ```

pub mod inject;
pub mod json;
pub mod plan;
pub mod supervisor;

pub use inject::{
    arm, inject, inject_abort, silence_injected_panics, InjectedFault, InjectedPanic,
};
pub use plan::{fnv1a, serve_stages, FaultKind, FaultPlan, FaultRule, PlanParseError};
pub use supervisor::{
    AttemptOutcome, AttemptRecord, StageFailure, StageLog, StageRun, Supervisor, SupervisorPolicy,
};
