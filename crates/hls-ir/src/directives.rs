//! HLS optimization directives.
//!
//! Directives are attached by `#pragma HLS …` lines in MiniHLS source, or
//! programmatically through [`Directives`]. They drive the IR transforms
//! (inline, unroll) and the synthesis flow (pipeline, array partition) — the
//! exact set the paper's Face Detection case study manipulates.

use std::collections::HashMap;
use std::fmt;

/// Array partitioning scheme (`#pragma HLS array_partition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partition {
    /// No partitioning: one memory, limited ports.
    #[default]
    None,
    /// `factor` banks, element `i` in bank `i % factor`.
    Cyclic(u32),
    /// `factor` banks, element `i` in bank `i / ceil(len/factor)`.
    Block(u32),
    /// Every element its own register (fully partitioned).
    Complete,
}

impl Partition {
    /// Number of independently addressable banks for an array of `len`
    /// elements.
    pub fn banks(&self, len: u32) -> u32 {
        match *self {
            Partition::None => 1,
            Partition::Cyclic(f) | Partition::Block(f) => f.max(1).min(len.max(1)),
            Partition::Complete => len.max(1),
        }
    }

    /// Bank index holding element `idx` of an array of `len` elements.
    pub fn bank_of(&self, idx: u32, len: u32) -> u32 {
        match *self {
            Partition::None => 0,
            Partition::Cyclic(f) => idx % f.max(1),
            Partition::Block(f) => {
                let f = f.max(1);
                let per = len.div_ceil(f);
                (idx / per.max(1)).min(f - 1)
            }
            Partition::Complete => idx,
        }
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partition::None => write!(f, "none"),
            Partition::Cyclic(n) => write!(f, "cyclic factor={n}"),
            Partition::Block(n) => write!(f, "block factor={n}"),
            Partition::Complete => write!(f, "complete"),
        }
    }
}

/// Per-loop directive state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopDirectives {
    /// Unroll factor (`0`/`1` = rolled, `u32::MAX` = full unroll).
    pub unroll: u32,
    /// Pipeline initiation interval (None = not pipelined).
    pub pipeline_ii: Option<u32>,
}

/// Full unroll marker value.
pub const FULL_UNROLL: u32 = u32::MAX;

/// Directive configuration for a whole design.
///
/// Keys are syntactic: function names for inlining, `"func/loopN"` labels for
/// loops, `"func/array"` for partitioning. The MiniHLS pragma parser fills
/// this in; callers may also construct one programmatically to explore the
/// design space (the paper's case study flips these settings).
///
/// ```
/// use hls_ir::directives::Directives;
/// let mut d = Directives::new();
/// d.set_inline("classifier", true);
/// d.set_unroll("top/loop0", 8);
/// assert!(d.inline("classifier"));
/// assert_eq!(d.loop_directives("top/loop0").unroll, 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Directives {
    inline: HashMap<String, bool>,
    loops: HashMap<String, LoopDirectives>,
    partitions: HashMap<String, Partition>,
}

impl Directives {
    /// An empty directive set (no optimizations applied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request (or forbid, with `on = false`) inlining of `func`.
    pub fn set_inline(&mut self, func: &str, on: bool) {
        self.inline.insert(func.to_string(), on);
    }

    /// Whether `func` should be inlined (default: false).
    pub fn inline(&self, func: &str) -> bool {
        self.inline.get(func).copied().unwrap_or(false)
    }

    /// The explicit inline setting for `func`, if one was given. Lets
    /// overlays distinguish "inline off" from "not mentioned".
    pub fn inline_opt(&self, func: &str) -> Option<bool> {
        self.inline.get(func).copied()
    }

    /// Set the unroll factor of the loop labelled `label`.
    pub fn set_unroll(&mut self, label: &str, factor: u32) {
        self.loops.entry(label.to_string()).or_default().unroll = factor;
    }

    /// Request full unrolling of the loop labelled `label`.
    pub fn set_full_unroll(&mut self, label: &str) {
        self.set_unroll(label, FULL_UNROLL);
    }

    /// Set a pipeline II on the loop labelled `label`.
    pub fn set_pipeline(&mut self, label: &str, ii: u32) {
        self.loops.entry(label.to_string()).or_default().pipeline_ii = Some(ii.max(1));
    }

    /// The directive state of the loop labelled `label`.
    pub fn loop_directives(&self, label: &str) -> LoopDirectives {
        self.loops.get(label).copied().unwrap_or_default()
    }

    /// Set the partition scheme of `func/array`.
    pub fn set_partition(&mut self, array_key: &str, p: Partition) {
        self.partitions.insert(array_key.to_string(), p);
    }

    /// The partition scheme of `func/array` (default: [`Partition::None`]).
    pub fn partition(&self, array_key: &str) -> Partition {
        self.partitions.get(array_key).copied().unwrap_or_default()
    }

    /// Merge another directive set into this one (other wins on conflict).
    pub fn merge(&mut self, other: &Directives) {
        for (k, v) in &other.inline {
            self.inline.insert(k.clone(), *v);
        }
        for (k, v) in &other.loops {
            self.loops.insert(k.clone(), *v);
        }
        for (k, v) in &other.partitions {
            self.partitions.insert(k.clone(), *v);
        }
    }

    /// Iterate over all inline directives.
    pub fn inline_entries(&self) -> impl Iterator<Item = (&str, bool)> {
        self.inline.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True if no directive was set at all.
    pub fn is_empty(&self) -> bool {
        self.inline.is_empty() && self.loops.is_empty() && self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_bank_counts() {
        assert_eq!(Partition::None.banks(64), 1);
        assert_eq!(Partition::Cyclic(4).banks(64), 4);
        assert_eq!(Partition::Block(4).banks(64), 4);
        assert_eq!(Partition::Complete.banks(64), 64);
        // factor larger than length clamps
        assert_eq!(Partition::Cyclic(100).banks(8), 8);
    }

    #[test]
    fn cyclic_bank_mapping() {
        let p = Partition::Cyclic(4);
        assert_eq!(p.bank_of(0, 16), 0);
        assert_eq!(p.bank_of(5, 16), 1);
        assert_eq!(p.bank_of(7, 16), 3);
    }

    #[test]
    fn block_bank_mapping() {
        let p = Partition::Block(4);
        assert_eq!(p.bank_of(0, 16), 0);
        assert_eq!(p.bank_of(3, 16), 0);
        assert_eq!(p.bank_of(4, 16), 1);
        assert_eq!(p.bank_of(15, 16), 3);
    }

    #[test]
    fn directive_defaults() {
        let d = Directives::new();
        assert!(!d.inline("f"));
        assert_eq!(d.loop_directives("f/loop0").unroll, 0);
        assert_eq!(d.partition("f/a"), Partition::None);
        assert!(d.is_empty());
    }

    #[test]
    fn merge_overrides() {
        let mut a = Directives::new();
        a.set_inline("f", true);
        a.set_unroll("f/loop0", 2);
        let mut b = Directives::new();
        b.set_inline("f", false);
        b.set_pipeline("f/loop0", 1);
        a.merge(&b);
        assert!(!a.inline("f"));
        // merge replaces the whole loop entry
        assert_eq!(a.loop_directives("f/loop0").pipeline_ii, Some(1));
    }
}
