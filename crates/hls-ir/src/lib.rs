//! # hls-ir
//!
//! Intermediate representation for a small high-level-synthesis (HLS) flow,
//! together with the **MiniHLS** C-like frontend and the directive-driven IR
//! transforms (function inlining, loop unrolling, dead-code elimination,
//! constant folding).
//!
//! This crate is the substrate that stands in for the Vivado HLS front-end in
//! the reproduction of *Zhao et al., "Machine Learning Based Routing
//! Congestion Prediction in FPGA High-Level Synthesis" (DATE 2019)*. The
//! congestion-prediction pipeline starts from this IR: every operation knows
//! its bitwidth, operands (with the number of wires actually consumed), and
//! its source location, which is what lets predicted congestion be mapped
//! back to lines of source code.
//!
//! ## Quick tour
//!
//! ```
//! use hls_ir::frontend::compile;
//!
//! let src = r#"
//!     int32 dot(int32 a[8], int32 b[8]) {
//!         int32 acc = 0;
//!         #pragma HLS unroll factor=8
//!         for (i = 0; i < 8; i++) {
//!             acc = acc + a[i] * b[i];
//!         }
//!         return acc;
//!     }
//! "#;
//! let module = compile(src)?;
//! let top = module.top_function();
//! assert_eq!(top.name, "dot");
//! assert!(top.ops.len() > 8); // unrolled multiply-accumulate chain
//! # Ok::<(), hls_ir::frontend::CompileError>(())
//! ```

pub mod builder;
pub mod directives;
pub mod frontend;
pub mod function;
pub mod interp;
pub mod module;
pub mod op;
pub mod printer;
pub mod source;
pub mod transform;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use directives::{Directives, Partition};
pub use function::{ArrayDecl, ArrayId, FuncId, Function, Param, ParamKind, Region};
pub use module::Module;
pub use op::{OpId, OpKind, Operand, Operation, ReplicaTag};
pub use source::{SourceLoc, SourceSpan};
pub use types::IrType;
