//! Scalar value types carried by IR operations.

use std::fmt;

/// A fixed-width integer type, signed or unsigned, 1–64 bits.
///
/// MiniHLS (like HLS C with `ap_int`/`ap_uint`) supports arbitrary-precision
/// integers; the bitwidth of every operation is the single most basic feature
/// of the congestion model (paper Table II, category *Bitwidth*).
///
/// ```
/// use hls_ir::IrType;
/// let t = IrType::int(18);
/// assert_eq!(t.bits(), 18);
/// assert!(t.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrType {
    signed: bool,
    bits: u16,
}

/// Maximum supported bitwidth.
pub const MAX_BITS: u16 = 64;

impl IrType {
    /// A signed integer type with `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than [`MAX_BITS`].
    pub fn int(bits: u16) -> Self {
        assert!(
            (1..=MAX_BITS).contains(&bits),
            "bitwidth {bits} out of range"
        );
        IrType { signed: true, bits }
    }

    /// An unsigned integer type with `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than [`MAX_BITS`].
    pub fn uint(bits: u16) -> Self {
        assert!(
            (1..=MAX_BITS).contains(&bits),
            "bitwidth {bits} out of range"
        );
        IrType {
            signed: false,
            bits,
        }
    }

    /// The 1-bit unsigned type used for comparison results and predicates.
    pub fn bool() -> Self {
        IrType::uint(1)
    }

    /// Number of bits.
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Whether the type is signed.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// A copy of this type with a different bitwidth (clamped to
    /// `1..=MAX_BITS`).
    pub fn with_bits(&self, bits: u16) -> Self {
        IrType {
            signed: self.signed,
            bits: bits.clamp(1, MAX_BITS),
        }
    }

    /// The type resulting from an addition/subtraction of two values:
    /// one bit wider than the widest operand (carry), saturating at
    /// [`MAX_BITS`]; signed if either operand is signed.
    pub fn add_result(a: IrType, b: IrType) -> IrType {
        IrType {
            signed: a.signed || b.signed,
            bits: (a.bits.max(b.bits) + 1).min(MAX_BITS),
        }
    }

    /// The type resulting from a multiplication: sum of operand widths,
    /// saturating at [`MAX_BITS`].
    pub fn mul_result(a: IrType, b: IrType) -> IrType {
        IrType {
            signed: a.signed || b.signed,
            bits: (a.bits + b.bits).min(MAX_BITS),
        }
    }

    /// The common (widest) type of two operands for bitwise/compare ops.
    pub fn join(a: IrType, b: IrType) -> IrType {
        IrType {
            signed: a.signed || b.signed,
            bits: a.bits.max(b.bits),
        }
    }

    /// The smallest unsigned type able to hold values `0..=max`.
    ///
    /// This is the bitwidth-reduction rule the frontend applies to loop
    /// counters (the paper notes the HLS front-end performs bitwidth
    /// reduction that "directly influences the data flow of generated RTL").
    pub fn for_range(max: u64) -> IrType {
        let bits = (64 - max.leading_zeros()).max(1) as u16;
        IrType::uint(bits)
    }

    /// Smallest signed type able to hold the constant `v`.
    pub fn for_const(v: i64) -> IrType {
        if v >= 0 {
            let mag = (64 - (v as u64).leading_zeros()).max(1) as u16;
            IrType::int((mag + 1).min(MAX_BITS))
        } else {
            let mag = 64 - ((-(v + 1)) as u64).leading_zeros();
            IrType::int((mag as u16 + 1).clamp(1, MAX_BITS))
        }
    }
}

impl Default for IrType {
    fn default() -> Self {
        IrType::int(32)
    }
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signed {
            write!(f, "int{}", self.bits)
        } else {
            write!(f, "uint{}", self.bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_signedness() {
        assert_eq!(IrType::int(32).bits(), 32);
        assert!(IrType::int(8).is_signed());
        assert!(!IrType::uint(8).is_signed());
        assert_eq!(IrType::bool(), IrType::uint(1));
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        IrType::int(0);
    }

    #[test]
    #[should_panic]
    fn oversize_width_rejected() {
        IrType::uint(65);
    }

    #[test]
    fn add_result_grows_one_bit() {
        let r = IrType::add_result(IrType::int(8), IrType::uint(12));
        assert_eq!(r.bits(), 13);
        assert!(r.is_signed());
    }

    #[test]
    fn mul_result_sums_widths() {
        let r = IrType::mul_result(IrType::uint(8), IrType::uint(8));
        assert_eq!(r.bits(), 16);
        assert!(!r.is_signed());
    }

    #[test]
    fn mul_result_saturates() {
        let r = IrType::mul_result(IrType::int(40), IrType::int(40));
        assert_eq!(r.bits(), MAX_BITS);
    }

    #[test]
    fn range_narrowing() {
        assert_eq!(IrType::for_range(0).bits(), 1);
        assert_eq!(IrType::for_range(1).bits(), 1);
        assert_eq!(IrType::for_range(7).bits(), 3);
        assert_eq!(IrType::for_range(8).bits(), 4);
        assert_eq!(IrType::for_range(624).bits(), 10);
    }

    #[test]
    fn const_typing() {
        assert_eq!(IrType::for_const(0).bits(), 2);
        assert_eq!(IrType::for_const(127).bits(), 8);
        assert_eq!(IrType::for_const(-128).bits(), 8);
        // -1 fits in a single signed bit ({-1, 0}).
        assert_eq!(IrType::for_const(-1).bits(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(IrType::int(24).to_string(), "int24");
        assert_eq!(IrType::uint(1).to_string(), "uint1");
    }
}
