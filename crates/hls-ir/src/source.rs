//! Source locations for mapping IR operations (and therefore predicted
//! congestion) back to lines of MiniHLS source code.

use std::fmt;

/// A 1-based line/column position in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SourceLoc {
    /// 1-based line number (0 = unknown).
    pub line: u32,
    /// 1-based column number (0 = unknown).
    pub col: u32,
}

impl SourceLoc {
    /// A location at `line:col`.
    pub fn new(line: u32, col: u32) -> Self {
        SourceLoc { line, col }
    }

    /// Whether the location carries real information.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An inclusive span of source lines (used by the congested-region report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SourceSpan {
    /// First line of the span.
    pub start: SourceLoc,
    /// Last line of the span.
    pub end: SourceLoc,
}

impl SourceSpan {
    /// A span covering exactly one location.
    pub fn point(loc: SourceLoc) -> Self {
        SourceSpan {
            start: loc,
            end: loc,
        }
    }

    /// Extend this span to cover `loc`.
    pub fn extend(&mut self, loc: SourceLoc) {
        if !loc.is_known() {
            return;
        }
        if !self.start.is_known() || loc < self.start {
            self.start = loc;
        }
        if loc > self.end {
            self.end = loc;
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start.line == self.end.line {
            write!(f, "line {}", self.start.line)
        } else {
            write!(f, "lines {}-{}", self.start.line, self.end.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_location() {
        assert!(!SourceLoc::default().is_known());
        assert!(SourceLoc::new(3, 1).is_known());
    }

    #[test]
    fn span_extension() {
        let mut s = SourceSpan::point(SourceLoc::new(5, 1));
        s.extend(SourceLoc::new(2, 4));
        s.extend(SourceLoc::new(9, 1));
        s.extend(SourceLoc::default()); // ignored
        assert_eq!(s.start.line, 2);
        assert_eq!(s.end.line, 9);
        assert_eq!(s.to_string(), "lines 2-9");
    }

    #[test]
    fn single_line_display() {
        let s = SourceSpan::point(SourceLoc::new(7, 3));
        assert_eq!(s.to_string(), "line 7");
    }
}
