//! Functions, structured regions, arrays and parameters.

use crate::directives::Partition;
use crate::op::{OpId, OpKind, Operand, Operation};
use crate::types::IrType;
use std::collections::HashMap;
use std::fmt;

/// Index of a function inside a [`Module`](crate::module::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an array declared in (or passed to) a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a parameter is passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Scalar input (becomes a `Read` port op).
    Scalar,
    /// Array interface (becomes an [`ArrayDecl`] backed by interface memory).
    Array {
        /// The array this parameter is bound to.
        array: ArrayId,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element (or scalar) type.
    pub ty: IrType,
    /// Scalar or array.
    pub kind: ParamKind,
}

/// An array (local or interface memory).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Arena id.
    pub id: ArrayId,
    /// Array name.
    pub name: String,
    /// Element type.
    pub elem: IrType,
    /// Number of elements.
    pub len: u32,
    /// Partition scheme (filled from directives).
    pub partition: Partition,
    /// Whether this array is a function parameter (interface memory).
    pub is_param: bool,
}

impl ArrayDecl {
    /// Total number of data bits stored in this array.
    pub fn total_bits(&self) -> u64 {
        self.elem.bits() as u64 * self.len as u64
    }

    /// Number of banks after partitioning.
    pub fn banks(&self) -> u32 {
        self.partition.banks(self.len)
    }
}

/// Structured control: straight-line blocks, sequences, and counted loops.
///
/// MiniHLS lowers `if` statements to predication (`Select` ops), so the only
/// control structure surviving into the IR is the counted loop. Unrolled
/// loops are flattened by the [`unroll`](crate::transform::unroll) transform;
/// rolled loops stay as `Loop` regions and are scheduled once, with latency
/// multiplied by the trip count.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A straight-line sequence of operations.
    Block(Vec<OpId>),
    /// A sequence of sub-regions.
    Seq(Vec<Region>),
    /// A counted loop.
    Loop {
        /// Stable label, e.g. `"top/loop2"` — the directive key.
        label: String,
        /// Loop body.
        body: Box<Region>,
        /// Number of iterations executed at runtime.
        trip_count: u64,
        /// Pipeline initiation interval (from directives).
        pipeline_ii: Option<u32>,
    },
}

impl Region {
    /// An empty block.
    pub fn empty() -> Region {
        Region::Block(Vec::new())
    }

    /// Visit every `OpId` in program order.
    pub fn for_each_op(&self, f: &mut impl FnMut(OpId)) {
        match self {
            Region::Block(ops) => ops.iter().copied().for_each(f),
            Region::Seq(rs) => rs.iter().for_each(|r| r.for_each_op(f)),
            Region::Loop { body, .. } => body.for_each_op(f),
        }
    }

    /// All op ids in program order.
    pub fn ops_in_order(&self) -> Vec<OpId> {
        let mut v = Vec::new();
        self.for_each_op(&mut |id| v.push(id));
        v
    }

    /// Number of loops (at any depth) in this region.
    pub fn loop_count(&self) -> usize {
        match self {
            Region::Block(_) => 0,
            Region::Seq(rs) => rs.iter().map(Region::loop_count).sum(),
            Region::Loop { body, .. } => 1 + body.loop_count(),
        }
    }
}

/// A function: an op arena plus a structured body region.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Arena id within the module.
    pub id: FuncId,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (None = void).
    pub ret: Option<IrType>,
    /// Operation arena; `OpId(i)` indexes `ops[i]`.
    pub ops: Vec<Operation>,
    /// Structured body.
    pub body: Region,
    /// Arrays (locals and interface memories).
    pub arrays: Vec<ArrayDecl>,
    /// Whether this function is marked for inlining.
    pub inline: bool,
}

impl Function {
    /// An empty function shell.
    pub fn new(id: FuncId, name: impl Into<String>) -> Self {
        Function {
            id,
            name: name.into(),
            params: Vec::new(),
            ret: None,
            ops: Vec::new(),
            body: Region::empty(),
            arrays: Vec::new(),
            inline: false,
        }
    }

    /// The operation with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Mutable access to the operation with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.index()]
    }

    /// The array with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Look up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Append an operation to the arena, returning its id. The caller is
    /// responsible for placing the id into the body region.
    pub fn push_op(&mut self, mut op: Operation) -> OpId {
        let id = OpId(self.ops.len() as u32);
        op.id = id;
        self.ops.push(op);
        id
    }

    /// Data successors of every op: `users[i]` lists ops consuming `OpId(i)`.
    pub fn users(&self) -> Vec<Vec<OpId>> {
        let mut users = vec![Vec::new(); self.ops.len()];
        for op in &self.ops {
            for operand in &op.operands {
                users[operand.src.index()].push(op.id);
            }
        }
        users
    }

    /// Memory-ordering dependencies: for each array, a `Store` must follow
    /// every earlier access, and a `Load` must follow the latest earlier
    /// `Store` (program order given by the body region).
    pub fn memory_deps(&self) -> Vec<(OpId, OpId)> {
        let mut deps = Vec::new();
        let mut last_store: HashMap<ArrayId, OpId> = HashMap::new();
        let mut accesses_since_store: HashMap<ArrayId, Vec<OpId>> = HashMap::new();
        for id in self.body.ops_in_order() {
            let op = self.op(id);
            let Some(arr) = op.array else { continue };
            match op.kind {
                OpKind::Load => {
                    if let Some(&s) = last_store.get(&arr) {
                        deps.push((s, id));
                    }
                    accesses_since_store.entry(arr).or_default().push(id);
                }
                OpKind::Store => {
                    if let Some(prev) = accesses_since_store.remove(&arr) {
                        for p in prev {
                            deps.push((p, id));
                        }
                    } else if let Some(&s) = last_store.get(&arr) {
                        deps.push((s, id));
                    }
                    last_store.insert(arr, id);
                }
                _ => {}
            }
        }
        deps
    }

    /// Count of operations of each kind.
    pub fn kind_histogram(&self) -> [u32; OpKind::COUNT] {
        let mut h = [0u32; OpKind::COUNT];
        for op in &self.ops {
            h[op.kind.index()] += 1;
        }
        h
    }

    /// Ids of all `Call` operations.
    pub fn call_sites(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Call)
            .map(|o| o.id)
            .collect()
    }

    /// Convenience: add an operand edge `src -> dst` consuming `width` wires.
    pub fn add_operand(&mut self, dst: OpId, src: OpId, width: u16) {
        self.ops[dst.index()]
            .operands
            .push(Operand::new(src, width));
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fn {}({} params, {} ops)",
            self.name,
            self.params.len(),
            self.ops.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Operation};

    fn op(f: &mut Function, kind: OpKind) -> OpId {
        f.push_op(Operation::new(OpId(0), kind, IrType::int(32)))
    }

    #[test]
    fn push_op_assigns_sequential_ids() {
        let mut f = Function::new(FuncId(0), "t");
        let a = op(&mut f, OpKind::Const);
        let b = op(&mut f, OpKind::Const);
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(f.op(b).kind, OpKind::Const);
    }

    #[test]
    fn users_reflect_operands() {
        let mut f = Function::new(FuncId(0), "t");
        let a = op(&mut f, OpKind::Const);
        let b = op(&mut f, OpKind::Const);
        let c = op(&mut f, OpKind::Add);
        f.add_operand(c, a, 32);
        f.add_operand(c, b, 32);
        let users = f.users();
        assert_eq!(users[a.index()], vec![c]);
        assert_eq!(users[b.index()], vec![c]);
        assert!(users[c.index()].is_empty());
    }

    #[test]
    fn memory_deps_serialize_stores() {
        let mut f = Function::new(FuncId(0), "t");
        let arr = ArrayId(0);
        f.arrays.push(ArrayDecl {
            id: arr,
            name: "a".into(),
            elem: IrType::int(32),
            len: 4,
            partition: Partition::None,
            is_param: false,
        });
        let ld = op(&mut f, OpKind::Load);
        f.op_mut(ld).array = Some(arr);
        let st = op(&mut f, OpKind::Store);
        f.op_mut(st).array = Some(arr);
        let ld2 = op(&mut f, OpKind::Load);
        f.op_mut(ld2).array = Some(arr);
        f.body = Region::Block(vec![ld, st, ld2]);
        let deps = f.memory_deps();
        assert!(deps.contains(&(ld, st)), "store waits for earlier load");
        assert!(deps.contains(&(st, ld2)), "load waits for earlier store");
    }

    #[test]
    fn region_op_order_traverses_loops() {
        let r = Region::Seq(vec![
            Region::Block(vec![OpId(0)]),
            Region::Loop {
                label: "t/loop0".into(),
                body: Box::new(Region::Block(vec![OpId(1), OpId(2)])),
                trip_count: 4,
                pipeline_ii: None,
            },
            Region::Block(vec![OpId(3)]),
        ]);
        assert_eq!(r.ops_in_order(), vec![OpId(0), OpId(1), OpId(2), OpId(3)]);
        assert_eq!(r.loop_count(), 1);
    }

    #[test]
    fn kind_histogram_counts() {
        let mut f = Function::new(FuncId(0), "t");
        op(&mut f, OpKind::Add);
        op(&mut f, OpKind::Add);
        op(&mut f, OpKind::Mul);
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Add.index()], 2);
        assert_eq!(h[OpKind::Mul.index()], 1);
    }
}
