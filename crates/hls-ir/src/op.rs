//! IR operations.
//!
//! The operation kind enumeration is deliberately fixed at **41 kinds**: it
//! is the one-hot basis of the *operator type* feature category, whose size
//! (41 one-hot + 41 neighbor histogram + 1 distinct-kind count = 83) makes
//! the full feature vector add up to the paper's 302 features.

use crate::function::{ArrayId, FuncId};
use crate::source::SourceLoc;
use crate::types::IrType;
use std::fmt;

/// Index of an [`Operation`] inside its owning function's op arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// The kind of an IR operation. Exactly [`OpKind::COUNT`] (= 41) kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum OpKind {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed division.
    SDiv,
    /// Unsigned division.
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not.
    Not,
    /// Integer comparison (predicate stored in [`Operation::imm`]).
    ICmp,
    /// Floating add (kept for feature-space parity; MiniHLS maps none today).
    FAdd,
    /// Floating subtract.
    FSub,
    /// Floating multiply.
    FMul,
    /// Floating divide.
    FDiv,
    /// Floating compare.
    FCmp,
    /// Two-way select (`cond ? a : b`).
    Select,
    /// SSA merge / loop-carried value.
    Phi,
    /// Explicit multiplexer (inserted by binding/memory lowering).
    Mux,
    /// Memory load from an array.
    Load,
    /// Memory store to an array.
    Store,
    /// Scalar input-port read.
    Read,
    /// Scalar output-port write.
    Write,
    /// Address computation for an array access.
    GetElementPtr,
    /// Zero extension.
    ZExt,
    /// Sign extension.
    SExt,
    /// Truncation.
    Trunc,
    /// Bit concatenation.
    BitConcat,
    /// Bit-range selection.
    BitSelect,
    /// Integer constant (value in [`Operation::imm`]).
    Const,
    /// Call to a non-inlined function.
    Call,
    /// Function return.
    Return,
    /// Conditional branch weight marker (predication residue).
    Branch,
    /// Multi-way dispatch.
    Switch,
    /// Local array allocation marker.
    Alloca,
    /// I/O port node (added to the dependency graph for interface nets).
    Port,
    /// Integer square root (appears in distance kernels).
    Sqrt,
}

impl OpKind {
    /// Number of operation kinds.
    pub const COUNT: usize = 41;

    /// All kinds in enumeration order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::SDiv,
        OpKind::UDiv,
        OpKind::SRem,
        OpKind::URem,
        OpKind::Shl,
        OpKind::LShr,
        OpKind::AShr,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::ICmp,
        OpKind::FAdd,
        OpKind::FSub,
        OpKind::FMul,
        OpKind::FDiv,
        OpKind::FCmp,
        OpKind::Select,
        OpKind::Phi,
        OpKind::Mux,
        OpKind::Load,
        OpKind::Store,
        OpKind::Read,
        OpKind::Write,
        OpKind::GetElementPtr,
        OpKind::ZExt,
        OpKind::SExt,
        OpKind::Trunc,
        OpKind::BitConcat,
        OpKind::BitSelect,
        OpKind::Const,
        OpKind::Call,
        OpKind::Return,
        OpKind::Branch,
        OpKind::Switch,
        OpKind::Alloca,
        OpKind::Port,
        OpKind::Sqrt,
    ];

    /// Stable dense index of this kind in `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::SDiv => "sdiv",
            OpKind::UDiv => "udiv",
            OpKind::SRem => "srem",
            OpKind::URem => "urem",
            OpKind::Shl => "shl",
            OpKind::LShr => "lshr",
            OpKind::AShr => "ashr",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::ICmp => "icmp",
            OpKind::FAdd => "fadd",
            OpKind::FSub => "fsub",
            OpKind::FMul => "fmul",
            OpKind::FDiv => "fdiv",
            OpKind::FCmp => "fcmp",
            OpKind::Select => "select",
            OpKind::Phi => "phi",
            OpKind::Mux => "mux",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::GetElementPtr => "gep",
            OpKind::ZExt => "zext",
            OpKind::SExt => "sext",
            OpKind::Trunc => "trunc",
            OpKind::BitConcat => "concat",
            OpKind::BitSelect => "bitsel",
            OpKind::Const => "const",
            OpKind::Call => "call",
            OpKind::Return => "ret",
            OpKind::Branch => "br",
            OpKind::Switch => "switch",
            OpKind::Alloca => "alloca",
            OpKind::Port => "port",
            OpKind::Sqrt => "sqrt",
        }
    }

    /// Whether the op has a value result that other ops can consume.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            OpKind::Store | OpKind::Write | OpKind::Return | OpKind::Branch | OpKind::Switch
        )
    }

    /// Whether the op touches a memory (array) and therefore participates in
    /// memory-ordering dependencies.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates, encoded into [`Operation::imm`] for
/// [`OpKind::ICmp`] ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i64)]
pub enum CmpPred {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less than.
    Lt = 2,
    /// Signed less or equal.
    Le = 3,
    /// Signed greater than.
    Gt = 4,
    /// Signed greater or equal.
    Ge = 5,
}

impl CmpPred {
    /// Decode from an `imm` payload.
    pub fn from_imm(v: i64) -> Option<CmpPred> {
        Some(match v {
            0 => CmpPred::Eq,
            1 => CmpPred::Ne,
            2 => CmpPred::Lt,
            3 => CmpPred::Le,
            4 => CmpPred::Gt,
            5 => CmpPred::Ge,
            _ => return None,
        })
    }

    /// Evaluate the predicate on two signed values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }
}

/// A use of another operation's result.
///
/// `width` is the number of wires this connection actually carries: a
/// consumer that only needs 8 of a 32-bit producer contributes an edge of
/// weight 8 to the dependency graph (paper §III-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// Producing operation.
    pub src: OpId,
    /// Number of wires consumed from the producer.
    pub width: u16,
}

impl Operand {
    /// An operand consuming `width` wires of `src`.
    pub fn new(src: OpId, width: u16) -> Self {
        Operand { src, width }
    }
}

/// Provenance of an operation created by loop unrolling.
///
/// The sample filter (paper §III-C1) groups replicas of the same original
/// operation by `group` and removes outliers ("marginal operations") within
/// a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaTag {
    /// Identifier of the unrolled source operation (unique per function).
    pub group: u32,
    /// Which copy this is, `0..total`.
    pub index: u32,
    /// Total number of copies generated.
    pub total: u32,
}

/// A single IR operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Arena id (index into `Function::ops`).
    pub id: OpId,
    /// Operation kind.
    pub kind: OpKind,
    /// Result type (meaningless for kinds without result).
    pub ty: IrType,
    /// Data operands (wire-accurate widths).
    pub operands: Vec<Operand>,
    /// Debug name (variable name where available).
    pub name: String,
    /// Source location this op was lowered from.
    pub loc: Option<SourceLoc>,
    /// Unroll provenance, if this op is a loop-unroll replica.
    pub replica: Option<ReplicaTag>,
    /// Referenced array for `Load`/`Store`/`Alloca`/`GetElementPtr`.
    pub array: Option<ArrayId>,
    /// Immediate payload: constant value (`Const`), predicate (`ICmp`),
    /// port index (`Read`/`Write`/`Port`).
    pub imm: Option<i64>,
    /// Callee for `Call` ops.
    pub callee: Option<FuncId>,
    /// Arrays passed by reference to a `Call` (in callee parameter order).
    pub array_args: Vec<ArrayId>,
}

impl Operation {
    /// A new operation; normally created through
    /// [`FunctionBuilder`](crate::builder::FunctionBuilder).
    pub fn new(id: OpId, kind: OpKind, ty: IrType) -> Self {
        Operation {
            id,
            kind,
            ty,
            operands: Vec::new(),
            name: String::new(),
            loc: None,
            replica: None,
            array: None,
            imm: None,
            callee: None,
            array_args: Vec::new(),
        }
    }

    /// Result bitwidth.
    pub fn bits(&self) -> u16 {
        self.ty.bits()
    }

    /// Total fan-in wires (sum of operand widths).
    pub fn fan_in(&self) -> u32 {
        self.operands.iter().map(|o| o.width as u32).sum()
    }

    /// The constant value, if this is a `Const` op.
    pub fn const_value(&self) -> Option<i64> {
        if self.kind == OpKind::Const {
            self.imm
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_count_is_41() {
        assert_eq!(OpKind::COUNT, 41);
        assert_eq!(OpKind::ALL.len(), 41);
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in OpKind::ALL {
            assert!(seen.insert(k.mnemonic()), "duplicate mnemonic {}", k);
        }
    }

    #[test]
    fn result_classification() {
        assert!(OpKind::Add.has_result());
        assert!(OpKind::Load.has_result());
        assert!(!OpKind::Store.has_result());
        assert!(!OpKind::Return.has_result());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::Read.is_memory());
    }

    #[test]
    fn fan_in_sums_operand_widths() {
        let mut op = Operation::new(OpId(0), OpKind::Add, IrType::int(16));
        op.operands.push(Operand::new(OpId(1), 8));
        op.operands.push(Operand::new(OpId(2), 16));
        assert_eq!(op.fan_in(), 24);
    }

    #[test]
    fn cmp_pred_roundtrip() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(CmpPred::from_imm(p as i64), Some(p));
        }
        assert_eq!(CmpPred::from_imm(99), None);
    }

    #[test]
    fn cmp_pred_eval() {
        assert!(CmpPred::Lt.eval(-1, 0));
        assert!(CmpPred::Ge.eval(5, 5));
        assert!(!CmpPred::Eq.eval(1, 2));
    }
}
