//! `#pragma HLS …` parsing.

use super::{CompileError, Stage};
use crate::directives::Partition;

/// A parsed HLS pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `#pragma HLS inline` / `#pragma HLS inline off`
    Inline {
        /// `true` for `inline off`.
        off: bool,
    },
    /// `#pragma HLS unroll [factor=N]` (no factor = full unroll)
    Unroll {
        /// Explicit factor, if any.
        factor: Option<u32>,
    },
    /// `#pragma HLS pipeline [II=N]`
    Pipeline {
        /// Initiation interval (default 1).
        ii: u32,
    },
    /// `#pragma HLS array_partition variable=x [cyclic|block|complete] [factor=N]`
    ArrayPartition {
        /// Array name.
        variable: String,
        /// Partition scheme.
        scheme: Partition,
    },
}

/// Parse the raw text after `#pragma` (e.g. `HLS unroll factor=4`).
///
/// # Errors
/// Returns a [`CompileError`] for unknown pragma kinds or malformed
/// arguments. Non-HLS pragmas are ignored (returns `Ok(None)`).
pub fn parse_pragma(raw: &str, line: u32) -> Result<Option<Pragma>, CompileError> {
    let err = |msg: String| CompileError::new(Stage::Parse, line, msg);
    let mut words = raw.split_whitespace();
    match words.next() {
        Some(w) if w.eq_ignore_ascii_case("hls") => {}
        _ => return Ok(None), // not an HLS pragma; ignore
    }
    let Some(kind) = words.next() else {
        return Err(err("empty HLS pragma".into()));
    };
    let rest: Vec<&str> = words.collect();
    let lookup = |key: &str| -> Option<&str> {
        rest.iter().find_map(|w| {
            let (k, v) = w.split_once('=')?;
            (k.eq_ignore_ascii_case(key)).then_some(v)
        })
    };
    let flag = |name: &str| rest.iter().any(|w| w.eq_ignore_ascii_case(name));

    match kind.to_ascii_lowercase().as_str() {
        "inline" => Ok(Some(Pragma::Inline { off: flag("off") })),
        "unroll" => {
            let factor = match lookup("factor") {
                Some(v) => Some(
                    v.parse::<u32>()
                        .map_err(|_| err(format!("bad unroll factor `{v}`")))?,
                ),
                None => None,
            };
            if let Some(0) = factor {
                return Err(err("unroll factor must be >= 1".into()));
            }
            Ok(Some(Pragma::Unroll { factor }))
        }
        "pipeline" => {
            let ii = match lookup("ii").or(lookup("II")) {
                Some(v) => v
                    .parse::<u32>()
                    .map_err(|_| err(format!("bad pipeline II `{v}`")))?
                    .max(1),
                None => 1,
            };
            Ok(Some(Pragma::Pipeline { ii }))
        }
        "array_partition" => {
            let variable = lookup("variable")
                .ok_or_else(|| err("array_partition needs variable=<name>".into()))?
                .to_string();
            let factor = match lookup("factor") {
                Some(v) => Some(
                    v.parse::<u32>()
                        .map_err(|_| err(format!("bad partition factor `{v}`")))?,
                ),
                None => None,
            };
            let scheme = if flag("complete") {
                Partition::Complete
            } else if flag("block") {
                Partition::Block(factor.ok_or_else(|| err("block partition needs factor".into()))?)
            } else if flag("cyclic") {
                Partition::Cyclic(
                    factor.ok_or_else(|| err("cyclic partition needs factor".into()))?,
                )
            } else if let Some(f) = factor {
                Partition::Cyclic(f)
            } else {
                Partition::Complete
            };
            Ok(Some(Pragma::ArrayPartition { variable, scheme }))
        }
        other => Err(err(format!("unknown HLS pragma `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_variants() {
        assert_eq!(
            parse_pragma("HLS inline", 1).unwrap(),
            Some(Pragma::Inline { off: false })
        );
        assert_eq!(
            parse_pragma("HLS inline off", 1).unwrap(),
            Some(Pragma::Inline { off: true })
        );
    }

    #[test]
    fn unroll_variants() {
        assert_eq!(
            parse_pragma("HLS unroll", 1).unwrap(),
            Some(Pragma::Unroll { factor: None })
        );
        assert_eq!(
            parse_pragma("HLS unroll factor=8", 1).unwrap(),
            Some(Pragma::Unroll { factor: Some(8) })
        );
        assert!(parse_pragma("HLS unroll factor=0", 1).is_err());
        assert!(parse_pragma("HLS unroll factor=x", 1).is_err());
    }

    #[test]
    fn pipeline_defaults_ii_1() {
        assert_eq!(
            parse_pragma("HLS pipeline", 1).unwrap(),
            Some(Pragma::Pipeline { ii: 1 })
        );
        assert_eq!(
            parse_pragma("HLS pipeline II=3", 1).unwrap(),
            Some(Pragma::Pipeline { ii: 3 })
        );
    }

    #[test]
    fn array_partition_schemes() {
        assert_eq!(
            parse_pragma("HLS array_partition variable=buf complete", 1).unwrap(),
            Some(Pragma::ArrayPartition {
                variable: "buf".into(),
                scheme: Partition::Complete
            })
        );
        assert_eq!(
            parse_pragma("HLS array_partition variable=buf cyclic factor=4", 1).unwrap(),
            Some(Pragma::ArrayPartition {
                variable: "buf".into(),
                scheme: Partition::Cyclic(4)
            })
        );
        assert_eq!(
            parse_pragma("HLS array_partition variable=buf block factor=2", 1).unwrap(),
            Some(Pragma::ArrayPartition {
                variable: "buf".into(),
                scheme: Partition::Block(2)
            })
        );
        assert!(parse_pragma("HLS array_partition cyclic factor=4", 1).is_err());
    }

    #[test]
    fn non_hls_pragma_ignored() {
        assert_eq!(parse_pragma("once", 1).unwrap(), None);
    }

    #[test]
    fn unknown_hls_pragma_rejected() {
        assert!(parse_pragma("HLS frobnicate", 1).is_err());
    }
}
