//! Recursive-descent parser for MiniHLS.

use super::ast::*;
use super::pragma::{parse_pragma, Pragma};
use super::token::{Token, TokenKind};
use super::{CompileError, Stage};

/// Parse a token stream into a [`Program`].
///
/// # Errors
/// Returns a [`CompileError`] on syntax errors.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(Stage::Parse, self.line(), msg.into())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat(&TokenKind::Minus);
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    /// Parse a type name such as `int32` or `uint7`. `void` returns None.
    fn type_name(&mut self) -> Result<Option<TypeName>, CompileError> {
        let name = self.ident()?;
        parse_type_text(&name).ok_or_else(|| self.err(format!("unknown type `{name}`")))
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut functions = Vec::new();
        let mut pending: Vec<Pragma> = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Pragma(raw) => {
                    let line = self.line();
                    self.bump();
                    if let Some(p) = parse_pragma(&raw, line)? {
                        pending.push(p);
                    }
                }
                _ => {
                    let mut f = self.function()?;
                    f.pragmas.append(&mut pending);
                    functions.push(f);
                }
            }
        }
        if functions.is_empty() {
            return Err(self.err("source contains no functions"));
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FuncDecl, CompileError> {
        let line = self.line();
        let ret = self.type_name()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pline = self.line();
                let ty = self
                    .type_name()?
                    .ok_or_else(|| self.err("void parameter not allowed"))?;
                let pname = self.ident()?;
                let array_len = if self.eat(&TokenKind::LBracket) {
                    let len = self.int()?;
                    self.expect(&TokenKind::RBracket)?;
                    if len <= 0 {
                        return Err(self.err("array length must be positive"));
                    }
                    Some(len as u32)
                } else {
                    None
                };
                params.push(ParamDecl {
                    name: pname,
                    ty,
                    array_len,
                    line: pline,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            ret,
            params,
            body,
            pragmas: Vec::new(),
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        let mut pending: Vec<Pragma> = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if let TokenKind::Pragma(raw) = self.peek().clone() {
                let line = self.line();
                self.bump();
                if let Some(p) = parse_pragma(&raw, line)? {
                    match p {
                        Pragma::Unroll { .. } | Pragma::Pipeline { .. } => pending.push(p),
                        other => stmts.push(Stmt::PragmaStmt {
                            pragma: other,
                            line,
                        }),
                    }
                }
                continue;
            }
            let stmt = self.statement()?;
            let stmt = match stmt {
                Stmt::For {
                    var,
                    start,
                    bound,
                    step,
                    body,
                    mut pragmas,
                    line,
                } => {
                    pragmas.append(&mut pending);
                    Stmt::For {
                        var,
                        start,
                        bound,
                        step,
                        body,
                        pragmas,
                        line,
                    }
                }
                other => {
                    if !pending.is_empty() {
                        return Err(
                            self.err("unroll/pipeline pragma must immediately precede a for loop")
                        );
                    }
                    other
                }
            };
            stmts.push(stmt);
        }
        if !pending.is_empty() {
            return Err(self.err("dangling loop pragma at end of block"));
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Ident(word) => match word.as_str() {
                "if" => self.if_stmt(),
                "for" => self.for_stmt(),
                "return" => {
                    self.bump();
                    let value = if self.eat(&TokenKind::Semi) {
                        None
                    } else {
                        let e = self.expr()?;
                        self.expect(&TokenKind::Semi)?;
                        Some(e)
                    };
                    Ok(Stmt::Return { value, line })
                }
                _ if parse_type_text(&word).is_some() && !matches!(word.as_str(), "void") => {
                    self.decl_stmt()
                }
                _ => self.assign_or_expr_stmt(),
            },
            _ => self.assign_or_expr_stmt(),
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let ty = self
            .type_name()?
            .ok_or_else(|| self.err("cannot declare a void variable"))?;
        let name = self.ident()?;
        if self.eat(&TokenKind::LBracket) {
            let len = self.int()?;
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Semi)?;
            if len <= 0 {
                return Err(self.err("array length must be positive"));
            }
            return Ok(Stmt::Decl {
                name,
                ty,
                array_len: Some(len as u32),
                init: None,
                line,
            });
        }
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Decl {
            name,
            ty,
            array_len: None,
            init,
            line,
        })
    }

    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let e = self.expr()?;
        match self.peek() {
            TokenKind::Assign | TokenKind::PlusAssign => {
                let compound = matches!(self.peek(), TokenKind::PlusAssign);
                self.bump();
                let target = match &e {
                    Expr::Var(name, _) => LValue::Var(name.clone()),
                    Expr::Index(name, idx, _) => LValue::Index(name.clone(), idx.clone()),
                    _ => return Err(self.err("invalid assignment target")),
                };
                let rhs = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                let value = if compound {
                    Expr::Binary(BinOp::Add, Box::new(e), Box::new(rhs), line)
                } else {
                    rhs
                };
                Ok(Stmt::Assign {
                    target,
                    value,
                    line,
                })
            }
            _ => {
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::ExprStmt { expr: e, line })
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.bump(); // `if`
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if matches!(self.peek(), TokenKind::Ident(w) if w == "else") {
            self.bump();
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.bump(); // `for`
        self.expect(&TokenKind::LParen)?;
        // Optional type before the induction variable.
        if let TokenKind::Ident(w) = self.peek().clone() {
            if parse_type_text(&w).is_some() && w != "void" {
                self.bump();
            }
        }
        let var = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let start = self.int()?;
        self.expect(&TokenKind::Semi)?;
        let var2 = self.ident()?;
        if var2 != var {
            return Err(self.err("for-loop condition must test the induction variable"));
        }
        let strict = if self.eat(&TokenKind::Lt) {
            true
        } else if self.eat(&TokenKind::Le) {
            false
        } else {
            return Err(self.err("for-loop condition must be `<` or `<=`"));
        };
        let mut bound = self.int()?;
        if !strict {
            bound += 1;
        }
        self.expect(&TokenKind::Semi)?;
        let var3 = self.ident()?;
        if var3 != var {
            return Err(self.err("for-loop increment must update the induction variable"));
        }
        let step = if self.eat(&TokenKind::PlusPlus) {
            1
        } else if self.eat(&TokenKind::PlusAssign) {
            let s = self.int()?;
            if s <= 0 {
                return Err(self.err("for-loop step must be positive"));
            }
            s
        } else {
            return Err(self.err("for-loop increment must be `++` or `+= N`"));
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            start,
            bound,
            step,
            body,
            pragmas: Vec::new(),
            line,
        })
    }

    // Expression parsing: precedence climbing.

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let line = self.line();
            let a = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(a),
                Box::new(b),
                line,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = binop_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?), line))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?), line))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::LNot, Box::new(self.unary()?), line))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.expect(&TokenKind::RParen)?;
                        }
                        Ok(Expr::Call(name, args, line))
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx), line))
                    }
                    _ => Ok(Expr::Var(name, line)),
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

fn binop_of(t: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match t {
        TokenKind::PipePipe => (BinOp::LOr, 0),
        TokenKind::AmpAmp => (BinOp::LAnd, 1),
        TokenKind::Pipe => (BinOp::Or, 2),
        TokenKind::Caret => (BinOp::Xor, 3),
        TokenKind::Amp => (BinOp::And, 4),
        TokenKind::EqEq => (BinOp::Eq, 5),
        TokenKind::Ne => (BinOp::Ne, 5),
        TokenKind::Lt => (BinOp::Lt, 6),
        TokenKind::Le => (BinOp::Le, 6),
        TokenKind::Gt => (BinOp::Gt, 6),
        TokenKind::Ge => (BinOp::Ge, 6),
        TokenKind::Shl => (BinOp::Shl, 7),
        TokenKind::Shr => (BinOp::Shr, 7),
        TokenKind::Plus => (BinOp::Add, 8),
        TokenKind::Minus => (BinOp::Sub, 8),
        TokenKind::Star => (BinOp::Mul, 9),
        TokenKind::Slash => (BinOp::Div, 9),
        TokenKind::Percent => (BinOp::Rem, 9),
        _ => return None,
    })
}

/// Parse a type token: `intN`, `uintN`, or `void` (None).
pub fn parse_type_text(s: &str) -> Option<Option<TypeName>> {
    if s == "void" {
        return Some(None);
    }
    let (signed, digits) = if let Some(d) = s.strip_prefix("uint") {
        (false, d)
    } else if let Some(d) = s.strip_prefix("int") {
        (true, d)
    } else if s == "bool" {
        return Some(Some(TypeName {
            signed: false,
            bits: 1,
        }));
    } else {
        return None;
    };
    let bits: u16 = digits.parse().ok()?;
    if (1..=64).contains(&bits) {
        Some(Some(TypeName { signed, bits }))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn minimal_function() {
        let p = parse_src("int32 f(int32 x) { return x; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "f");
        assert_eq!(p.functions[0].params.len(), 1);
    }

    #[test]
    fn array_params_and_decls() {
        let p = parse_src("void f(int8 a[16]) { int8 buf[4]; buf[0] = a[1]; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].array_len, Some(16));
        assert!(matches!(
            f.body[0],
            Stmt::Decl {
                array_len: Some(4),
                ..
            }
        ));
    }

    #[test]
    fn for_loop_with_pragma() {
        let src = "void f() {\n#pragma HLS unroll factor=4\nfor (i = 0; i < 16; i++) { }\n}";
        let p = parse_src(src).unwrap();
        match &p.functions[0].body[0] {
            Stmt::For {
                pragmas,
                start,
                bound,
                step,
                ..
            } => {
                assert_eq!(pragmas.len(), 1);
                assert_eq!((*start, *bound, *step), (0, 16, 1));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn le_bound_normalized() {
        let p = parse_src("void f() { for (i = 1; i <= 10; i += 2) { } }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::For { bound, step, .. } => {
                assert_eq!(*bound, 11);
                assert_eq!(*step, 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_src("int32 f() { return 1 + 2 * 3; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return {
                value: Some(Expr::Binary(BinOp::Add, _, rhs, _)),
                ..
            } => assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _))),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn ternary_and_calls() {
        let p = parse_src("int32 f(int32 x) { return x > 0 ? g(x, 1) : 0 - x; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return {
                value: Some(Expr::Ternary(..)),
                ..
            } => {}
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn compound_assign_desugars() {
        let p = parse_src("void f(int32 x) { x += 2; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Assign {
                value: Expr::Binary(BinOp::Add, ..),
                ..
            } => {}
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn function_pragma_attaches() {
        let src = "#pragma HLS inline\nint32 f(int32 x) { return x; }";
        let p = parse_src(src).unwrap();
        assert_eq!(p.functions[0].pragmas.len(), 1);
    }

    #[test]
    fn dangling_loop_pragma_rejected() {
        let src = "void f() {\n#pragma HLS unroll\nint32 x = 1;\n}";
        assert!(parse_src(src).is_err());
    }

    #[test]
    fn bad_loop_shape_rejected() {
        assert!(parse_src("void f() { for (i = 0; j < 4; i++) { } }").is_err());
        assert!(parse_src("void f() { for (i = 0; i < 4; j++) { } }").is_err());
    }

    #[test]
    fn type_text_parsing() {
        assert_eq!(
            parse_type_text("int13"),
            Some(Some(TypeName {
                signed: true,
                bits: 13
            }))
        );
        assert_eq!(parse_type_text("void"), Some(None));
        assert_eq!(parse_type_text("int0"), None);
        assert_eq!(parse_type_text("uint65"), None);
        assert_eq!(parse_type_text("float"), None);
    }
}
