//! AST → IR lowering.
//!
//! Control flow is lowered structurally: `for` loops become [`Region::Loop`]
//! regions (with loop-carried scalars turned into `Phi` ops), and `if`/`else`
//! is lowered by **predication** — assignments under a condition become
//! `select` ops, conditional stores read-modify-write. This mirrors how HLS
//! tools flatten control flow into datapaths, and it is exactly the structure
//! the congestion features measure.

use super::ast::*;
use super::pragma::Pragma;
use super::{CompileError, Stage};
use crate::builder::FunctionBuilder;
use crate::directives::{Directives, FULL_UNROLL};
use crate::function::{ArrayId, FuncId};
use crate::module::Module;
use crate::op::{CmpPred, OpId, OpKind, Operand, Operation};
use crate::source::SourceLoc;
use crate::types::IrType;
use std::collections::{HashMap, HashSet};

/// Lower a parsed program to an IR module (the last function becomes the
/// top) plus the directives harvested from its pragmas.
///
/// # Errors
/// Returns a [`CompileError`] on semantic problems (unknown names, bad
/// calls, returns under conditions, …).
pub fn lower(program: &Program, name: &str) -> Result<(Module, Directives), CompileError> {
    let mut module = Module::new(name);
    let mut directives = Directives::new();

    // Pass 1: register signatures.
    let mut sigs: HashMap<String, (FuncId, Option<IrType>, Vec<ParamDecl>)> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if sigs.contains_key(&f.name) {
            return Err(CompileError::new(
                Stage::Lower,
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
        let ret = f.ret.map(to_ir_type);
        sigs.insert(f.name.clone(), (FuncId(i as u32), ret, f.params.clone()));
    }

    // Pass 2: lower each function.
    for f in &program.functions {
        let lowered = FuncLowerer::new(f, &sigs, &mut directives).run()?;
        module.push_function(lowered);
    }
    module.top = FuncId(program.functions.len() as u32 - 1);
    Ok((module, directives))
}

fn to_ir_type(t: TypeName) -> IrType {
    if t.signed {
        IrType::int(t.bits)
    } else {
        IrType::uint(t.bits)
    }
}

/// A scalar variable binding: current value + declared type.
#[derive(Debug, Clone, Copy)]
struct Binding {
    value: OpId,
    ty: IrType,
}

struct FuncLowerer<'a> {
    decl: &'a FuncDecl,
    sigs: &'a HashMap<String, (FuncId, Option<IrType>, Vec<ParamDecl>)>,
    directives: &'a mut Directives,
    b: FunctionBuilder,
    env: HashMap<String, Binding>,
    arrays: HashMap<String, ArrayId>,
    returned: bool,
}

impl<'a> FuncLowerer<'a> {
    fn new(
        decl: &'a FuncDecl,
        sigs: &'a HashMap<String, (FuncId, Option<IrType>, Vec<ParamDecl>)>,
        directives: &'a mut Directives,
    ) -> Self {
        FuncLowerer {
            decl,
            sigs,
            directives,
            b: FunctionBuilder::new(decl.name.clone()),
            env: HashMap::new(),
            arrays: HashMap::new(),
            returned: false,
        }
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError::new(Stage::Lower, line, msg.into())
    }

    fn run(mut self) -> Result<crate::function::Function, CompileError> {
        // Function-level pragmas.
        for p in &self.decl.pragmas {
            match p {
                Pragma::Inline { off } => {
                    self.directives.set_inline(&self.decl.name, !off);
                }
                Pragma::ArrayPartition { variable, scheme } => {
                    self.directives
                        .set_partition(&format!("{}/{}", self.decl.name, variable), *scheme);
                }
                _ => {
                    return Err(self.err(
                        self.decl.line,
                        "only inline/array_partition pragmas may precede a function",
                    ))
                }
            }
        }

        self.b.set_loc(SourceLoc::new(self.decl.line, 1));
        if let Some(r) = self.decl.ret {
            self.b.set_ret_type(to_ir_type(r));
        }

        // Parameters.
        for p in &self.decl.params {
            let ty = to_ir_type(p.ty);
            match p.array_len {
                Some(len) => {
                    let id = self.b.array_param(&p.name, ty, len);
                    self.arrays.insert(p.name.clone(), id);
                }
                None => {
                    let v = self.b.scalar_param(&p.name, ty);
                    self.env.insert(p.name.clone(), Binding { value: v, ty });
                }
            }
        }

        self.stmts(&self.decl.body.to_vec(), None)?;

        if self.decl.ret.is_some() && !self.returned {
            return Err(self.err(self.decl.line, "missing return in non-void function"));
        }
        if self.decl.ret.is_none() && !self.returned {
            self.b.ret(None);
        }

        let mut f = self.b.finish();
        // Apply partition pragmas recorded for this function's arrays.
        for a in &mut f.arrays {
            let key = format!("{}/{}", f.name, a.name);
            let p = self.directives.partition(&key);
            if p != crate::directives::Partition::None {
                a.partition = p;
            }
        }
        f.inline = self.directives.inline(&f.name);
        Ok(f)
    }

    fn stmts(&mut self, body: &[Stmt], pred: Option<OpId>) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s, pred)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, pred: Option<OpId>) -> Result<(), CompileError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                array_len,
                init,
                line,
            } => {
                self.b.set_loc(SourceLoc::new(*line, 1));
                let ty = to_ir_type(*ty);
                match array_len {
                    Some(len) => {
                        if self.arrays.contains_key(name) {
                            return Err(self.err(*line, format!("array `{name}` redeclared")));
                        }
                        let id = self.b.local_array(name, ty, *len);
                        self.arrays.insert(name.clone(), id);
                    }
                    None => {
                        let v = match init {
                            Some(e) => {
                                let v = self.expr(e)?;
                                self.b.cast(v, ty)
                            }
                            None => self.b.constant(0, ty),
                        };
                        self.name_op(v, name);
                        self.env.insert(name.clone(), Binding { value: v, ty });
                    }
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.b.set_loc(SourceLoc::new(*line, 1));
                let rhs = self.expr(value)?;
                match target {
                    LValue::Var(name) => {
                        let binding = *self
                            .env
                            .get(name)
                            .ok_or_else(|| self.err(*line, format!("unknown variable `{name}`")))?;
                        let rhs = self.b.cast(rhs, binding.ty);
                        let new = match pred {
                            Some(p) => self.b.select(p, rhs, binding.value),
                            None => rhs,
                        };
                        self.name_op(new, name);
                        self.env.insert(
                            name.clone(),
                            Binding {
                                value: new,
                                ty: binding.ty,
                            },
                        );
                    }
                    LValue::Index(name, idx) => {
                        let arr = *self
                            .arrays
                            .get(name)
                            .ok_or_else(|| self.err(*line, format!("unknown array `{name}`")))?;
                        let idx = self.expr(idx)?;
                        let elem = self.b.function_mut().array(arr).elem;
                        let rhs = self.b.cast(rhs, elem);
                        match pred {
                            Some(p) => {
                                // Predicated store: read-modify-write.
                                let old = self.b.load(arr, idx);
                                let v = self.b.select(p, rhs, old);
                                self.b.store(arr, idx, v);
                            }
                            None => {
                                self.b.store(arr, idx, rhs);
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                self.b.set_loc(SourceLoc::new(*line, 1));
                let c = self.expr(cond)?;
                let c = self.pred_of(c);
                let then_pred = match pred {
                    Some(p) => self.b.binary(OpKind::And, p, c),
                    None => c,
                };
                self.stmts(then_body, Some(then_pred))?;
                if !else_body.is_empty() {
                    let one = self.b.constant(1, IrType::bool());
                    let not_c = self.b.binary(OpKind::Xor, c, one);
                    let else_pred = match pred {
                        Some(p) => self.b.binary(OpKind::And, p, not_c),
                        None => not_c,
                    };
                    self.stmts(else_body, Some(else_pred))?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                start,
                bound,
                step,
                body,
                pragmas,
                line,
            } => {
                if pred.is_some() {
                    return Err(self.err(*line, "for loops inside if are not supported"));
                }
                self.b.set_loc(SourceLoc::new(*line, 1));
                let trip = if bound > start {
                    ((bound - start) as u64).div_ceil(*step as u64)
                } else {
                    0
                };
                if trip == 0 {
                    return Err(self.err(*line, "loop with zero iterations"));
                }

                let mut pipeline_ii = None;
                let mut unroll = None;
                for p in pragmas {
                    match p {
                        Pragma::Pipeline { ii } => pipeline_ii = Some(*ii),
                        Pragma::Unroll { factor } => unroll = Some(factor.unwrap_or(FULL_UNROLL)),
                        _ => {
                            return Err(
                                self.err(*line, "only unroll/pipeline pragmas allowed on loops")
                            )
                        }
                    }
                }

                let (label, iv) = self.b.begin_loop(trip, pipeline_ii);
                if let Some(f) = unroll {
                    self.directives.set_unroll(&label, f);
                }

                // Induction-variable value: start + iv * step.
                let max_val = *start + (trip as i64 - 1) * step;
                let iv_ty = IrType::for_range(max_val.max(0) as u64);
                let mut value = iv;
                if *step != 1 {
                    let c = self.b.constant(*step, IrType::for_const(*step));
                    value = self.b.binary(OpKind::Mul, value, c);
                }
                if *start != 0 {
                    let c = self.b.constant(*start, IrType::for_const(*start));
                    value = self.b.binary(OpKind::Add, value, c);
                }
                let value = self.b.cast(value, iv_ty);
                let shadowed = self.env.insert(var.clone(), Binding { value, ty: iv_ty });

                // Loop-carried scalars: any outer variable assigned in the
                // body gets a Phi at loop entry.
                let mut assigned = HashSet::new();
                collect_assigned(body, &mut assigned);
                let mut carried: Vec<(String, OpId, IrType)> = Vec::new();
                for name in &assigned {
                    if name == var {
                        continue;
                    }
                    if let Some(binding) = self.env.get(name).copied() {
                        let mut op = Operation::new(OpId(0), OpKind::Phi, binding.ty);
                        op.name = name.clone();
                        op.operands
                            .push(Operand::new(binding.value, binding.ty.bits()));
                        let phi = self.emit_raw(op);
                        carried.push((name.clone(), phi, binding.ty));
                        self.env.insert(
                            name.clone(),
                            Binding {
                                value: phi,
                                ty: binding.ty,
                            },
                        );
                    }
                }

                self.stmts(body, None)?;

                // Close the phis with their latch values.
                for (name, phi, ty) in &carried {
                    let latch = self.env[name].value;
                    let latch = self.b.cast(latch, *ty);
                    self.b.function_mut().add_operand(*phi, latch, ty.bits());
                    // After the loop the register holding the phi carries the
                    // final value.
                    self.env.insert(
                        name.clone(),
                        Binding {
                            value: *phi,
                            ty: *ty,
                        },
                    );
                }

                self.b.end_loop();
                match shadowed {
                    Some(old) => {
                        self.env.insert(var.clone(), old);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
                Ok(())
            }
            Stmt::Return { value, line } => {
                if pred.is_some() {
                    return Err(self.err(*line, "return inside if is not supported"));
                }
                if self.returned {
                    return Err(self.err(*line, "multiple returns"));
                }
                self.b.set_loc(SourceLoc::new(*line, 1));
                let v = match value {
                    Some(e) => {
                        let v = self.expr(e)?;
                        let ret_ty = self
                            .decl
                            .ret
                            .map(to_ir_type)
                            .ok_or_else(|| self.err(*line, "void function returns a value"))?;
                        Some(self.b.cast(v, ret_ty))
                    }
                    None => None,
                };
                self.b.ret(v);
                self.returned = true;
                Ok(())
            }
            Stmt::ExprStmt { expr, line } => {
                self.b.set_loc(SourceLoc::new(*line, 1));
                self.expr(expr)?;
                Ok(())
            }
            Stmt::PragmaStmt { pragma, line } => {
                match pragma {
                    Pragma::ArrayPartition { variable, scheme } => {
                        self.directives
                            .set_partition(&format!("{}/{}", self.decl.name, variable), *scheme);
                    }
                    Pragma::Inline { off } => {
                        self.directives.set_inline(&self.decl.name, !off);
                    }
                    _ => {
                        return Err(self.err(*line, "pragma not allowed here"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Attach a variable name to an op for diagnostics (kept only if the op
    /// is still anonymous, so reads of other variables keep their names).
    fn name_op(&mut self, id: OpId, name: &str) {
        let op = self.b.function_mut().op_mut(id);
        if op.name.is_empty() {
            op.name = name.to_string();
        }
    }

    /// Emit an op into the current region via the builder's internals.
    fn emit_raw(&mut self, op: Operation) -> OpId {
        // Route through a trivial builder method: constant then overwrite.
        // Cleaner: expose an emit on the builder. We use binary ops normally;
        // phis are the only raw case, so we add them via a dedicated path.
        self.b.emit_op(op)
    }

    /// Reduce a value to a 1-bit predicate (compare with 0 if needed).
    fn pred_of(&mut self, v: OpId) -> OpId {
        let ty = self.b.function_mut().op(v).ty;
        if ty.bits() == 1 {
            return v;
        }
        let zero = self.b.constant(0, ty);
        self.b.icmp(CmpPred::Ne, v, zero)
    }

    fn expr(&mut self, e: &Expr) -> Result<OpId, CompileError> {
        if e.line() != 0 {
            self.b.set_loc(SourceLoc::new(e.line(), 1));
        }
        match e {
            Expr::Int(v) => Ok(self.b.constant(*v, IrType::for_const(*v))),
            Expr::Var(name, line) => self
                .env
                .get(name)
                .map(|b| b.value)
                .ok_or_else(|| self.err(*line, format!("unknown variable `{name}`"))),
            Expr::Index(name, idx, line) => {
                let arr = *self
                    .arrays
                    .get(name)
                    .ok_or_else(|| self.err(*line, format!("unknown array `{name}`")))?;
                let idx = self.expr(idx)?;
                Ok(self.b.load(arr, idx))
            }
            Expr::Unary(op, inner, _) => {
                let v = self.expr(inner)?;
                Ok(match op {
                    UnOp::Neg => {
                        let ty = self.b.function_mut().op(v).ty;
                        let zero = self.b.constant(0, ty);
                        self.b.binary(OpKind::Sub, zero, v)
                    }
                    UnOp::Not => {
                        let ty = self.b.function_mut().op(v).ty;
                        let mut op = Operation::new(OpId(0), OpKind::Not, ty);
                        op.operands.push(Operand::new(v, ty.bits()));
                        self.emit_raw(op)
                    }
                    UnOp::LNot => {
                        let p = self.pred_of(v);
                        let one = self.b.constant(1, IrType::bool());
                        self.b.binary(OpKind::Xor, p, one)
                    }
                })
            }
            Expr::Binary(op, a, b, _) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                let signed = {
                    let f = self.b.function_mut();
                    f.op(va).ty.is_signed() || f.op(vb).ty.is_signed()
                };
                Ok(match op {
                    BinOp::Add => self.b.binary(OpKind::Add, va, vb),
                    BinOp::Sub => self.b.binary(OpKind::Sub, va, vb),
                    BinOp::Mul => self.b.binary(OpKind::Mul, va, vb),
                    BinOp::Div => {
                        self.b
                            .binary(if signed { OpKind::SDiv } else { OpKind::UDiv }, va, vb)
                    }
                    BinOp::Rem => {
                        self.b
                            .binary(if signed { OpKind::SRem } else { OpKind::URem }, va, vb)
                    }
                    BinOp::Shl => self.b.binary(OpKind::Shl, va, vb),
                    BinOp::Shr => {
                        self.b
                            .binary(if signed { OpKind::AShr } else { OpKind::LShr }, va, vb)
                    }
                    BinOp::And => self.b.binary(OpKind::And, va, vb),
                    BinOp::Or => self.b.binary(OpKind::Or, va, vb),
                    BinOp::Xor => self.b.binary(OpKind::Xor, va, vb),
                    BinOp::Lt => self.b.icmp(CmpPred::Lt, va, vb),
                    BinOp::Le => self.b.icmp(CmpPred::Le, va, vb),
                    BinOp::Gt => self.b.icmp(CmpPred::Gt, va, vb),
                    BinOp::Ge => self.b.icmp(CmpPred::Ge, va, vb),
                    BinOp::Eq => self.b.icmp(CmpPred::Eq, va, vb),
                    BinOp::Ne => self.b.icmp(CmpPred::Ne, va, vb),
                    BinOp::LAnd => {
                        let pa = self.pred_of(va);
                        let pb = self.pred_of(vb);
                        self.b.binary(OpKind::And, pa, pb)
                    }
                    BinOp::LOr => {
                        let pa = self.pred_of(va);
                        let pb = self.pred_of(vb);
                        self.b.binary(OpKind::Or, pa, pb)
                    }
                })
            }
            Expr::Ternary(c, a, b, _) => {
                let vc = self.expr(c)?;
                let p = self.pred_of(vc);
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                Ok(self.b.select(p, va, vb))
            }
            Expr::Call(name, args, line) => self.call(name, args, *line),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<OpId, CompileError> {
        // Builtins first.
        match name {
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(self.err(line, format!("{name} takes 2 arguments")));
                }
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                let pred = if name == "min" {
                    CmpPred::Lt
                } else {
                    CmpPred::Gt
                };
                let c = self.b.icmp(pred, a, b);
                return Ok(self.b.select(c, a, b));
            }
            "abs" => {
                if args.len() != 1 {
                    return Err(self.err(line, "abs takes 1 argument"));
                }
                let v = self.expr(&args[0])?;
                let ty = self.b.function_mut().op(v).ty;
                let zero = self.b.constant(0, ty);
                let c = self.b.icmp(CmpPred::Lt, v, zero);
                let n = self.b.binary(OpKind::Sub, zero, v);
                return Ok(self.b.select(c, n, v));
            }
            "sqrt" => {
                if args.len() != 1 {
                    return Err(self.err(line, "sqrt takes 1 argument"));
                }
                let v = self.expr(&args[0])?;
                let ty = self.b.function_mut().op(v).ty;
                let out = IrType::uint(ty.bits().div_ceil(2).max(1));
                let mut op = Operation::new(OpId(0), OpKind::Sqrt, out);
                op.operands.push(Operand::new(v, ty.bits()));
                return Ok(self.emit_raw(op));
            }
            "popcount" => {
                if args.len() != 1 {
                    return Err(self.err(line, "popcount takes 1 argument"));
                }
                let v = self.expr(&args[0])?;
                return Ok(self.popcount(v));
            }
            _ => {}
        }

        let (callee, ret, params) = self
            .sigs
            .get(name)
            .ok_or_else(|| self.err(line, format!("unknown function `{name}`")))?
            .clone();
        if args.len() != params.len() {
            return Err(self.err(
                line,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
            ));
        }
        let mut scalar_args = Vec::new();
        let mut array_args = Vec::new();
        for (arg, param) in args.iter().zip(&params) {
            match param.array_len {
                Some(_) => {
                    let Expr::Var(aname, aline) = arg else {
                        return Err(self.err(
                            line,
                            format!(
                                "argument for array parameter `{}` must be an array name",
                                param.name
                            ),
                        ));
                    };
                    let arr = *self
                        .arrays
                        .get(aname)
                        .ok_or_else(|| self.err(*aline, format!("unknown array `{aname}`")))?;
                    array_args.push(arr);
                }
                None => {
                    let v = self.expr(arg)?;
                    let v = self.b.cast(v, to_ir_type(param.ty));
                    scalar_args.push(v);
                }
            }
        }
        let ret_ty = ret.unwrap_or(IrType::bool());
        let id = self.b.call(callee, &scalar_args, ret_ty);
        self.b.function_mut().op_mut(id).array_args = array_args;
        Ok(id)
    }

    /// SWAR population count: a logarithmic shift/mask/add tree, which is a
    /// realistic hardware structure (and a congestion generator in BNNs).
    fn popcount(&mut self, v: OpId) -> OpId {
        let bits = self.b.function_mut().op(v).ty.bits();
        let w = bits.next_power_of_two().max(2);
        let ty = IrType::uint(w);
        let mut x = self.b.cast(v, ty);
        let mut shift = 1u16;
        while shift < w {
            let mask_val = swar_mask(w, shift);
            let mask = self.b.constant(mask_val, ty);
            let lo = self.b.binary(OpKind::And, x, mask);
            let sc = self.b.constant(shift as i64, IrType::uint(7));
            let hi_shift = self.b.binary(OpKind::LShr, x, sc);
            let hi = self.b.binary(OpKind::And, hi_shift, mask);
            let sum = self.b.binary(OpKind::Add, lo, hi);
            x = self.b.cast(sum, ty);
            shift *= 2;
        }
        let out = IrType::uint((bits.ilog2() as u16 + 1).max(1));
        self.b.cast(x, out)
    }
}

/// The SWAR mask for a given field width at `shift` granularity, truncated
/// to `w` bits.
fn swar_mask(w: u16, shift: u16) -> i64 {
    let mut mask: u128 = 0;
    let field = shift as u32 * 2;
    let mut pos = 0u32;
    while pos < w as u32 {
        mask |= ((1u128 << shift) - 1) << pos;
        pos += field;
    }
    let trunc = if w >= 64 {
        u64::MAX as u128
    } else {
        (1u128 << w) - 1
    };
    ((mask & trunc) & (i64::MAX as u128)) as i64
}

fn collect_assigned(body: &[Stmt], out: &mut HashSet<String>) {
    for s in body {
        match s {
            Stmt::Assign {
                target: LValue::Var(name),
                ..
            } => {
                out.insert(name.clone());
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::For { body, var, .. } => {
                let mut inner = HashSet::new();
                collect_assigned(body, &mut inner);
                inner.remove(var);
                out.extend(inner);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};
    use crate::Region;

    fn lower_src(src: &str) -> (Module, Directives) {
        let toks = lex(src).unwrap();
        let prog = parse(&toks).unwrap();
        lower(&prog, "t").unwrap()
    }

    #[test]
    fn simple_function_lowers() {
        let (m, _) = lower_src("int32 f(int32 x) { return x + 1; }");
        let f = m.top_function();
        assert_eq!(f.name, "f");
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Add.index()], 1);
        assert_eq!(h[OpKind::Return.index()], 1);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn if_lowered_to_select() {
        let (m, _) = lower_src(
            "int32 f(int32 x) { int32 y = 0; if (x > 0) { y = x; } else { y = 0 - x; } return y; }",
        );
        let f = m.top_function();
        let h = f.kind_histogram();
        assert!(h[OpKind::Select.index()] >= 2);
        assert_eq!(f.body.loop_count(), 0);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn loop_carried_accumulator_gets_phi() {
        let (m, _) = lower_src(
            "int32 f(int32 a[8]) { int32 acc = 0; for (i = 0; i < 8; i++) { acc = acc + a[i]; } return acc; }",
        );
        let f = m.top_function();
        let h = f.kind_histogram();
        // one phi for the induction variable + one for acc
        assert_eq!(h[OpKind::Phi.index()], 2);
        assert_eq!(f.body.loop_count(), 1);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn predicated_store_read_modify_writes() {
        let (m, _) = lower_src("void f(int8 a[4], int8 v) { if (v > 0) { a[0] = v; } }");
        let f = m.top_function();
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Load.index()], 1);
        assert_eq!(h[OpKind::Store.index()], 1);
        assert_eq!(h[OpKind::Select.index()], 1);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn call_with_array_args() {
        let (m, _) = lower_src(
            "int32 g(int32 a[4], int32 k) { return a[0] + k; }\nint32 f(int32 a[4]) { return g(a, 2); }",
        );
        let f = m.function_by_name("f").unwrap();
        let call = &f.ops[f.call_sites()[0].index()];
        assert_eq!(call.array_args.len(), 1);
        assert_eq!(call.operands.len(), 1);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn pragmas_become_directives() {
        let src = r#"
#pragma HLS inline
int32 g(int32 x) { return x * 3; }
int32 f(int32 x) {
    int32 buf[16];
    #pragma HLS array_partition variable=buf cyclic factor=4
    int32 s = 0;
    #pragma HLS unroll factor=4
    for (i = 0; i < 16; i++) { buf[i] = x; }
    #pragma HLS pipeline II=2
    for (i = 0; i < 16; i++) { s = s + buf[i]; }
    return s + g(x);
}
"#;
        let (m, d) = lower_src(src);
        assert!(d.inline("g"));
        assert_eq!(d.loop_directives("f/loop0").unroll, 4);
        assert_eq!(
            d.partition("f/buf"),
            crate::directives::Partition::Cyclic(4)
        );
        let f = m.function_by_name("f").unwrap();
        assert_eq!(
            f.array_by_name("buf").unwrap().partition,
            crate::directives::Partition::Cyclic(4)
        );
        // pipeline recorded on the second loop region
        let mut pipelined = 0;
        fn walk(r: &Region, n: &mut u32) {
            match r {
                Region::Loop {
                    pipeline_ii: Some(_),
                    body,
                    ..
                } => {
                    *n += 1;
                    walk(body, n);
                }
                Region::Loop { body, .. } => walk(body, n),
                Region::Seq(rs) => rs.iter().for_each(|r| walk(r, n)),
                Region::Block(_) => {}
            }
        }
        walk(&f.body, &mut pipelined);
        assert_eq!(pipelined, 1);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn builtins_lower() {
        let (m, _) = lower_src(
            "int32 f(int32 x, int32 y) { return min(x, y) + max(x, y) + abs(x) + sqrt(x) + popcount(x); }",
        );
        let f = m.top_function();
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Sqrt.index()], 1);
        assert!(h[OpKind::Select.index()] >= 3);
        assert!(h[OpKind::LShr.index()] >= 4, "popcount SWAR tree present");
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn errors_reported() {
        let bad = [
            "int32 f() { return y; }",                             // unknown var
            "int32 f() { y = 1; return 0; }",                      // assign unknown
            "int32 f(int32 x) { if (x) { return 1; } return 0; }", // return in if
            "int32 f() { }",                                       // missing return
            "void f() { g(1); }",                                  // unknown function
        ];
        for src in bad {
            let toks = lex(src).unwrap();
            let prog = parse(&toks).unwrap();
            assert!(lower(&prog, "t").is_err(), "should fail: {src}");
        }
    }

    #[test]
    fn swar_masks() {
        assert_eq!(swar_mask(8, 1), 0x55);
        assert_eq!(swar_mask(8, 2), 0x33);
        assert_eq!(swar_mask(8, 4), 0x0F);
        assert_eq!(swar_mask(16, 4), 0x0F0F);
    }

    #[test]
    fn last_function_is_top() {
        let (m, _) = lower_src("int32 a(int32 x) { return x; } int32 b(int32 x) { return a(x); }");
        assert_eq!(m.top_function().name, "b");
    }
}
