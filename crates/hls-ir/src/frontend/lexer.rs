//! MiniHLS tokenizer.

use super::token::{Token, TokenKind};
use super::{CompileError, Stage};

/// Tokenize MiniHLS source.
///
/// `//` line comments and `/* */` block comments are skipped; `#pragma`
/// lines become a single [`TokenKind::Pragma`] token carrying the raw text
/// after the `#pragma` keyword.
///
/// # Errors
/// Returns a [`CompileError`] on unrecognized characters or malformed
/// literals.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = bytes.get(i + 1).map(|&b| b as char);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(
                            Stage::Lex,
                            line,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '#' => {
                // Consume the rest of the line as a pragma.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                let Some(rest) = text.strip_prefix("#pragma") else {
                    return Err(CompileError::new(
                        Stage::Lex,
                        line,
                        format!("unknown preprocessor line `{text}`"),
                    ));
                };
                tokens.push(Token {
                    kind: TokenKind::Pragma(rest.trim().to_string()),
                    line,
                    col,
                });
                col = 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let text = &source[start..i];
                let value =
                    if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                        i64::from_str_radix(hex, 16)
                    } else {
                        text.parse::<i64>()
                    }
                    .map_err(|_| {
                        CompileError::new(Stage::Lex, line, format!("bad integer literal `{text}`"))
                    })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = source[start..i].to_string();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            ';' => push!(TokenKind::Semi, 1),
            ',' => push!(TokenKind::Comma, 1),
            '?' => push!(TokenKind::Question, 1),
            ':' => push!(TokenKind::Colon, 1),
            '=' if next == Some('=') => push!(TokenKind::EqEq, 2),
            '=' => push!(TokenKind::Assign, 1),
            '+' if next == Some('+') => push!(TokenKind::PlusPlus, 2),
            '+' if next == Some('=') => push!(TokenKind::PlusAssign, 2),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '*' => push!(TokenKind::Star, 1),
            '/' => push!(TokenKind::Slash, 1),
            '%' => push!(TokenKind::Percent, 1),
            '<' if next == Some('<') => push!(TokenKind::Shl, 2),
            '<' if next == Some('=') => push!(TokenKind::Le, 2),
            '<' => push!(TokenKind::Lt, 1),
            '>' if next == Some('>') => push!(TokenKind::Shr, 2),
            '>' if next == Some('=') => push!(TokenKind::Ge, 2),
            '>' => push!(TokenKind::Gt, 1),
            '&' if next == Some('&') => push!(TokenKind::AmpAmp, 2),
            '&' => push!(TokenKind::Amp, 1),
            '|' if next == Some('|') => push!(TokenKind::PipePipe, 2),
            '|' => push!(TokenKind::Pipe, 1),
            '^' => push!(TokenKind::Caret, 1),
            '~' => push!(TokenKind::Tilde, 1),
            '!' if next == Some('=') => push!(TokenKind::Ne, 2),
            '!' => push!(TokenKind::Bang, 1),
            other => {
                return Err(CompileError::new(
                    Stage::Lex,
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("int32 x = 42;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int32".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("<= >= == != << >> && || ++ +=");
        assert_eq!(
            k,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::PlusPlus,
                TokenKind::PlusAssign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // trailing\n/* block\nspanning */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn pragma_captured_raw() {
        let k = kinds("#pragma HLS unroll factor=4\nx");
        assert_eq!(k[0], TokenKind::Pragma("HLS unroll factor=4".into()));
        assert_eq!(k[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn hex_literals() {
        assert_eq!(kinds("0xFF")[0], TokenKind::Int(255));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }

    #[test]
    fn bad_char_rejected() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(lex("/* nope").is_err());
    }
}
