//! Token definitions for the MiniHLS lexer.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Kinds of MiniHLS tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// A whole `#pragma …` line (raw text after `#pragma`).
    Pragma(String),

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,

    // Operators.
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `++`
    PlusPlus,
    /// `+=`
    PlusAssign,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Pragma(_) => write!(f, "#pragma"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::PlusPlus => write!(f, "`++`"),
            TokenKind::PlusAssign => write!(f, "`+=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
