//! The MiniHLS frontend: a small C-like language with HLS pragmas.
//!
//! MiniHLS is the surface language for this reproduction, standing in for the
//! HLS-C the paper's benchmarks are written in. It supports:
//!
//! * arbitrary-width integer types `int1..int64`, `uint1..uint64`;
//! * functions, scalar and fixed-size array parameters;
//! * counted `for` loops with constant bounds;
//! * `if`/`else` (lowered by predication to `select` ops);
//! * expressions: arithmetic, shifts, bitwise, comparisons, ternary, calls;
//! * builtins `min`, `max`, `abs`, `sqrt`, `popcount`;
//! * `#pragma HLS inline [off]`, `#pragma HLS unroll [factor=N]`,
//!   `#pragma HLS pipeline [II=N]`,
//!   `#pragma HLS array_partition variable=x [cyclic|block|complete] [factor=N]`.
//!
//! [`compile`] runs lex → parse → lower → directive transforms → verify and
//! returns a ready-to-synthesize [`Module`](crate::Module).

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pragma;
pub mod token;

use crate::directives::Directives;
use crate::module::Module;
use std::fmt;

/// Any error raised while compiling MiniHLS source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Compilation stage that failed.
    pub stage: Stage,
    /// 1-based source line (0 if unknown).
    pub line: u32,
    /// Error description.
    pub message: String,
}

/// Frontend stages, for error attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis / lowering.
    Lower,
    /// Post-lowering IR verification.
    Verify,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} error at line {}: {}",
            self.stage, self.line, self.message
        )
    }
}

impl std::error::Error for CompileError {}

impl CompileError {
    pub(crate) fn new(stage: Stage, line: u32, message: impl Into<String>) -> Self {
        CompileError {
            stage,
            line,
            message: message.into(),
        }
    }
}

/// Compile MiniHLS source into an IR module named `main`, applying the
/// pragma directives found in the source (inlining and unrolling are
/// performed; pipeline/partition are recorded in the IR).
///
/// The *last* function in the file is the top function.
///
/// # Errors
/// Returns a [`CompileError`] for lexical, syntactic, or semantic problems.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    compile_named(source, "main")
}

/// Like [`compile`] but with an explicit design name.
///
/// # Errors
/// Returns a [`CompileError`] for lexical, syntactic, or semantic problems.
pub fn compile_named(source: &str, name: &str) -> Result<Module, CompileError> {
    let (module, directives) = compile_to_ir(source, name)?;
    finish(module, &directives)
}

/// Compile to IR *without* applying inline/unroll transforms, returning the
/// raw module and the directives harvested from pragmas. Useful for tooling
/// that wants to override directives before transformation.
///
/// # Errors
/// Returns a [`CompileError`] for lexical, syntactic, or semantic problems.
pub fn compile_to_ir(source: &str, name: &str) -> Result<(Module, Directives), CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    lower::lower(&program, name)
}

/// Apply directive-driven transforms (inline, then unroll, then DCE and
/// compaction) and verify the result.
///
/// # Errors
/// Returns a [`CompileError`] if verification fails after transformation.
pub fn finish(mut module: Module, directives: &Directives) -> Result<Module, CompileError> {
    crate::transform::inline::inline_module(&mut module, directives);
    crate::transform::unroll::unroll_module(&mut module, directives);
    crate::transform::const_fold::fold_module(&mut module);
    crate::transform::dce::dce_module(&mut module);
    propagate_partitions(&mut module);
    crate::verify::verify_module(&module)
        .map_err(|e| CompileError::new(Stage::Verify, 0, e.to_string()))?;
    Ok(module)
}

/// Interface-partition propagation: when a caller passes an array to a
/// callee whose parameter is partitioned, the caller's (physical) array
/// adopts that partitioning — exactly how `array_partition` interface
/// directives behave in HLS tools. Processes callees before callers so
/// chains propagate to the top.
fn propagate_partitions(module: &mut Module) {
    use crate::directives::Partition;
    let order = module.bottom_up_order();
    for &fid in &order {
        // Collect (caller array, partition) pairs from this function's calls.
        let mut updates: Vec<(crate::function::ArrayId, Partition)> = Vec::new();
        {
            let f = module.function(fid);
            for op in &f.ops {
                if op.kind != crate::op::OpKind::Call {
                    continue;
                }
                let Some(callee) = op.callee else { continue };
                let callee_f = module.function(callee);
                let callee_param_arrays: Vec<&crate::function::ArrayDecl> =
                    callee_f.arrays.iter().filter(|a| a.is_param).collect();
                for (caller_arr, callee_arr) in op.array_args.iter().zip(callee_param_arrays) {
                    if callee_arr.partition != Partition::None
                        && f.array(*caller_arr).partition == Partition::None
                    {
                        updates.push((*caller_arr, callee_arr.partition));
                    }
                }
            }
        }
        let f = module.function_mut(fid);
        for (arr, p) in updates {
            f.arrays[arr.index()].partition = p;
        }
    }
}

/// Compile with an extra directive overlay (overlay wins over pragmas).
///
/// This is the entry point the benchmark generators use to flip a design
/// between the paper's implementation variants without editing source.
///
/// # Errors
/// Returns a [`CompileError`] for lexical, syntactic, or semantic problems.
pub fn compile_with_directives(
    source: &str,
    name: &str,
    overlay: &Directives,
) -> Result<Module, CompileError> {
    let (module, mut directives) = compile_to_ir(source, name)?;
    directives.merge(overlay);
    // Re-apply partition overlay onto array decls (pragmas were already
    // applied during lowering; the overlay may change them).
    let mut module = module;
    for f in &mut module.functions {
        let fname = f.name.clone();
        for a in &mut f.arrays {
            let key = format!("{}/{}", fname, a.name);
            let p = directives.partition(&key);
            if p != crate::directives::Partition::None {
                a.partition = p;
            }
        }
    }
    finish(module, &directives)
}
