//! A reference interpreter for the IR.
//!
//! Executes a module's top function on concrete inputs, with bit-accurate
//! wrapping to each operation's result type. Its purpose is *testing*: the
//! directive transforms (inlining, unrolling, constant folding, DCE) must
//! all preserve a program's observable behaviour, and the interpreter is the
//! oracle that checks it.

use crate::function::{ArrayId, FuncId, Function, Region};
use crate::module::Module;
use crate::op::{CmpPred, OpId, OpKind};
use crate::types::IrType;
use std::collections::HashMap;
use std::fmt;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Division or remainder by zero.
    DivideByZero(OpId),
    /// Array access out of bounds.
    OutOfBounds {
        /// The offending op.
        op: OpId,
        /// Evaluated index.
        index: i64,
        /// Array length.
        len: u32,
    },
    /// Wrong number of scalar arguments supplied.
    ArgCount {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// Wrong number/shape of array arguments supplied.
    ArrayArg(String),
    /// Executed an op the interpreter does not model.
    Unsupported(OpKind),
    /// Execution exceeded the step budget (runaway loop).
    StepBudget,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivideByZero(op) => write!(f, "divide by zero at {op}"),
            InterpError::OutOfBounds { op, index, len } => {
                write!(f, "index {index} out of bounds (len {len}) at {op}")
            }
            InterpError::ArgCount { expected, got } => {
                write!(f, "expected {expected} scalar arguments, got {got}")
            }
            InterpError::ArrayArg(m) => write!(f, "array argument error: {m}"),
            InterpError::Unsupported(k) => write!(f, "unsupported op kind `{k}`"),
            InterpError::StepBudget => write!(f, "step budget exceeded"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Wrap `v` to the value range of `ty`.
pub fn wrap(v: i64, ty: IrType) -> i64 {
    let bits = ty.bits();
    if bits >= 64 {
        return v;
    }
    let mask = (1u64 << bits) - 1;
    let u = (v as u64) & mask;
    if ty.is_signed() && (u >> (bits - 1)) & 1 == 1 {
        (u | !mask) as i64
    } else {
        u as i64
    }
}

/// Interpreter over one module.
pub struct Interpreter<'a> {
    module: &'a Module,
    /// Remaining execution steps (guards against runaway loops).
    budget: u64,
}

/// The result of running a function: the return value (if any) and the final
/// contents of its interface arrays (in parameter order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Returned value (None for void functions).
    pub ret: Option<i64>,
    /// Final contents of array parameters, in declaration order.
    pub arrays: Vec<Vec<i64>>,
}

impl<'a> Interpreter<'a> {
    /// A fresh interpreter with the default step budget (10 million ops).
    pub fn new(module: &'a Module) -> Self {
        Interpreter {
            module,
            budget: 10_000_000,
        }
    }

    /// Run the top function with scalar arguments `args` and array-parameter
    /// contents `arrays` (in parameter order; lengths must match).
    ///
    /// # Errors
    /// Returns an [`InterpError`] on division by zero, out-of-bounds access,
    /// argument mismatches, or step-budget exhaustion.
    pub fn run_top(&mut self, args: &[i64], arrays: &[Vec<i64>]) -> Result<RunResult, InterpError> {
        self.run_function(self.module.top, args, arrays)
    }

    /// Run a specific function.
    ///
    /// # Errors
    /// See [`Interpreter::run_top`].
    pub fn run_function(
        &mut self,
        func: FuncId,
        args: &[i64],
        arrays: &[Vec<i64>],
    ) -> Result<RunResult, InterpError> {
        let f = self.module.function(func);
        // Array storage: interface arrays initialized from inputs, locals
        // zero-filled.
        let mut store: Vec<Vec<i64>> = Vec::with_capacity(f.arrays.len());
        let mut provided = arrays.iter();
        for a in &f.arrays {
            if a.is_param {
                let v = provided
                    .next()
                    .ok_or_else(|| InterpError::ArrayArg(format!("missing `{}`", a.name)))?;
                if v.len() != a.len as usize {
                    return Err(InterpError::ArrayArg(format!(
                        "`{}` expects {} elements, got {}",
                        a.name,
                        a.len,
                        v.len()
                    )));
                }
                store.push(v.clone());
            } else {
                store.push(vec![0; a.len as usize]);
            }
        }
        let n_scalars = f
            .params
            .iter()
            .filter(|p| matches!(p.kind, crate::function::ParamKind::Scalar))
            .count();
        if args.len() != n_scalars {
            return Err(InterpError::ArgCount {
                expected: n_scalars,
                got: args.len(),
            });
        }

        let mut values: Vec<i64> = vec![0; f.ops.len()];
        let mut ret = None;
        self.exec_region(
            f,
            &f.body,
            args,
            &mut store,
            &mut values,
            &mut ret,
            &HashMap::new(),
        )?;

        // Return final interface-array contents in parameter order.
        let out_arrays = f
            .arrays
            .iter()
            .filter(|a| a.is_param)
            .map(|a| store[a.id.index()].clone())
            .collect();
        Ok(RunResult {
            ret,
            arrays: out_arrays,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_region(
        &mut self,
        f: &Function,
        region: &Region,
        args: &[i64],
        store: &mut [Vec<i64>],
        values: &mut [i64],
        ret: &mut Option<i64>,
        phi_env: &HashMap<OpId, i64>,
    ) -> Result<(), InterpError> {
        match region {
            Region::Block(ops) => {
                for &id in ops {
                    self.exec_op(f, id, args, store, values, ret, phi_env)?;
                }
                Ok(())
            }
            Region::Seq(rs) => {
                for r in rs {
                    self.exec_region(f, r, args, store, values, ret, phi_env)?;
                }
                Ok(())
            }
            Region::Loop {
                body, trip_count, ..
            } => {
                // Identify this loop's phis (direct ops with Phi kind).
                let mut direct = Vec::new();
                collect_direct(body, &mut direct);
                let phis: Vec<OpId> = direct
                    .iter()
                    .copied()
                    .filter(|&id| f.op(id).kind == OpKind::Phi)
                    .collect();
                for iter in 0..*trip_count {
                    let mut env = phi_env.clone();
                    for &p in &phis {
                        let op = f.op(p);
                        let v = if op.operands.is_empty() {
                            // Induction variable: the iteration index.
                            wrap(iter as i64, op.ty)
                        } else if iter == 0 {
                            values[op.operands[0].src.index()]
                        } else {
                            // Latch value from the previous iteration.
                            values[op.operands[1].src.index()]
                        };
                        env.insert(p, v);
                    }
                    self.exec_region(f, body, args, store, values, ret, &env)?;
                }
                // After the loop, the phi's register holds the final latch
                // value — that is what ops after the loop observe.
                for &p in &phis {
                    let op = f.op(p);
                    if op.operands.len() >= 2 {
                        values[p.index()] = wrap(values[op.operands[1].src.index()], op.ty);
                    }
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_op(
        &mut self,
        f: &Function,
        id: OpId,
        args: &[i64],
        store: &mut [Vec<i64>],
        values: &mut [i64],
        ret: &mut Option<i64>,
        phi_env: &HashMap<OpId, i64>,
    ) -> Result<(), InterpError> {
        if self.budget == 0 {
            return Err(InterpError::StepBudget);
        }
        self.budget -= 1;
        let op = f.op(id);
        let v = |n: usize| values[op.operands[n].src.index()];
        let value = match op.kind {
            OpKind::Const => op.imm.unwrap_or(0),
            OpKind::Read => args.get(op.imm.unwrap_or(0) as usize).copied().unwrap_or(0),
            OpKind::Phi => *phi_env.get(&id).unwrap_or(&0),
            OpKind::Add => v(0).wrapping_add(v(1)),
            OpKind::Sub => v(0).wrapping_sub(v(1)),
            OpKind::Mul => v(0).wrapping_mul(v(1)),
            OpKind::SDiv | OpKind::UDiv => {
                let d = v(1);
                if d == 0 {
                    return Err(InterpError::DivideByZero(id));
                }
                v(0).wrapping_div(d)
            }
            OpKind::SRem | OpKind::URem => {
                let d = v(1);
                if d == 0 {
                    return Err(InterpError::DivideByZero(id));
                }
                v(0).wrapping_rem(d)
            }
            OpKind::And => v(0) & v(1),
            OpKind::Or => v(0) | v(1),
            OpKind::Xor => v(0) ^ v(1),
            OpKind::Not => !v(0),
            OpKind::Shl => v(0).wrapping_shl(v(1) as u32 & 63),
            OpKind::LShr => {
                // Logical shift over the operand's width.
                let w = f.op(op.operands[0].src).ty.bits();
                let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                (((v(0) as u64) & mask) >> (v(1) as u32 & 63)) as i64
            }
            OpKind::AShr => v(0).wrapping_shr(v(1) as u32 & 63),
            OpKind::ICmp | OpKind::FCmp => {
                let pred = CmpPred::from_imm(op.imm.unwrap_or(0)).unwrap_or(CmpPred::Eq);
                pred.eval(v(0), v(1)) as i64
            }
            OpKind::Select | OpKind::Mux => {
                if v(0) != 0 {
                    v(1)
                } else {
                    v(2)
                }
            }
            OpKind::Load => {
                let arr = op.array.expect("load without array");
                let idx = v(0);
                self.bounds(f, arr, idx, id)?;
                store[arr.index()][idx as usize]
            }
            OpKind::Store => {
                let arr = op.array.expect("store without array");
                let idx = v(0);
                self.bounds(f, arr, idx, id)?;
                let elem = f.array(arr).elem;
                store[arr.index()][idx as usize] = wrap(v(1), elem);
                0
            }
            OpKind::ZExt => {
                let from = f.op(op.operands[0].src).ty;
                let w = from.bits();
                let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                ((v(0) as u64) & mask) as i64
            }
            OpKind::SExt | OpKind::Trunc => v(0),
            OpKind::Sqrt => {
                let x = v(0).max(0) as u64;
                (x as f64).sqrt().floor() as i64
            }
            OpKind::Call => {
                let callee = op.callee.expect("call without callee");
                let callee_f = self.module.function(callee);
                let call_args: Vec<i64> =
                    op.operands.iter().map(|o| values[o.src.index()]).collect();
                // Array args alias caller arrays: copy in, run, copy back.
                let in_arrays: Vec<Vec<i64>> = op
                    .array_args
                    .iter()
                    .map(|a| store[a.index()].clone())
                    .collect();
                let result = self.run_function(callee, &call_args, &in_arrays)?;
                for (caller_arr, out) in op.array_args.iter().zip(result.arrays) {
                    store[caller_arr.index()] = out;
                }
                let _ = callee_f;
                result.ret.unwrap_or(0)
            }
            OpKind::Return => {
                if let Some(o) = op.operands.first() {
                    *ret = Some(values[o.src.index()]);
                }
                0
            }
            OpKind::Alloca | OpKind::Write | OpKind::Port | OpKind::Branch | OpKind::Switch => 0,
            OpKind::GetElementPtr | OpKind::BitConcat | OpKind::BitSelect => {
                return Err(InterpError::Unsupported(op.kind))
            }
            OpKind::FAdd | OpKind::FSub | OpKind::FMul | OpKind::FDiv => {
                return Err(InterpError::Unsupported(op.kind))
            }
        };
        values[id.index()] = wrap(value, op.ty);
        Ok(())
    }

    fn bounds(&self, f: &Function, arr: ArrayId, idx: i64, op: OpId) -> Result<(), InterpError> {
        let len = f.array(arr).len;
        if idx < 0 || idx as u32 >= len {
            return Err(InterpError::OutOfBounds {
                op,
                index: idx,
                len,
            });
        }
        Ok(())
    }
}

fn collect_direct(r: &Region, out: &mut Vec<OpId>) {
    match r {
        Region::Block(ops) => out.extend_from_slice(ops),
        Region::Seq(rs) => rs.iter().for_each(|r| collect_direct(r, out)),
        Region::Loop { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{compile, compile_to_ir, compile_with_directives, finish};

    fn run(src: &str, args: &[i64], arrays: &[Vec<i64>]) -> RunResult {
        let m = compile(src).unwrap();
        Interpreter::new(&m).run_top(args, arrays).unwrap()
    }

    #[test]
    fn arithmetic_and_compare() {
        let r = run(
            "int32 f(int32 x, int32 y) { return x * y + (x > y ? 1 : 0); }",
            &[6, 7],
            &[],
        );
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn loops_accumulate() {
        let r = run(
            "int32 f(int32 a[8]) { int32 s = 0; for (i = 0; i < 8; i++) { s = s + a[i]; } return s; }",
            &[],
            &[(1..=8).collect()],
        );
        assert_eq!(r.ret, Some(36));
    }

    #[test]
    fn stores_visible_in_result() {
        let r = run(
            "void f(int8 a[4], int8 v) { for (i = 0; i < 4; i++) { a[i] = v + i; } }",
            &[10],
            &[vec![0; 4]],
        );
        assert_eq!(r.arrays[0], vec![10, 11, 12, 13]);
    }

    #[test]
    fn predication_matches_if_semantics() {
        let r = run(
            "int32 f(int32 x) { int32 y = 0; if (x > 5) { y = 1; } else { y = 2; } return y; }",
            &[9],
            &[],
        );
        assert_eq!(r.ret, Some(1));
        let r = run(
            "int32 f(int32 x) { int32 y = 0; if (x > 5) { y = 1; } else { y = 2; } return y; }",
            &[3],
            &[],
        );
        assert_eq!(r.ret, Some(2));
    }

    #[test]
    fn calls_pass_scalars_and_arrays() {
        let r = run(
            "void fill(int32 a[4], int32 v) { for (i = 0; i < 4; i++) { a[i] = v; } }\n\
             int32 f(int32 a[4]) { fill(a, 9); return a[3]; }",
            &[],
            &[vec![0; 4]],
        );
        assert_eq!(r.ret, Some(9));
        assert_eq!(r.arrays[0], vec![9; 4]);
    }

    #[test]
    fn builtins_evaluate() {
        let r = run(
            "int32 f(int32 x) { return min(x, 3) + max(x, 3) + abs(0 - x) + popcount(x) + sqrt(x); }",
            &[16],
            &[],
        );
        // min=3, max=16, abs=16, popcount(16)=1, sqrt(16)=4.
        assert_eq!(r.ret, Some(3 + 16 + 16 + 1 + 4));
    }

    #[test]
    fn narrow_types_wrap() {
        let r = run("int8 f(int8 x) { return x + 100; }", &[100], &[]);
        // 200 wraps to -56 in int8... via int9 add then trunc to int8 on
        // return: 200 -> 8-bit -56.
        assert_eq!(r.ret, Some(wrap(200, IrType::int(8))));
    }

    #[test]
    fn divide_by_zero_reported() {
        let m = compile("int32 f(int32 x) { return 10 / x; }").unwrap();
        let err = Interpreter::new(&m).run_top(&[0], &[]).unwrap_err();
        assert!(matches!(err, InterpError::DivideByZero(_)));
    }

    #[test]
    fn unrolling_preserves_semantics() {
        let src = "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k + i; } return s; }";
        let plain = compile(src).unwrap();
        let arrays = vec![(0..16).map(|i| (i * 3 % 7) as i64).collect::<Vec<_>>()];
        let expected = Interpreter::new(&plain).run_top(&[5], &arrays).unwrap();
        for factor in [2u32, 4, 16] {
            let (m, mut d) = compile_to_ir(src, "t").unwrap();
            d.set_unroll("f/loop0", factor);
            let m = finish(m, &d).unwrap();
            let got = Interpreter::new(&m).run_top(&[5], &arrays).unwrap();
            assert_eq!(got.ret, expected.ret, "unroll factor {factor}");
        }
    }

    #[test]
    fn inlining_preserves_semantics() {
        let src = "int32 g(int32 a[4], int32 k) { int32 s = 0; for (i = 0; i < 4; i++) { s = s + a[i] * k; } return s; }\n\
                   int32 f(int32 a[4], int32 b[4]) { return g(a, 2) - g(b, 3); }";
        let arrays = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]];
        let plain = compile(src).unwrap();
        let expected = Interpreter::new(&plain).run_top(&[], &arrays).unwrap();
        let mut d = crate::directives::Directives::new();
        d.set_inline("g", true);
        let inlined = compile_with_directives(src, "t", &d).unwrap();
        let got = Interpreter::new(&inlined).run_top(&[], &arrays).unwrap();
        assert_eq!(got.ret, expected.ret);
        assert_eq!(
            expected.ret,
            Some(2 * (1 + 2 + 3 + 4) - 3 * (5 + 6 + 7 + 8))
        );
    }

    #[test]
    fn nested_unroll_preserves_semantics() {
        let src = "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { s = s + a[i * 4 + j] * (i + 1); } } return s; }";
        let arrays = vec![(0..16).map(|i| i as i64 + 1).collect::<Vec<_>>()];
        let plain = compile(src).unwrap();
        let expected = Interpreter::new(&plain).run_top(&[], &arrays).unwrap();
        let (m, mut d) = compile_to_ir(src, "t").unwrap();
        d.set_full_unroll("f/loop0");
        d.set_full_unroll("f/loop1");
        let m = finish(m, &d).unwrap();
        let got = Interpreter::new(&m).run_top(&[], &arrays).unwrap();
        assert_eq!(got.ret, expected.ret);
    }
}
