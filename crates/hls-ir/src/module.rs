//! IR modules: a set of functions with a designated top.

use crate::function::{FuncId, Function};
use crate::op::OpKind;
use std::collections::HashMap;

/// A compilation unit: all functions of a design plus the top function the
/// HLS flow synthesizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Function arena; `FuncId(i)` indexes `functions[i]`.
    pub functions: Vec<Function>,
    /// Designated top-level function.
    pub top: FuncId,
    /// Name of the design (used in reports).
    pub name: String,
}

impl Module {
    /// An empty module named `name` (top defaults to the first function
    /// added).
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            functions: Vec::new(),
            top: FuncId(0),
            name: name.into(),
        }
    }

    /// Append a function, returning its id.
    pub fn push_function(&mut self, mut f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        f.id = id;
        self.functions.push(f);
        id
    }

    /// The function with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to the function with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// The top-level function.
    pub fn top_function(&self) -> &Function {
        self.function(self.top)
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Id of the function named `name`.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.function_by_name(name).map(|f| f.id)
    }

    /// Call graph: for each function, which functions it calls (with call
    /// multiplicity).
    pub fn call_graph(&self) -> HashMap<FuncId, HashMap<FuncId, u32>> {
        let mut g = HashMap::new();
        for f in &self.functions {
            let entry: &mut HashMap<FuncId, u32> = g.entry(f.id).or_default();
            for op in &f.ops {
                if op.kind == OpKind::Call {
                    if let Some(callee) = op.callee {
                        *entry.entry(callee).or_insert(0) += 1;
                    }
                }
            }
        }
        g
    }

    /// Functions reachable from the top, in reverse-postorder (callees before
    /// callers). Useful for bottom-up synthesis.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        let cg = self.call_graph();
        let mut order = Vec::new();
        let mut state = vec![0u8; self.functions.len()]; // 0 unvisited, 1 visiting, 2 done
        fn visit(
            id: FuncId,
            cg: &HashMap<FuncId, HashMap<FuncId, u32>>,
            state: &mut [u8],
            order: &mut Vec<FuncId>,
        ) {
            match state[id.index()] {
                1 => panic!("recursive call cycle involving function {}", id.0),
                2 => return,
                _ => {}
            }
            state[id.index()] = 1;
            if let Some(callees) = cg.get(&id) {
                let mut keys: Vec<_> = callees.keys().copied().collect();
                keys.sort();
                for c in keys {
                    visit(c, cg, state, order);
                }
            }
            state[id.index()] = 2;
            order.push(id);
        }
        visit(self.top, &cg, &mut state, &mut order);
        order
    }

    /// Total number of operations across all functions.
    pub fn total_ops(&self) -> usize {
        self.functions.iter().map(|f| f.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpId, Operation};
    use crate::types::IrType;

    fn call_op(f: &mut Function, callee: FuncId) {
        let mut op = Operation::new(OpId(0), OpKind::Call, IrType::int(32));
        op.callee = Some(callee);
        f.push_op(op);
    }

    #[test]
    fn bottom_up_order_puts_callees_first() {
        let mut m = Module::new("t");
        let leaf = m.push_function(Function::new(FuncId(0), "leaf"));
        let mid_f = {
            let mut f = Function::new(FuncId(0), "mid");
            call_op(&mut f, leaf);
            f
        };
        let mid = m.push_function(mid_f);
        let top_f = {
            let mut f = Function::new(FuncId(0), "top");
            call_op(&mut f, mid);
            call_op(&mut f, leaf);
            f
        };
        let top = m.push_function(top_f);
        m.top = top;
        let order = m.bottom_up_order();
        let pos = |id: FuncId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(leaf) < pos(mid));
        assert!(pos(mid) < pos(top));
        assert_eq!(order.len(), 3);
    }

    #[test]
    #[should_panic]
    fn recursion_detected() {
        let mut m = Module::new("t");
        let a = m.push_function(Function::new(FuncId(0), "a"));
        call_op(m.function_mut(a), a);
        m.top = a;
        m.bottom_up_order();
    }

    #[test]
    fn call_graph_multiplicity() {
        let mut m = Module::new("t");
        let leaf = m.push_function(Function::new(FuncId(0), "leaf"));
        let mut f = Function::new(FuncId(0), "top");
        call_op(&mut f, leaf);
        call_op(&mut f, leaf);
        let top = m.push_function(f);
        m.top = top;
        let cg = m.call_graph();
        assert_eq!(cg[&top][&leaf], 2);
    }

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("t");
        m.push_function(Function::new(FuncId(0), "foo"));
        assert!(m.function_by_name("foo").is_some());
        assert!(m.function_by_name("bar").is_none());
    }
}
