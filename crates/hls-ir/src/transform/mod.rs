//! Directive-driven IR transforms.
//!
//! Applied in this order by [`frontend::finish`](crate::frontend::finish):
//! [`inline`] → [`unroll`] → [`const_fold`] → [`dce`]. All transforms keep
//! the IR verifiable (see [`verify`](crate::verify)).

pub mod const_fold;
pub mod dce;
pub mod inline;
pub mod unroll;

use crate::function::{Function, Region};
use crate::op::OpId;
use std::collections::HashMap;

/// Rebuild a function's op arena to contain exactly the ops placed in its
/// body region, in program order, remapping all ids.
///
/// # Panics
/// Panics if an operand references an op that is not placed in the body.
pub fn compact(f: &mut Function) {
    let order = f.body.ops_in_order();
    let mut remap: HashMap<OpId, OpId> = HashMap::with_capacity(order.len());
    for (i, &old) in order.iter().enumerate() {
        remap.insert(old, OpId(i as u32));
    }
    let mut new_ops = Vec::with_capacity(order.len());
    for &old in &order {
        let mut op = f.ops[old.index()].clone();
        op.id = remap[&old];
        for operand in &mut op.operands {
            operand.src = *remap
                .get(&operand.src)
                .unwrap_or_else(|| panic!("operand {} of {} not placed in body", operand.src, old));
        }
        new_ops.push(op);
    }
    f.ops = new_ops;
    f.body = remap_region(&f.body, &remap);
}

/// Clone a region tree with op ids rewritten through `remap` (ids missing
/// from the map are dropped).
pub(crate) fn remap_region(r: &Region, remap: &HashMap<OpId, OpId>) -> Region {
    match r {
        Region::Block(ops) => {
            Region::Block(ops.iter().filter_map(|id| remap.get(id).copied()).collect())
        }
        Region::Seq(rs) => Region::Seq(rs.iter().map(|r| remap_region(r, remap)).collect()),
        Region::Loop {
            label,
            body,
            trip_count,
            pipeline_ii,
        } => Region::Loop {
            label: label.clone(),
            body: Box::new(remap_region(body, remap)),
            trip_count: *trip_count,
            pipeline_ii: *pipeline_ii,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::IrType;

    #[test]
    fn compact_is_identity_on_dense_functions() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let y = b.binary(OpKind::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        let before = f.clone();
        compact(&mut f);
        assert_eq!(f.ops.len(), before.ops.len());
        assert_eq!(f.body.ops_in_order(), before.body.ops_in_order());
    }

    #[test]
    fn compact_drops_orphans() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        b.ret(Some(x));
        let mut f = b.finish();
        // Orphan op in the arena, not in the body.
        f.push_op(crate::op::Operation::new(
            OpId(0),
            OpKind::Add,
            IrType::int(8),
        ));
        assert_eq!(f.ops.len(), 3);
        // Must remove it from arena since it's not in the region...
        // compact keeps only body ops.
        compact(&mut f);
        assert_eq!(f.ops.len(), 2);
    }
}
