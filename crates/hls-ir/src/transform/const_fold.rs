//! Constant folding.
//!
//! Ops whose operands are all constants are rewritten in place into `Const`
//! ops (DCE then removes the orphaned inputs). This mirrors the HLS
//! front-end simplification the paper relies on: after unrolling, index
//! arithmetic like `iv * 4 + 2` collapses to a constant, which changes the
//! dataflow the features observe.

use crate::function::Function;
use crate::module::Module;
use crate::op::{CmpPred, OpKind};
use crate::types::IrType;

/// Fold constants in every function; returns the number of folded ops.
pub fn fold_module(m: &mut Module) -> usize {
    m.functions.iter_mut().map(fold_function).sum()
}

/// Fold constants in one function until fixpoint; returns folded-op count.
pub fn fold_function(f: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut changed = false;
        for i in 0..f.ops.len() {
            if f.ops[i].kind == OpKind::Const || !f.ops[i].kind.has_result() {
                continue;
            }
            let Some(value) = try_fold(f, i) else {
                continue;
            };
            let ty = f.ops[i].ty;
            let op = &mut f.ops[i];
            op.kind = OpKind::Const;
            op.imm = Some(wrap_to_type(value, ty));
            op.operands.clear();
            op.array = None;
            op.callee = None;
            changed = true;
            folded += 1;
        }
        if !changed {
            return folded;
        }
    }
}

fn try_fold(f: &Function, i: usize) -> Option<i64> {
    let op = &f.ops[i];
    let cv = |n: usize| -> Option<i64> { f.op(op.operands.get(n)?.src).const_value() };
    Some(match op.kind {
        OpKind::Add => cv(0)?.wrapping_add(cv(1)?),
        OpKind::Sub => cv(0)?.wrapping_sub(cv(1)?),
        OpKind::Mul => cv(0)?.wrapping_mul(cv(1)?),
        OpKind::And => cv(0)? & cv(1)?,
        OpKind::Or => cv(0)? | cv(1)?,
        OpKind::Xor => cv(0)? ^ cv(1)?,
        OpKind::Not => !cv(0)?,
        OpKind::Shl => cv(0)?.checked_shl(cv(1)?.try_into().ok()?)?,
        OpKind::LShr => ((cv(0)? as u64).checked_shr(cv(1)?.try_into().ok()?)?) as i64,
        OpKind::AShr => cv(0)?.checked_shr(cv(1)?.try_into().ok()?)?,
        OpKind::SDiv | OpKind::UDiv => cv(0)?.checked_div(cv(1)?)?,
        OpKind::SRem | OpKind::URem => cv(0)?.checked_rem(cv(1)?)?,
        OpKind::ICmp => {
            let pred = CmpPred::from_imm(op.imm?)?;
            pred.eval(cv(0)?, cv(1)?) as i64
        }
        OpKind::Select => {
            let c = cv(0)?;
            if c != 0 {
                cv(1)?
            } else {
                cv(2)?
            }
        }
        OpKind::ZExt | OpKind::SExt | OpKind::Trunc => cv(0)?,
        _ => return None,
    })
}

/// Wrap a folded value to the bit range of `ty` (sign-extending if signed).
fn wrap_to_type(v: i64, ty: IrType) -> i64 {
    let bits = ty.bits();
    if bits >= 64 {
        return v;
    }
    let mask = (1u64 << bits) - 1;
    let u = (v as u64) & mask;
    if ty.is_signed() && (u >> (bits - 1)) & 1 == 1 {
        (u | !mask) as i64
    } else {
        u as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::transform::dce::dce_function;

    #[test]
    fn arithmetic_chain_folds() {
        let mut b = FunctionBuilder::new("f");
        let a = b.constant(3, IrType::int(8));
        let c = b.constant(4, IrType::int(8));
        let m = b.binary(OpKind::Mul, a, c);
        let one = b.constant(1, IrType::int(8));
        let s = b.binary(OpKind::Add, m, one);
        b.ret(Some(s));
        let mut f = b.finish();
        let folded = fold_function(&mut f);
        assert_eq!(folded, 2);
        assert_eq!(f.op(s).const_value(), Some(13));
        dce_function(&mut f);
        // only the folded const and the return remain
        assert_eq!(f.ops.len(), 2);
    }

    #[test]
    fn select_on_const_cond_folds() {
        let mut b = FunctionBuilder::new("f");
        let c = b.constant(1, IrType::bool());
        let x = b.constant(10, IrType::int(8));
        let y = b.constant(20, IrType::int(8));
        let s = b.select(c, x, y);
        b.ret(Some(s));
        let mut f = b.finish();
        fold_function(&mut f);
        assert_eq!(f.op(s).const_value(), Some(10));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut b = FunctionBuilder::new("f");
        let x = b.constant(10, IrType::int(8));
        let z = b.constant(0, IrType::int(8));
        let d = b.binary(OpKind::SDiv, x, z);
        b.ret(Some(d));
        let mut f = b.finish();
        fold_function(&mut f);
        assert_eq!(f.op(d).kind, OpKind::SDiv, "div by zero left alone");
    }

    #[test]
    fn wrapping_respects_type() {
        assert_eq!(wrap_to_type(255, IrType::uint(8)), 255);
        assert_eq!(wrap_to_type(255, IrType::int(8)), -1);
        assert_eq!(wrap_to_type(256, IrType::uint(8)), 0);
        assert_eq!(wrap_to_type(-1, IrType::uint(4)), 15);
    }

    #[test]
    fn non_const_operands_left_alone() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let c = b.constant(2, IrType::int(8));
        let s = b.binary(OpKind::Add, x, c);
        b.ret(Some(s));
        let mut f = b.finish();
        assert_eq!(fold_function(&mut f), 0);
    }
}
