//! Function inlining.
//!
//! Splices the body of an inlined callee into each call site: scalar
//! parameters are substituted by the call arguments, array parameters are
//! redirected to the caller's arrays, locals are cloned, and uses of the
//! call's result are rewired to the callee's returned value. Loop labels are
//! preserved so unroll/pipeline directives keyed on the callee still apply
//! to every inlined copy.

use crate::directives::Directives;
use crate::function::{ArrayId, Function, Region};
use crate::module::Module;
use crate::op::{OpId, OpKind};
use std::collections::HashMap;

/// Inline every function whose effective inline setting is on (explicit
/// directive wins over the function's own `inline` flag) into all callers.
pub fn inline_module(m: &mut Module, directives: &Directives) {
    // Process callees bottom-up so nested inlining composes.
    let order = m.bottom_up_order();
    for &callee_id in &order {
        let callee = m.function(callee_id);
        let effective = directives.inline_opt(&callee.name).unwrap_or(callee.inline);
        if !effective || callee_id == m.top {
            continue;
        }
        let callee = m.function(callee_id).clone();
        for fi in 0..m.functions.len() {
            if fi == callee_id.index() {
                continue;
            }
            loop {
                let caller = &m.functions[fi];
                let Some(call_id) = caller
                    .ops
                    .iter()
                    .find(|o| o.kind == OpKind::Call && o.callee == Some(callee_id))
                    .map(|o| o.id)
                else {
                    break;
                };
                inline_one_call(&mut m.functions[fi], call_id, &callee);
            }
        }
    }
    // Inlining orphans the call ops; compact every arena.
    for f in &mut m.functions {
        super::compact(f);
    }
}

/// Inline `callee` at `call_id` inside `caller`.
fn inline_one_call(caller: &mut Function, call_id: OpId, callee: &Function) {
    let call = caller.ops[call_id.index()].clone();

    // Map callee array ids to caller array ids.
    let mut array_map: HashMap<ArrayId, ArrayId> = HashMap::new();
    let mut arg_arrays = call.array_args.iter().copied();
    for a in &callee.arrays {
        if a.is_param {
            let target = arg_arrays
                .next()
                .expect("call has fewer array args than callee array params");
            array_map.insert(a.id, target);
        } else {
            // Clone the local array into the caller.
            let new_id = ArrayId(caller.arrays.len() as u32);
            let mut decl = a.clone();
            decl.id = new_id;
            decl.name = format!("{}.{}", callee.name, a.name);
            caller.arrays.push(decl);
            array_map.insert(a.id, new_id);
        }
    }

    // Clone callee ops (two passes: create, then fix operands).
    let mut op_map: HashMap<OpId, OpId> = HashMap::new();
    let mut scalar_arg = call.operands.iter();
    let mut ret_val: Option<OpId> = None;
    let mut cloned: Vec<OpId> = Vec::new();
    for op in &callee.ops {
        match op.kind {
            OpKind::Read => {
                // Scalar parameter: substitute the call argument.
                let arg = scalar_arg
                    .next()
                    .expect("call has fewer scalar args than callee params");
                op_map.insert(op.id, arg.src);
            }
            OpKind::Return => {
                // Remember the returned value; drop the op.
                if let Some(v) = op.operands.first() {
                    ret_val = Some(v.src); // fixed up after operand pass
                }
            }
            _ => {
                let mut new_op = op.clone();
                new_op.array = op.array.map(|a| array_map[&a]);
                if !new_op.name.is_empty() {
                    new_op.name = format!("{}.{}", callee.name, new_op.name);
                }
                let new_id = caller.push_op(new_op);
                op_map.insert(op.id, new_id);
                cloned.push(new_id);
            }
        }
    }
    // Fix operands of cloned ops.
    for &id in &cloned {
        let op = &mut caller.ops[id.index()];
        for operand in &mut op.operands {
            if let Some(&mapped) = op_map.get(&operand.src) {
                operand.src = mapped;
            }
        }
    }
    let ret_val = ret_val.map(|v| op_map.get(&v).copied().unwrap_or(v));

    // Rewire uses of the call result.
    if let Some(rv) = ret_val {
        for op in &mut caller.ops {
            for operand in &mut op.operands {
                if operand.src == call_id {
                    operand.src = rv;
                }
            }
        }
    }

    // Clone the callee region with mapped ids (Read/Return ids vanish from
    // blocks since they are not in op_map as *placed* clones — remap drops
    // missing ids, but Read ids map to caller args which must not be placed
    // again, so drop them explicitly).
    let mut region_map = op_map.clone();
    for (idx, p) in callee.params.iter().enumerate() {
        let _ = (idx, p);
    }
    for op in &callee.ops {
        if matches!(op.kind, OpKind::Read | OpKind::Return) {
            region_map.remove(&op.id);
        }
    }
    let inlined_region = super::remap_region(&callee.body, &region_map);

    // Splice into the caller body in place of the call op, then neutralize
    // the orphaned call op so the caller scan does not find it again.
    caller.body = splice(&caller.body, call_id, &inlined_region);
    let call_op = &mut caller.ops[call_id.index()];
    call_op.callee = None;
    call_op.kind = OpKind::Const;
    call_op.imm = Some(0);
    call_op.operands.clear();
    call_op.array_args.clear();
}

/// Replace op `target` inside a region tree by `insert` (the op is removed
/// from its block and the region is inserted at its position).
fn splice(r: &Region, target: OpId, insert: &Region) -> Region {
    match r {
        Region::Block(ops) => {
            if let Some(pos) = ops.iter().position(|&id| id == target) {
                let before: Vec<OpId> = ops[..pos].to_vec();
                let after: Vec<OpId> = ops[pos + 1..].to_vec();
                let mut seq = Vec::new();
                if !before.is_empty() {
                    seq.push(Region::Block(before));
                }
                seq.push(insert.clone());
                if !after.is_empty() {
                    seq.push(Region::Block(after));
                }
                Region::Seq(seq)
            } else {
                r.clone()
            }
        }
        Region::Seq(rs) => Region::Seq(rs.iter().map(|r| splice(r, target, insert)).collect()),
        Region::Loop {
            label,
            body,
            trip_count,
            pipeline_ii,
        } => Region::Loop {
            label: label.clone(),
            body: Box::new(splice(body, target, insert)),
            trip_count: *trip_count,
            pipeline_ii: *pipeline_ii,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::Directives;
    use crate::frontend::compile_to_ir;
    use crate::op::OpKind;
    use crate::verify::verify_module;

    fn build(src: &str) -> (Module, Directives) {
        compile_to_ir(src, "t").unwrap()
    }

    #[test]
    fn simple_inline_removes_call() {
        let (mut m, mut d) =
            build("int32 g(int32 x) { return x * 3; }\nint32 f(int32 x) { return g(x) + 1; }");
        d.set_inline("g", true);
        inline_module(&mut m, &d);
        let f = m.function_by_name("f").unwrap();
        assert!(f.call_sites().is_empty());
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.function_by_name("f").unwrap();
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Mul.index()], 1, "callee body spliced in");
    }

    #[test]
    fn inline_with_array_param_redirects_accesses() {
        let (mut m, mut d) = build(
            "int32 g(int32 a[8]) { return a[0] + a[1]; }\nint32 f(int32 buf[8]) { return g(buf); }",
        );
        d.set_inline("g", true);
        inline_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.function_by_name("f").unwrap();
        assert!(f.call_sites().is_empty());
        // Loads now reference the caller's buf array.
        for op in &f.ops {
            if op.kind == OpKind::Load {
                assert_eq!(f.array(op.array.unwrap()).name, "buf");
            }
        }
    }

    #[test]
    fn inline_clones_local_arrays() {
        let (mut m, mut d) = build(
            "int32 g(int32 x) { int32 t[4]; t[0] = x; return t[0]; }\nint32 f(int32 x) { return g(x) + g(x); }",
        );
        d.set_inline("g", true);
        inline_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.function_by_name("f").unwrap();
        // Two call sites -> two cloned local arrays.
        assert_eq!(
            f.arrays.iter().filter(|a| a.name.contains("g.t")).count(),
            2
        );
    }

    #[test]
    fn multi_level_inline() {
        let (mut m, mut d) = build(
            "int32 h(int32 x) { return x + 1; }\nint32 g(int32 x) { return h(x) * 2; }\nint32 f(int32 x) { return g(x); }",
        );
        d.set_inline("g", true);
        d.set_inline("h", true);
        inline_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.function_by_name("f").unwrap();
        assert!(f.call_sites().is_empty());
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Add.index()], 1);
        assert_eq!(h[OpKind::Mul.index()], 1);
    }
}
