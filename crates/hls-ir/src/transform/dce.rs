//! Dead-code elimination.
//!
//! Roots are side-effecting ops (`Store`, `Write`, `Return`, `Call`,
//! `Alloca`, `Branch`, `Switch`); everything else survives only if a live op
//! (transitively) consumes it. The pass also compacts the op arena.

use crate::function::Function;
use crate::module::Module;
use crate::op::{OpId, OpKind};
use std::collections::HashMap;

/// Run DCE on every function of a module.
pub fn dce_module(m: &mut Module) {
    for f in &mut m.functions {
        dce_function(f);
    }
}

/// Remove dead ops from one function and compact its arena. Returns the
/// number of ops removed.
pub fn dce_function(f: &mut Function) -> usize {
    let placed = f.body.ops_in_order();
    let mut live = vec![false; f.ops.len()];
    let mut stack: Vec<OpId> = Vec::new();
    for &id in &placed {
        let op = f.op(id);
        if matches!(
            op.kind,
            OpKind::Store
                | OpKind::Write
                | OpKind::Return
                | OpKind::Call
                | OpKind::Alloca
                | OpKind::Branch
                | OpKind::Switch
        ) {
            stack.push(id);
            live[id.index()] = true;
        }
    }
    while let Some(id) = stack.pop() {
        // Phis can form cycles through their latch; the visited bitmap
        // terminates the walk.
        let operands = f.op(id).operands.clone();
        for o in operands {
            if !live[o.src.index()] {
                live[o.src.index()] = true;
                stack.push(o.src);
            }
        }
    }
    let before = placed.len();
    // Keep only live ops in the region, then compact.
    let keep: HashMap<OpId, OpId> = placed
        .iter()
        .filter(|id| live[id.index()])
        .map(|&id| (id, id))
        .collect();
    f.body = super::remap_region(&f.body, &keep);
    super::compact(f);
    before - keep.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::IrType;
    use crate::verify::verify_module;

    #[test]
    fn dead_arithmetic_removed() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let _dead = b.binary(OpKind::Mul, x, x);
        let live = b.binary(OpKind::Add, x, x);
        b.ret(Some(live));
        let mut f = b.finish();
        let removed = dce_function(&mut f);
        assert_eq!(removed, 1);
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Mul.index()], 0);
        assert_eq!(h[OpKind::Add.index()], 1);
    }

    #[test]
    fn stores_keep_their_inputs() {
        let mut b = FunctionBuilder::new("f");
        let a = b.array_param("a", IrType::int(8), 4);
        let i = b.constant(1, IrType::uint(2));
        let v = b.constant(7, IrType::int(8));
        b.store(a, i, v);
        let mut f = b.finish();
        let removed = dce_function(&mut f);
        assert_eq!(removed, 0);
    }

    #[test]
    fn phi_cycles_terminate() {
        // acc-phi referencing its own latch must not loop the marker.
        use crate::frontend::compile_to_ir;
        let (mut m, _) = compile_to_ir(
            "int32 f(int32 a[4]) { int32 acc = 0; for (i = 0; i < 4; i++) { acc = acc + a[i]; } return acc; }",
            "t",
        )
        .unwrap();
        dce_module(&mut m);
        verify_module(&m).unwrap();
        let h = m.top_function().kind_histogram();
        assert_eq!(h[OpKind::Phi.index()], 2);
    }

    #[test]
    fn unused_read_port_removed() {
        let mut b = FunctionBuilder::new("f");
        let _unused = b.scalar_param("x", IrType::int(8));
        let c = b.constant(1, IrType::int(8));
        b.ret(Some(c));
        let mut f = b.finish();
        dce_function(&mut f);
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Read.index()], 0);
    }
}
