//! Loop unrolling.
//!
//! Full unrolling replaces a [`Region::Loop`] by `trip_count` clones of its
//! body, substituting the induction variable by per-iteration constants and
//! chaining loop-carried `Phi`s through the copies. Partial unrolling (factor
//! `F`) keeps a loop of `ceil(trip/F)` iterations whose body contains `F`
//! clones.
//!
//! Every cloned op is tagged with a [`ReplicaTag`] recording which original
//! op it copies and which replica index it is — the marginal-sample filter
//! of the paper (§III-C1) groups samples by this tag.

use crate::directives::{Directives, FULL_UNROLL};
use crate::function::{Function, Region};
use crate::module::Module;
use crate::op::{OpId, OpKind, Operand, Operation, ReplicaTag};
use crate::types::IrType;
use std::collections::{HashMap, HashSet};

/// Apply unroll (and pipeline) directives to every function of a module,
/// then compact the op arenas.
pub fn unroll_module(m: &mut Module, directives: &Directives) {
    for fi in 0..m.functions.len() {
        let f = &mut m.functions[fi];
        let body = std::mem::replace(&mut f.body, Region::empty());
        let new_body = unroll_region(f, body, directives);
        f.body = new_body;
        super::compact(f);
    }
}

fn unroll_region(f: &mut Function, r: Region, d: &Directives) -> Region {
    match r {
        Region::Block(_) => r,
        Region::Seq(rs) => Region::Seq(rs.into_iter().map(|r| unroll_region(f, r, d)).collect()),
        Region::Loop {
            label,
            body,
            trip_count,
            pipeline_ii,
        } => {
            // Transform children first so nested unrolls compose.
            let body = unroll_region(f, *body, d);
            let ld = d.loop_directives(&label);
            let pipeline_ii = ld.pipeline_ii.or(pipeline_ii);
            let factor = ld.unroll;
            if factor <= 1 {
                return Region::Loop {
                    label,
                    body: Box::new(body),
                    trip_count,
                    pipeline_ii,
                };
            }
            if factor as u64 >= trip_count || factor == FULL_UNROLL {
                full_unroll(f, &body, trip_count)
            } else {
                // A factor that does not divide the trip count would
                // over-execute the tail; round down to the nearest divisor
                // (classic HLS behaviour for partial unrolling).
                let factor = effective_factor(trip_count, factor);
                if factor <= 1 {
                    return Region::Loop {
                        label,
                        body: Box::new(body),
                        trip_count,
                        pipeline_ii,
                    };
                }
                partial_unroll(f, &label, &body, trip_count, factor, pipeline_ii)
            }
        }
    }
}

/// Largest divisor of `trip_count` that is `<= requested`.
pub fn effective_factor(trip_count: u64, requested: u32) -> u32 {
    let mut f = (requested as u64).min(trip_count).max(1);
    while f > 1 && !trip_count.is_multiple_of(f) {
        f -= 1;
    }
    f as u32
}

/// Ops belonging directly to this loop level (excludes nested loop bodies).
fn direct_ops(r: &Region, out: &mut Vec<OpId>) {
    match r {
        Region::Block(ops) => out.extend_from_slice(ops),
        Region::Seq(rs) => rs.iter().for_each(|r| direct_ops(r, out)),
        Region::Loop { .. } => {}
    }
}

/// The loop's own phis: the induction variable (a `Phi` with no operands)
/// and the loop-carried scalars (`Phi` with `[init, latch]`).
fn loop_phis(f: &Function, body: &Region) -> (Option<OpId>, Vec<OpId>) {
    let mut direct = Vec::new();
    direct_ops(body, &mut direct);
    let mut iv = None;
    let mut carried = Vec::new();
    for &id in &direct {
        let op = f.op(id);
        if op.kind != OpKind::Phi {
            continue;
        }
        if op.operands.is_empty() {
            iv = Some(id);
        } else {
            carried.push(id);
        }
    }
    (iv, carried)
}

/// Compose replica tags across nested unrolls.
fn compose_tag(prev: Option<ReplicaTag>, original: OpId, index: u32, total: u32) -> ReplicaTag {
    match prev {
        Some(t) => ReplicaTag {
            group: t.group,
            index: index * t.total + t.index,
            total: total * t.total,
        },
        None => ReplicaTag {
            group: original.0,
            index,
            total,
        },
    }
}

/// Clone `body` once, mapping this loop's phis through `subst` and tagging
/// clones with replica `index`/`total`. Returns the cloned region and the
/// full id map (body ops -> clones).
fn clone_iteration(
    f: &mut Function,
    body: &Region,
    skip: &HashSet<OpId>,
    subst: &HashMap<OpId, OpId>,
    index: u32,
    total: u32,
) -> (Region, HashMap<OpId, OpId>) {
    let body_ops = body.ops_in_order();
    let mut map: HashMap<OpId, OpId> = subst.clone();
    let mut cloned_ids = Vec::new();
    for &id in &body_ops {
        if skip.contains(&id) {
            continue;
        }
        let mut op = f.ops[id.index()].clone();
        op.replica = Some(compose_tag(op.replica, id, index, total));
        let new_id = f.push_op(op);
        map.insert(id, new_id);
        cloned_ids.push(new_id);
    }
    // Fix operands (two-pass: forward refs to latches resolve via the map).
    for &id in &cloned_ids {
        let op = &mut f.ops[id.index()];
        let operands = std::mem::take(&mut op.operands);
        let fixed: Vec<Operand> = operands
            .into_iter()
            .map(|mut o| {
                if let Some(&m) = map.get(&o.src) {
                    o.src = m;
                }
                o
            })
            .collect();
        f.ops[id.index()].operands = fixed;
    }
    // The skipped phis are substituted in operands but must not appear in
    // the cloned region itself.
    let mut region_map = map.clone();
    for id in skip {
        region_map.remove(id);
    }
    (super::remap_region(body, &region_map), map)
}

/// Fully unroll: N copies, iv -> constant, carried phis chained.
fn full_unroll(f: &mut Function, body: &Region, trip_count: u64) -> Region {
    let (iv, carried) = loop_phis(f, body);
    let mut skip: HashSet<OpId> = carried.iter().copied().collect();
    if let Some(iv) = iv {
        skip.insert(iv);
    }
    // Initial values of carried vars.
    let mut current: HashMap<OpId, OpId> = carried
        .iter()
        .map(|&p| (p, f.op(p).operands[0].src))
        .collect();

    let total = trip_count as u32;
    let mut regions = Vec::new();
    let mut last_map: HashMap<OpId, OpId> = HashMap::new();
    for k in 0..trip_count {
        let mut subst: HashMap<OpId, OpId> = HashMap::new();
        if let Some(iv) = iv {
            let ty = f.op(iv).ty;
            let mut c = Operation::new(OpId(0), OpKind::Const, ty);
            c.imm = Some(k as i64);
            c.loc = f.op(iv).loc;
            c.replica = Some(compose_tag(None, iv, k as u32, total));
            let cid = f.push_op(c);
            regions.push(Region::Block(vec![cid]));
            subst.insert(iv, cid);
        }
        for &p in &carried {
            subst.insert(p, current[&p]);
        }
        let (cloned, map) = clone_iteration(f, body, &skip, &subst, k as u32, total);
        // Next iteration's carried values = this iteration's latches.
        for &p in &carried {
            let latch = f.ops[p.index()].operands[1].src;
            let latch = map.get(&latch).copied().unwrap_or(latch);
            current.insert(p, latch);
        }
        regions.push(cloned);
        last_map = map;
    }
    let _ = last_map;

    // External uses of the phis now take the final carried values (or the
    // last iv constant, which should be unused).
    for op in &mut f.ops {
        for operand in &mut op.operands {
            if let Some(&v) = current.get(&operand.src) {
                operand.src = v;
            }
        }
    }
    Region::Seq(regions)
}

/// Partially unroll by `factor`: a loop of `ceil(trip/F)` iterations whose
/// body holds `F` clones; the iv of copy `k` is `iv_new * F + k`.
fn partial_unroll(
    f: &mut Function,
    label: &str,
    body: &Region,
    trip_count: u64,
    factor: u32,
    pipeline_ii: Option<u32>,
) -> Region {
    let (iv, carried) = loop_phis(f, body);
    let mut skip: HashSet<OpId> = carried.iter().copied().collect();
    if let Some(iv) = iv {
        skip.insert(iv);
    }
    let new_trip = trip_count.div_ceil(factor as u64);
    let mut header = Vec::new();

    // New induction variable.
    let new_iv = iv.map(|old_iv| {
        let ty = IrType::for_range(new_trip.saturating_sub(1));
        let mut op = Operation::new(OpId(0), OpKind::Phi, ty);
        op.name = "iv".into();
        op.loc = f.op(old_iv).loc;
        f.push_op(op)
    });
    // iv_base = new_iv * factor
    let iv_base = new_iv.map(|niv| {
        let fac_ty = IrType::for_const(factor as i64);
        let mut c = Operation::new(OpId(0), OpKind::Const, fac_ty);
        c.imm = Some(factor as i64);
        let cid = f.push_op(c);
        let niv_ty = f.op(niv).ty;
        let mut mul = Operation::new(OpId(0), OpKind::Mul, IrType::mul_result(niv_ty, fac_ty));
        mul.operands.push(Operand::new(niv, niv_ty.bits()));
        mul.operands.push(Operand::new(cid, fac_ty.bits()));
        let mid = f.push_op(mul);
        header.push(cid);
        header.push(mid);
        mid
    });
    if let Some(niv) = new_iv {
        header.insert(0, niv);
    }

    // New carried phis mirror the old ones.
    let mut new_phi: HashMap<OpId, OpId> = HashMap::new();
    for &p in &carried {
        let old = f.ops[p.index()].clone();
        let mut op = Operation::new(OpId(0), OpKind::Phi, old.ty);
        op.name = old.name.clone();
        op.loc = old.loc;
        op.operands.push(old.operands[0]); // same init
        let id = f.push_op(op);
        new_phi.insert(p, id);
        header.push(id);
    }

    let mut regions = vec![Region::Block(header)];
    let mut current: HashMap<OpId, OpId> = carried.iter().map(|&p| (p, new_phi[&p])).collect();
    let mut last_latch: HashMap<OpId, OpId> = HashMap::new();
    for k in 0..factor {
        let mut subst: HashMap<OpId, OpId> = HashMap::new();
        if let (Some(old_iv), Some(base)) = (iv, iv_base) {
            // iv_k = base + k
            let base_ty = f.op(base).ty;
            let k_ty = IrType::for_const(k as i64);
            let mut c = Operation::new(OpId(0), OpKind::Const, k_ty);
            c.imm = Some(k as i64);
            let cid = f.push_op(c);
            let mut add = Operation::new(OpId(0), OpKind::Add, IrType::add_result(base_ty, k_ty));
            add.operands.push(Operand::new(base, base_ty.bits()));
            add.operands.push(Operand::new(cid, k_ty.bits()));
            add.replica = Some(compose_tag(None, old_iv, k, factor));
            let aid = f.push_op(add);
            regions.push(Region::Block(vec![cid, aid]));
            subst.insert(old_iv, aid);
        }
        for &p in &carried {
            subst.insert(p, current[&p]);
        }
        let (cloned, map) = clone_iteration(f, body, &skip, &subst, k, factor);
        for &p in &carried {
            let latch = f.ops[p.index()].operands[1].src;
            let latch = map.get(&latch).copied().unwrap_or(latch);
            current.insert(p, latch);
            last_latch.insert(p, latch);
        }
        regions.push(cloned);
    }

    // Close the new phis with the last copy's latch.
    for &p in &carried {
        let np = new_phi[&p];
        let latch = last_latch[&p];
        let bits = f.op(np).ty.bits().min(f.op(latch).ty.bits());
        f.ops[np.index()].operands.push(Operand::new(latch, bits));
    }

    // External uses of old phis -> new phis.
    let old_ids: HashSet<OpId> = body.ops_in_order().into_iter().collect();
    for op in &mut f.ops {
        if old_ids.contains(&op.id) {
            continue;
        }
        for operand in &mut op.operands {
            if let Some(&np) = new_phi.get(&operand.src) {
                operand.src = np;
            }
        }
    }

    Region::Loop {
        label: label.to_string(),
        body: Box::new(Region::Seq(regions)),
        trip_count: new_trip,
        pipeline_ii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile_to_ir;
    use crate::verify::verify_module;

    fn build(src: &str) -> (Module, Directives) {
        compile_to_ir(src, "t").unwrap()
    }

    const ACC_LOOP: &str =
        "int32 f(int32 a[8]) { int32 acc = 0; for (i = 0; i < 8; i++) { acc = acc + a[i]; } return acc; }";

    #[test]
    fn full_unroll_flattens_loop() {
        let (mut m, mut d) = build(ACC_LOOP);
        d.set_full_unroll("f/loop0");
        unroll_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.top_function();
        assert_eq!(f.body.loop_count(), 0);
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Load.index()], 8, "8 loads after full unroll");
        assert_eq!(h[OpKind::Add.index()], 8, "8 adds after full unroll");
        assert_eq!(h[OpKind::Phi.index()], 0, "phis eliminated");
    }

    #[test]
    fn replica_tags_assigned() {
        let (mut m, mut d) = build(ACC_LOOP);
        d.set_full_unroll("f/loop0");
        unroll_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        let f = m.top_function();
        let loads: Vec<_> = f.ops.iter().filter(|o| o.kind == OpKind::Load).collect();
        assert_eq!(loads.len(), 8);
        let group = loads[0].replica.unwrap().group;
        let mut indices: Vec<u32> = loads
            .iter()
            .map(|o| {
                let t = o.replica.unwrap();
                assert_eq!(t.group, group);
                assert_eq!(t.total, 8);
                t.index
            })
            .collect();
        indices.sort();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn partial_unroll_keeps_loop() {
        let (mut m, mut d) = build(ACC_LOOP);
        d.set_unroll("f/loop0", 4);
        unroll_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.top_function();
        assert_eq!(f.body.loop_count(), 1);
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Load.index()], 4, "4 loads per iteration");
        // trip count halved twice
        fn find_trip(r: &Region) -> Option<u64> {
            match r {
                Region::Loop { trip_count, .. } => Some(*trip_count),
                Region::Seq(rs) => rs.iter().find_map(find_trip),
                Region::Block(_) => None,
            }
        }
        assert_eq!(find_trip(&f.body), Some(2));
    }

    #[test]
    fn effective_factor_rounds_to_divisor() {
        assert_eq!(effective_factor(32, 3), 2);
        assert_eq!(effective_factor(32, 8), 8);
        assert_eq!(effective_factor(30, 7), 6);
        assert_eq!(effective_factor(7, 3), 1);
        assert_eq!(effective_factor(8, 100), 8);
    }

    #[test]
    fn non_dividing_factor_does_not_over_execute() {
        // 8 iterations, factor 3 -> rounds to 2; loads stay in bounds.
        let (mut m, mut d) = build(ACC_LOOP);
        d.set_unroll("f/loop0", 3);
        unroll_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.top_function();
        let h = f.kind_histogram();
        assert_eq!(h[OpKind::Load.index()], 2, "factor rounded to 2");
    }

    #[test]
    fn unroll_one_is_noop() {
        let (mut m, d) = build(ACC_LOOP);
        let before = m.top_function().ops.len();
        unroll_module(&mut m, &d);
        verify_module(&m).unwrap();
        assert_eq!(m.top_function().ops.len(), before);
    }

    #[test]
    fn nested_unroll_composes_tags() {
        let src = "int32 f(int32 a[16]) { int32 acc = 0;\n#pragma HLS unroll\nfor (i = 0; i < 4; i++) {\n#pragma HLS unroll\nfor (j = 0; j < 4; j++) { acc = acc + a[i * 4 + j]; } } return acc; }";
        let (mut m, d) = build(src);
        unroll_module(&mut m, &d);
        super::super::dce::dce_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.top_function();
        let loads: Vec<_> = f.ops.iter().filter(|o| o.kind == OpKind::Load).collect();
        assert_eq!(loads.len(), 16);
        let tags: HashSet<u32> = loads.iter().map(|o| o.replica.unwrap().index).collect();
        assert_eq!(tags.len(), 16, "all replica indices distinct");
        assert!(loads.iter().all(|o| o.replica.unwrap().total == 16));
    }

    #[test]
    fn pipeline_directive_applied_by_unroll_pass() {
        let (mut m, mut d) = build(ACC_LOOP);
        d.set_pipeline("f/loop0", 2);
        unroll_module(&mut m, &d);
        fn find_ii(r: &Region) -> Option<u32> {
            match r {
                Region::Loop {
                    pipeline_ii, body, ..
                } => pipeline_ii.or_else(|| find_ii(body)),
                Region::Seq(rs) => rs.iter().find_map(find_ii),
                Region::Block(_) => None,
            }
        }
        assert_eq!(find_ii(&m.top_function().body), Some(2));
    }
}
