//! Human-readable IR dump, for debugging and golden tests.

use crate::function::{Function, Region};
use crate::module::Module;
use std::fmt::Write;

/// Render a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {} (top = {})", m.name, m.top_function().name);
    for f in &m.functions {
        out.push_str(&print_function(f));
    }
    out
}

/// Render one function as text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect();
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".into());
    let _ = writeln!(
        out,
        "fn {}({}) -> {}{}",
        f.name,
        params.join(", "),
        ret,
        if f.inline { " inline" } else { "" }
    );
    for a in &f.arrays {
        let _ = writeln!(
            out,
            "  array {}: {}[{}] partition={}{}",
            a.name,
            a.elem,
            a.len,
            a.partition,
            if a.is_param { " (interface)" } else { "" }
        );
    }
    print_region(f, &f.body, 1, &mut out);
    out
}

fn print_region(f: &Function, r: &Region, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match r {
        Region::Block(ops) => {
            for &id in ops {
                let op = f.op(id);
                let args: Vec<String> = op
                    .operands
                    .iter()
                    .map(|o| format!("{}:{}", o.src, o.width))
                    .collect();
                let mut line = format!("{pad}{id} = {} {} [{}]", op.kind, op.ty, args.join(", "));
                if let Some(imm) = op.imm {
                    let _ = write!(line, " imm={imm}");
                }
                if let Some(arr) = op.array {
                    let _ = write!(line, " arr={}", f.array(arr).name);
                }
                if let Some(r) = &op.replica {
                    let _ = write!(line, " replica={}:{}/{}", r.group, r.index, r.total);
                }
                if let Some(loc) = op.loc {
                    let _ = write!(line, " @{loc}");
                }
                let _ = writeln!(out, "{line}");
            }
        }
        Region::Seq(rs) => {
            for sub in rs {
                print_region(f, sub, indent, out);
            }
        }
        Region::Loop {
            label,
            body,
            trip_count,
            pipeline_ii,
        } => {
            let pipe = pipeline_ii
                .map(|ii| format!(" pipeline(ii={ii})"))
                .unwrap_or_default();
            let _ = writeln!(out, "{pad}loop {label} trip={trip_count}{pipe} {{");
            print_region(f, body, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::IrType;

    #[test]
    fn printed_form_mentions_ops_and_loops() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let (_, iv) = b.begin_loop(4, Some(1));
        b.binary(OpKind::Add, x, iv);
        b.end_loop();
        b.ret(Some(x));
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("fn f("));
        assert!(text.contains("loop f/loop0 trip=4 pipeline(ii=1)"));
        assert!(text.contains("add"));
    }
}
