//! Structural validation of IR modules.

use crate::function::Function;
use crate::module::Module;
use crate::op::OpKind;
use std::collections::HashSet;
use std::fmt;

/// An IR structural violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the violation occurred.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural invariants of a whole module.
///
/// Checked invariants:
/// * every operand references an existing op that has a result;
/// * operand wire widths do not exceed the producer's bitwidth;
/// * every op appears in the body region exactly once;
/// * memory ops reference a declared array;
/// * `Call` ops reference an existing function;
/// * `Const` ops carry an immediate.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(f, m)?;
    }
    if m.top.index() >= m.functions.len() {
        return Err(VerifyError {
            function: "<module>".into(),
            message: format!("top function id {} out of range", m.top.0),
        });
    }
    Ok(())
}

/// Verify one function (see [`verify_module`] for the invariant list).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &Function, m: &Module) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError {
        function: f.name.clone(),
        message: msg,
    };

    // Body region references each op exactly once.
    let mut seen = HashSet::new();
    let mut dup = None;
    f.body.for_each_op(&mut |id| {
        if !seen.insert(id) {
            dup = Some(id);
        }
    });
    if let Some(id) = dup {
        return Err(err(format!("op {id} appears twice in the body region")));
    }
    for op in &f.ops {
        if !seen.contains(&op.id) {
            return Err(err(format!(
                "op {} ({}) not placed in body",
                op.id, op.kind
            )));
        }
    }

    for op in &f.ops {
        for operand in &op.operands {
            if operand.src.index() >= f.ops.len() {
                return Err(err(format!(
                    "op {} references out-of-range operand {}",
                    op.id, operand.src
                )));
            }
            let src = f.op(operand.src);
            if !src.kind.has_result() {
                return Err(err(format!(
                    "op {} consumes result of {} which has none",
                    op.id, src.id
                )));
            }
            if operand.width > src.ty.bits() {
                return Err(err(format!(
                    "op {} consumes {} wires of {} which is only {} bits",
                    op.id,
                    operand.width,
                    src.id,
                    src.ty.bits()
                )));
            }
            if operand.width == 0 {
                return Err(err(format!("op {} has a zero-width operand", op.id)));
            }
        }
        match op.kind {
            OpKind::Load | OpKind::Store | OpKind::Alloca => {
                let Some(arr) = op.array else {
                    return Err(err(format!("memory op {} lacks an array", op.id)));
                };
                if arr.index() >= f.arrays.len() {
                    return Err(err(format!("memory op {} references unknown array", op.id)));
                }
            }
            OpKind::Call => {
                let Some(callee) = op.callee else {
                    return Err(err(format!("call {} lacks a callee", op.id)));
                };
                if callee.index() >= m.functions.len() {
                    return Err(err(format!("call {} references unknown function", op.id)));
                }
            }
            OpKind::Const if op.imm.is_none() => {
                return Err(err(format!("const {} lacks a value", op.id)));
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::{OpId, Operand};
    use crate::types::IrType;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("t");
        m.push_function(f);
        m
    }

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let y = b.binary(OpKind::Add, x, x);
        b.ret(Some(y));
        let m = module_with(b.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn overwide_operand_rejected() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let y = b.binary(OpKind::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        f.op_mut(y).operands[0] = Operand::new(x, 20); // x is only 8 bits
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn unplaced_op_rejected() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        b.ret(Some(x));
        let mut f = b.finish();
        // Push an op into the arena without placing it in the body.
        f.push_op(crate::op::Operation::new(
            OpId(0),
            OpKind::Add,
            IrType::int(8),
        ));
        let m = module_with(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not placed"), "{}", e);
    }

    #[test]
    fn store_result_cannot_be_consumed() {
        let mut b = FunctionBuilder::new("f");
        let a = b.array_param("a", IrType::int(8), 4);
        let i = b.constant(0, IrType::uint(2));
        let v = b.constant(1, IrType::int(8));
        let st = b.store(a, i, v);
        let bad = b.binary(OpKind::Add, v, v);
        b.ret(Some(bad));
        let mut f = b.finish();
        f.op_mut(bad).operands[0] = Operand::new(st, 1);
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }
}
