//! Programmatic IR construction.
//!
//! [`FunctionBuilder`] maintains a stack of open regions so callers can nest
//! loops without manipulating [`Region`] trees by hand. It is used by unit
//! tests and by IR transforms; most users go through the MiniHLS frontend
//! instead.

use crate::directives::Partition;
use crate::function::{ArrayDecl, ArrayId, FuncId, Function, Param, ParamKind, Region};
use crate::op::{CmpPred, OpId, OpKind, Operand, Operation};
use crate::source::SourceLoc;
use crate::types::IrType;

/// Builder for one [`Function`].
///
/// ```
/// use hls_ir::{FunctionBuilder, IrType, OpKind};
/// let mut b = FunctionBuilder::new("mac");
/// let x = b.scalar_param("x", IrType::int(16));
/// let y = b.scalar_param("y", IrType::int(16));
/// let p = b.binary(OpKind::Mul, x, y);
/// let s = b.binary(OpKind::Add, p, x);
/// b.ret(Some(s));
/// let f = b.finish();
/// assert_eq!(f.name, "mac");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    /// Stack of open regions; the innermost receives new ops.
    stack: Vec<Vec<Region>>,
    /// Pending loop headers matching `stack` entries above the root.
    loop_headers: Vec<(String, u64, Option<u32>)>,
    current_loc: Option<SourceLoc>,
    next_loop: u32,
}

impl FunctionBuilder {
    /// Start building a function called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            func: Function::new(FuncId(0), name),
            stack: vec![Vec::new()],
            loop_headers: Vec::new(),
            current_loc: None,
            next_loop: 0,
        }
    }

    /// Set the source location attached to subsequently created ops.
    pub fn set_loc(&mut self, loc: SourceLoc) {
        self.current_loc = Some(loc);
    }

    /// Declare a scalar parameter; returns the `Read` port op for its value.
    /// The op's `imm` is the *scalar* argument index (array parameters do
    /// not consume argument slots).
    pub fn scalar_param(&mut self, name: &str, ty: IrType) -> OpId {
        let idx = self
            .func
            .params
            .iter()
            .filter(|p| matches!(p.kind, crate::function::ParamKind::Scalar))
            .count() as i64;
        self.func.params.push(Param {
            name: name.to_string(),
            ty,
            kind: ParamKind::Scalar,
        });
        let mut op = Operation::new(OpId(0), OpKind::Read, ty);
        op.name = name.to_string();
        op.imm = Some(idx);
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Declare an array parameter (interface memory).
    pub fn array_param(&mut self, name: &str, elem: IrType, len: u32) -> ArrayId {
        let id = ArrayId(self.func.arrays.len() as u32);
        self.func.arrays.push(ArrayDecl {
            id,
            name: name.to_string(),
            elem,
            len,
            partition: Partition::None,
            is_param: true,
        });
        self.func.params.push(Param {
            name: name.to_string(),
            ty: elem,
            kind: ParamKind::Array { array: id },
        });
        id
    }

    /// Declare a local array.
    pub fn local_array(&mut self, name: &str, elem: IrType, len: u32) -> ArrayId {
        let id = ArrayId(self.func.arrays.len() as u32);
        self.func.arrays.push(ArrayDecl {
            id,
            name: name.to_string(),
            elem,
            len,
            partition: Partition::None,
            is_param: false,
        });
        let mut op = Operation::new(OpId(0), OpKind::Alloca, elem);
        op.name = name.to_string();
        op.array = Some(id);
        op.loc = self.current_loc;
        self.emit(op);
        id
    }

    /// Set the return type.
    pub fn set_ret_type(&mut self, ty: IrType) {
        self.func.ret = Some(ty);
    }

    /// Emit an integer constant.
    pub fn constant(&mut self, v: i64, ty: IrType) -> OpId {
        let mut op = Operation::new(OpId(0), OpKind::Const, ty);
        op.imm = Some(v);
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a binary op; result type follows the kind's width rule.
    pub fn binary(&mut self, kind: OpKind, a: OpId, b: OpId) -> OpId {
        let ta = self.func.op(a).ty;
        let tb = self.func.op(b).ty;
        let ty = match kind {
            OpKind::Add | OpKind::Sub => IrType::add_result(ta, tb),
            OpKind::Mul => IrType::mul_result(ta, tb),
            OpKind::ICmp | OpKind::FCmp => IrType::bool(),
            _ => IrType::join(ta, tb),
        };
        let mut op = Operation::new(OpId(0), kind, ty);
        op.operands.push(Operand::new(a, ta.bits()));
        op.operands.push(Operand::new(b, tb.bits()));
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit an integer comparison.
    pub fn icmp(&mut self, pred: CmpPred, a: OpId, b: OpId) -> OpId {
        let id = self.binary(OpKind::ICmp, a, b);
        self.func.op_mut(id).imm = Some(pred as i64);
        id
    }

    /// Emit a select `cond ? t : f`.
    pub fn select(&mut self, cond: OpId, t: OpId, f: OpId) -> OpId {
        let tt = self.func.op(t).ty;
        let tf = self.func.op(f).ty;
        let ty = IrType::join(tt, tf);
        let mut op = Operation::new(OpId(0), OpKind::Select, ty);
        op.operands.push(Operand::new(cond, 1));
        op.operands.push(Operand::new(t, tt.bits()));
        op.operands.push(Operand::new(f, tf.bits()));
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a load `arr[idx]`.
    pub fn load(&mut self, arr: ArrayId, idx: OpId) -> OpId {
        let elem = self.func.array(arr).elem;
        let iw = self.func.op(idx).ty.bits();
        let mut op = Operation::new(OpId(0), OpKind::Load, elem);
        op.operands.push(Operand::new(idx, iw));
        op.array = Some(arr);
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a store `arr[idx] = val`.
    pub fn store(&mut self, arr: ArrayId, idx: OpId, val: OpId) -> OpId {
        let iw = self.func.op(idx).ty.bits();
        let vw = self.func.op(val).ty.bits();
        let elem = self.func.array(arr).elem;
        let mut op = Operation::new(OpId(0), OpKind::Store, elem);
        op.operands.push(Operand::new(idx, iw));
        op.operands.push(Operand::new(val, vw.min(elem.bits())));
        op.array = Some(arr);
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a call to `callee` with result type `ret`.
    pub fn call(&mut self, callee: FuncId, args: &[OpId], ret: IrType) -> OpId {
        let mut op = Operation::new(OpId(0), OpKind::Call, ret);
        for &a in args {
            let w = self.func.op(a).ty.bits();
            op.operands.push(Operand::new(a, w));
        }
        op.callee = Some(callee);
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a width cast (zext / sext / trunc / no-op as appropriate).
    pub fn cast(&mut self, v: OpId, to: IrType) -> OpId {
        let from = self.func.op(v).ty;
        if from == to {
            return v;
        }
        let kind = if to.bits() < from.bits() {
            OpKind::Trunc
        } else if from.is_signed() {
            OpKind::SExt
        } else {
            OpKind::ZExt
        };
        let mut op = Operation::new(OpId(0), kind, to);
        op.operands
            .push(Operand::new(v, from.bits().min(to.bits())));
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Emit a return.
    pub fn ret(&mut self, v: Option<OpId>) -> OpId {
        let ty = v.map(|v| self.func.op(v).ty).unwrap_or(IrType::bool());
        if self.func.ret.is_none() {
            self.func.ret = v.map(|_| ty);
        }
        let mut op = Operation::new(OpId(0), OpKind::Return, ty);
        if let Some(v) = v {
            op.operands.push(Operand::new(v, ty.bits()));
        }
        op.loc = self.current_loc;
        self.emit(op)
    }

    /// Begin a counted loop with `trip_count` iterations. Returns the loop
    /// label and a `Phi` op representing the induction variable.
    pub fn begin_loop(&mut self, trip_count: u64, pipeline_ii: Option<u32>) -> (String, OpId) {
        let label = format!("{}/loop{}", self.func.name, self.next_loop);
        self.next_loop += 1;
        self.stack.push(Vec::new());
        self.loop_headers
            .push((label.clone(), trip_count, pipeline_ii));
        let ty = IrType::for_range(trip_count.saturating_sub(1));
        let mut op = Operation::new(OpId(0), OpKind::Phi, ty);
        op.name = "iv".into();
        op.loc = self.current_loc;
        let iv = self.emit(op);
        (label, iv)
    }

    /// Close the innermost loop opened by [`Self::begin_loop`].
    ///
    /// # Panics
    /// Panics if no loop is open.
    pub fn end_loop(&mut self) {
        let (label, trip_count, pipeline_ii) = self
            .loop_headers
            .pop()
            .expect("end_loop without begin_loop");
        let regions = self.stack.pop().expect("region stack underflow");
        let body = Self::seal(regions);
        self.current_regions().push(Region::Loop {
            label,
            body: Box::new(body),
            trip_count,
            pipeline_ii,
        });
    }

    /// Finish and return the function.
    ///
    /// # Panics
    /// Panics if loops are still open.
    pub fn finish(mut self) -> Function {
        assert!(
            self.loop_headers.is_empty(),
            "finish() with {} open loop(s)",
            self.loop_headers.len()
        );
        let regions = self.stack.pop().expect("region stack underflow");
        self.func.body = Self::seal(regions);
        self.func
    }

    fn seal(mut regions: Vec<Region>) -> Region {
        if regions.len() == 1 {
            regions.pop().unwrap()
        } else {
            Region::Seq(regions)
        }
    }

    fn current_regions(&mut self) -> &mut Vec<Region> {
        self.stack.last_mut().expect("region stack underflow")
    }

    fn emit(&mut self, op: Operation) -> OpId {
        let id = self.func.push_op(op);
        let regions = self.current_regions();
        match regions.last_mut() {
            Some(Region::Block(ops)) => ops.push(id),
            _ => regions.push(Region::Block(vec![id])),
        }
        id
    }

    /// Access the function under construction (for advanced tweaks).
    pub fn function_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Emit a fully-formed operation into the current region (used by the
    /// frontend for phis and other ops with bespoke operand shapes). The
    /// op's id is reassigned; the attached source location is preserved if
    /// set, otherwise the builder's current location is used.
    pub fn emit_op(&mut self, mut op: Operation) -> OpId {
        if op.loc.is_none() {
            op.loc = self.current_loc;
        }
        self.emit(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let c = b.constant(3, IrType::int(4));
        let m = b.binary(OpKind::Mul, x, c);
        b.ret(Some(m));
        let f = b.finish();
        assert_eq!(f.ops.len(), 4);
        assert_eq!(f.op(m).ty.bits(), 12); // 8 + 4
        assert_eq!(f.body.ops_in_order().len(), 4);
    }

    #[test]
    fn loops_nest() {
        let mut b = FunctionBuilder::new("f");
        let (l0, iv0) = b.begin_loop(10, None);
        let (_l1, iv1) = b.begin_loop(4, Some(1));
        b.binary(OpKind::Add, iv0, iv1);
        b.end_loop();
        b.end_loop();
        let f = b.finish();
        assert_eq!(l0, "f/loop0");
        assert_eq!(f.body.loop_count(), 2);
        // induction variable width follows trip count
        assert_eq!(f.op(iv0).ty.bits(), 4); // 0..=9
        assert_eq!(f.op(iv1).ty.bits(), 2); // 0..=3
    }

    #[test]
    #[should_panic]
    fn unbalanced_loop_panics() {
        let mut b = FunctionBuilder::new("f");
        b.begin_loop(2, None);
        let _ = b.finish();
    }

    #[test]
    fn cast_inserts_right_kind() {
        let mut b = FunctionBuilder::new("f");
        let x = b.scalar_param("x", IrType::int(8));
        let up = b.cast(x, IrType::int(16));
        let down = b.cast(up, IrType::int(4));
        let same = b.cast(down, IrType::int(4));
        let f = b.finish();
        assert_eq!(f.op(up).kind, OpKind::SExt);
        assert_eq!(f.op(down).kind, OpKind::Trunc);
        assert_eq!(same, down, "no-op cast returns the input");
    }

    #[test]
    fn load_store_reference_array() {
        let mut b = FunctionBuilder::new("f");
        let a = b.array_param("a", IrType::int(16), 32);
        let i = b.constant(5, IrType::uint(5));
        let v = b.load(a, i);
        b.store(a, i, v);
        let f = b.finish();
        let deps = f.memory_deps();
        assert_eq!(deps.len(), 1);
        assert_eq!(f.op(v).array, Some(a));
    }
}
