//! Robustness: the frontend must never panic — on arbitrary byte soup it
//! returns structured errors; on valid programs, transforms keep the module
//! verifiable and semantics intact.

use hls_ir::frontend::{compile, compile_to_ir, finish};
use hls_ir::interp::Interpreter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic(input in ".{0,200}") {
        // Any result is fine; panics are not.
        let _ = compile(&input);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "int32", "uint8", "void", "for", "if", "else", "return", "x", "y",
            "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "=",
            "<", ">", "==", "0", "1", "42", "#pragma HLS unroll",
        ]), 0..40)) {
        let input = tokens.join(" ");
        let _ = compile(&input);
    }
}

/// Random-but-valid accumulation kernels: the unroll factor must never
/// change the computed result.
fn acc_kernel() -> impl Strategy<Value = (String, u32, Vec<i64>)> {
    (2u32..6, prop::sample::select(vec!["+", "^", "|"]), 1u32..5).prop_flat_map(
        |(len_pow, op, factor)| {
            let len = 1u32 << len_pow;
            let src = format!(
                "int32 f(int32 a[{len}]) {{ int32 s = 0; for (i = 0; i < {len}; i++) {{ s = s {op} a[i]; }} return s; }}"
            );
            let data = prop::collection::vec(-1000i64..1000, len as usize);
            (Just(src), Just(factor), data)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unroll_factor_never_changes_results((src, factor, data) in acc_kernel()) {
        let reference = compile(&src).unwrap();
        let expected = Interpreter::new(&reference)
            .run_top(&[], std::slice::from_ref(&data))
            .unwrap();

        let (m, mut d) = compile_to_ir(&src, "t").unwrap();
        d.set_unroll("f/loop0", factor);
        let unrolled = finish(m, &d).unwrap();
        hls_ir::verify::verify_module(&unrolled).unwrap();
        let got = Interpreter::new(&unrolled)
            .run_top(&[], std::slice::from_ref(&data))
            .unwrap();
        prop_assert_eq!(got.ret, expected.ret, "factor {}", factor);
    }
}
