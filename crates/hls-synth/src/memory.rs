//! Array-to-memory mapping: banking and implementation selection.
//!
//! Each array becomes `banks()` independently-ported banks (from its
//! partition directive). A bank is implemented as block RAM when large
//! enough, distributed LUT-RAM when small, or — for `Complete` partitions —
//! as individual registers. These choices feed both the RTL netlist
//! (memory cells the placer must site in BRAM columns) and the *Global
//! information* features (memory words/banks/bits/primitives).

use crate::charlib::Resources;
use hls_ir::directives::Partition;
use hls_ir::{ArrayDecl, ArrayId};

/// How a bank is implemented on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankKind {
    /// RAMB18/RAMB36 block RAM.
    Bram,
    /// Distributed RAM in LUTs.
    LutRam,
    /// Flip-flop registers (complete partition).
    Registers,
}

/// One physical bank of an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankImpl {
    /// Bank index within the array.
    pub index: u32,
    /// Implementation choice.
    pub kind: BankKind,
    /// Words stored in this bank.
    pub words: u32,
    /// Word width in bits.
    pub bits: u16,
    /// Fabric resources consumed.
    pub resources: Resources,
}

/// The memory implementation of one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryImpl {
    /// The implemented array.
    pub array: ArrayId,
    /// One entry per bank.
    pub banks: Vec<BankImpl>,
}

impl MemoryImpl {
    /// Total resources over all banks.
    pub fn resources(&self) -> Resources {
        self.banks
            .iter()
            .fold(Resources::ZERO, |acc, b| acc + b.resources)
    }

    /// Total BRAM primitives.
    pub fn bram_count(&self) -> u32 {
        self.resources().brams
    }
}

/// The bank a memory access addresses, when it can be determined
/// statically. Handles constant indices and the affine patterns unrolling
/// produces (`iv*c + k`, `base + k`): for a cyclic partition, the bank of
/// `expr + k` is known whenever every term of `expr` is a multiple of the
/// bank count.
///
/// This is the bank-disambiguation analysis real HLS tools run — without it
/// every unrolled access to a partitioned array would need a mux across all
/// banks.
pub fn access_bank(f: &hls_ir::Function, op: &hls_ir::Operation) -> Option<u32> {
    let arr = f.array(op.array?);
    let banks = arr.banks();
    if banks <= 1 {
        return Some(0);
    }
    let idx = op.operands.first()?.src;
    match arr.partition {
        Partition::Cyclic(_) | Partition::Complete => {
            let residue = index_residue(f, idx, banks)?;
            Some(match arr.partition {
                Partition::Complete => residue, // residue mod len == exact index only
                _ => residue % banks,
            })
        }
        Partition::Block(_) => {
            // Block partitions need the full index value.
            let c = f.op(idx).const_value()?;
            Some(arr.partition.bank_of(c.max(0) as u32, arr.len))
        }
        Partition::None => Some(0),
    }
}

/// The residue of an index expression modulo `m`, if statically known.
/// Constants know their value; `a + b` and `a * b` compose; casts pass
/// through; anything else is known only when it is a multiple of `m`
/// (which a bare value never is, so unknown).
fn index_residue(f: &hls_ir::Function, id: hls_ir::OpId, m: u32) -> Option<u32> {
    use hls_ir::OpKind;
    let op = f.op(id);
    match op.kind {
        OpKind::Const => Some((op.imm?.rem_euclid(m as i64)) as u32),
        OpKind::Add => {
            let a = index_residue(f, op.operands.first()?.src, m)?;
            let b = index_residue(f, op.operands.get(1)?.src, m)?;
            Some((a + b) % m)
        }
        OpKind::Sub => {
            let a = index_residue(f, op.operands.first()?.src, m)?;
            let b = index_residue(f, op.operands.get(1)?.src, m)?;
            Some((a + m - b % m) % m)
        }
        OpKind::Mul => {
            // Known if either factor is a constant multiple of m, or both
            // residues are known.
            let lhs = op.operands.first()?.src;
            let rhs = op.operands.get(1)?.src;
            let lc = f.op(lhs).const_value();
            let rc = f.op(rhs).const_value();
            if let Some(c) = lc.or(rc) {
                if c.rem_euclid(m as i64) == 0 {
                    return Some(0);
                }
            }
            let a = index_residue(f, lhs, m)?;
            let b = index_residue(f, rhs, m)?;
            Some((a * b) % m)
        }
        OpKind::ZExt | OpKind::SExt | OpKind::Trunc => {
            index_residue(f, op.operands.first()?.src, m)
        }
        OpKind::Shl => {
            // x << c == x * 2^c.
            let c = f.op(op.operands.get(1)?.src).const_value()?;
            if (0..32).contains(&c) && (1u64 << c).is_multiple_of(m as u64) {
                Some(0)
            } else {
                let a = index_residue(f, op.operands.first()?.src, m)?;
                Some((a as u64 * (1u64 << c.clamp(0, 31)) % m as u64) as u32)
            }
        }
        _ => None,
    }
}

/// Bits per RAMB18 primitive.
const RAMB18_BITS: u64 = 18 * 1024;
/// Minimum bank size (bits) that justifies a BRAM.
const BRAM_THRESHOLD_BITS: u64 = 1024;
/// Minimum depth that justifies a BRAM.
const BRAM_THRESHOLD_WORDS: u32 = 32;

/// Map one array to banks.
pub fn implement_array(decl: &ArrayDecl) -> MemoryImpl {
    let banks = decl.banks();
    let words_per_bank = decl.len.div_ceil(banks.max(1));
    let bits = decl.elem.bits();
    let bank_bits = words_per_bank as u64 * bits as u64;

    let make_bank = |index: u32| -> BankImpl {
        if decl.partition == Partition::Complete {
            return BankImpl {
                index,
                kind: BankKind::Registers,
                words: 1,
                bits,
                resources: Resources::new(0, bits as u32, 0, 0),
            };
        }
        if bank_bits >= BRAM_THRESHOLD_BITS && words_per_bank >= BRAM_THRESHOLD_WORDS {
            let brams = bank_bits.div_ceil(RAMB18_BITS).max(1) as u32;
            BankImpl {
                index,
                kind: BankKind::Bram,
                words: words_per_bank,
                bits,
                resources: Resources::new(0, 0, 0, brams),
            }
        } else {
            // Distributed RAM: one LUT implements 64 deep x 1 wide.
            let luts = words_per_bank.div_ceil(64) * bits as u32;
            BankImpl {
                index,
                kind: BankKind::LutRam,
                words: words_per_bank,
                bits,
                resources: Resources::new(luts.max(1), 0, 0, 0),
            }
        }
    };

    MemoryImpl {
        array: decl.id,
        banks: (0..banks).map(make_bank).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::IrType;

    fn decl(len: u32, bits: u16, partition: Partition) -> ArrayDecl {
        ArrayDecl {
            id: ArrayId(0),
            name: "a".into(),
            elem: IrType::int(bits),
            len,
            partition,
            is_param: false,
        }
    }

    #[test]
    fn large_array_uses_bram() {
        let m = implement_array(&decl(1024, 32, Partition::None));
        assert_eq!(m.banks.len(), 1);
        assert_eq!(m.banks[0].kind, BankKind::Bram);
        assert_eq!(m.bram_count(), 2); // 32 Kb / 18 Kb
    }

    #[test]
    fn small_array_uses_lutram() {
        let m = implement_array(&decl(16, 8, Partition::None));
        assert_eq!(m.banks[0].kind, BankKind::LutRam);
        assert_eq!(m.resources().brams, 0);
        assert!(m.resources().luts > 0);
    }

    #[test]
    fn cyclic_partition_splits_banks() {
        let m = implement_array(&decl(1024, 32, Partition::Cyclic(4)));
        assert_eq!(m.banks.len(), 4);
        assert_eq!(m.banks[0].words, 256);
        // each bank still big enough for BRAM
        assert!(m.banks.iter().all(|b| b.kind == BankKind::Bram));
    }

    #[test]
    fn partitioning_can_demote_to_lutram() {
        // 128 x 8b split 8 ways -> 16-word banks -> LUTRAM.
        let m = implement_array(&decl(128, 8, Partition::Cyclic(8)));
        assert!(m.banks.iter().all(|b| b.kind == BankKind::LutRam));
    }

    #[test]
    fn complete_partition_is_registers() {
        let m = implement_array(&decl(16, 12, Partition::Complete));
        assert_eq!(m.banks.len(), 16);
        assert!(m.banks.iter().all(|b| b.kind == BankKind::Registers));
        assert_eq!(m.resources().ffs, 16 * 12);
        assert_eq!(m.resources().brams, 0);
    }
}
