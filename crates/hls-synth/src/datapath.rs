//! RTL netlist generation.
//!
//! Produces a flattened, cell-level netlist from the scheduled and bound IR:
//! operator cells (one per functional unit), output registers for values
//! crossing control-state boundaries, input multiplexers for shared units,
//! memory bank cells with address/data muxes, FSM cells, and I/O ports.
//! Every cell records the IR operations it implements — the **provenance**
//! that the back-tracing step of the paper (netlist cell → net → RTL op →
//! IR op) walks in reverse.
//!
//! Non-inlined function calls are elaborated as one instance per call site,
//! flattened into the same netlist (as Vivado does before placement).

use crate::bind::Binding;
use crate::charlib::{CharLib, OperatorCost, Resources};
use crate::memory::{implement_array, BankKind, MemoryImpl};
use crate::schedule::Schedule;
use hls_ir::{ArrayId, FuncId, Function, Module, OpId, OpKind};
use std::collections::HashMap;

/// Index of a cell in [`RtlDesign::cells`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a net in [`RtlDesign::nets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a cell implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// A functional unit for an operator kind.
    Operator(OpKind),
    /// An output register (value crosses a state boundary).
    Register,
    /// A multiplexer with `inputs` inputs.
    Mux {
        /// Number of data inputs.
        inputs: u32,
    },
    /// One memory bank.
    Memory {
        /// Bank implementation.
        kind: BankKind,
    },
    /// A function instance's finite-state machine.
    Fsm {
        /// Number of states.
        states: u32,
    },
    /// A top-level I/O port.
    Port,
}

/// One RTL cell.
#[derive(Debug, Clone)]
pub struct RtlCell {
    /// Arena id.
    pub id: CellId,
    /// Hierarchical debug name.
    pub name: String,
    /// Cell kind.
    pub kind: CellKind,
    /// Output width in bits.
    pub bits: u16,
    /// Fabric resources.
    pub resources: Resources,
    /// IR operations this cell implements (function + op).
    pub provenance: Vec<(FuncId, OpId)>,
}

/// One RTL net: a driver cell and its fan-out.
#[derive(Debug, Clone)]
pub struct RtlNet {
    /// Arena id.
    pub id: NetId,
    /// Bit width.
    pub width: u16,
    /// Driving cell.
    pub driver: CellId,
    /// Sink cells (duplicates allowed for multi-pin connections).
    pub sinks: Vec<CellId>,
}

/// The flattened RTL netlist of a design.
#[derive(Debug, Clone, Default)]
pub struct RtlDesign {
    /// All cells.
    pub cells: Vec<RtlCell>,
    /// All nets.
    pub nets: Vec<RtlNet>,
}

impl RtlDesign {
    /// Total fabric resources over all cells.
    pub fn total_resources(&self) -> Resources {
        self.cells
            .iter()
            .fold(Resources::ZERO, |acc, c| acc + c.resources)
    }

    /// Map from IR op (function, op) to the cells carrying it.
    pub fn op_cells(&self) -> HashMap<(FuncId, OpId), Vec<CellId>> {
        let mut map: HashMap<(FuncId, OpId), Vec<CellId>> = HashMap::new();
        for c in &self.cells {
            for &key in &c.provenance {
                map.entry(key).or_default().push(c.id);
            }
        }
        map
    }

    /// Cells of a given kind.
    pub fn cells_of_kind(&self, want: impl Fn(&CellKind) -> bool) -> Vec<&RtlCell> {
        self.cells.iter().filter(|c| want(&c.kind)).collect()
    }
}

/// Per-function synthesis artifacts needed by the netlist generator.
#[derive(Debug)]
pub struct FunctionSynth {
    /// The schedule.
    pub schedule: Schedule,
    /// The binding.
    pub binding: Binding,
}

/// Generate the flattened netlist of `module` given per-function synthesis
/// results. Returns the design plus the per-array memory implementations of
/// the top-level instance (used for reports).
pub fn generate_netlist(
    module: &Module,
    synth: &HashMap<FuncId, FunctionSynth>,
    lib: &CharLib,
) -> RtlDesign {
    let mut gen = NetlistGen {
        module,
        synth,
        lib,
        design: RtlDesign::default(),
        net_of_cell: HashMap::new(),
    };
    gen.emit_top();
    gen.design
}

type Signal = Option<CellId>;

struct NetlistGen<'a> {
    module: &'a Module,
    synth: &'a HashMap<FuncId, FunctionSynth>,
    lib: &'a CharLib,
    design: RtlDesign,
    /// Output net of each driving cell (created lazily, sinks appended).
    net_of_cell: HashMap<CellId, NetId>,
}

impl<'a> NetlistGen<'a> {
    fn add_cell(
        &mut self,
        name: String,
        kind: CellKind,
        bits: u16,
        resources: Resources,
        provenance: Vec<(FuncId, OpId)>,
    ) -> CellId {
        let id = CellId(self.design.cells.len() as u32);
        self.design.cells.push(RtlCell {
            id,
            name,
            kind,
            bits,
            resources,
            provenance,
        });
        id
    }

    /// Connect `driver -> sink` with `width` wires (reuses the driver's
    /// output net).
    fn connect(&mut self, driver: CellId, sink: CellId, width: u16) {
        let net = match self.net_of_cell.get(&driver) {
            Some(&n) => n,
            None => {
                let id = NetId(self.design.nets.len() as u32);
                self.design.nets.push(RtlNet {
                    id,
                    width,
                    driver,
                    sinks: Vec::new(),
                });
                self.net_of_cell.insert(driver, id);
                id
            }
        };
        let net = &mut self.design.nets[net.index()];
        net.width = net.width.max(width);
        net.sinks.push(sink);
    }

    fn emit_top(&mut self) {
        let top = self.module.top_function();
        // Scalar input ports.
        let mut args: Vec<Signal> = Vec::new();
        let mut array_map: HashMap<ArrayId, MemoryCells> = HashMap::new();
        for p in &top.params {
            match p.kind {
                hls_ir::ParamKind::Scalar => {
                    let cell = self.add_cell(
                        format!("port_{}", p.name),
                        CellKind::Port,
                        p.ty.bits(),
                        Resources::ZERO,
                        Vec::new(),
                    );
                    args.push(Some(cell));
                }
                hls_ir::ParamKind::Array { array } => {
                    let cells = self.emit_memory(top, array, "top");
                    array_map.insert(array, cells);
                }
            }
        }
        let ret = self.emit_instance(self.module.top, &args, &array_map, "top");
        if let Some(rv) = ret {
            let port = self.add_cell(
                "port_return".into(),
                CellKind::Port,
                self.design.cells[rv.index()].bits,
                Resources::ZERO,
                Vec::new(),
            );
            let w = self.design.cells[rv.index()].bits;
            self.connect(rv, port, w);
        }
    }

    fn emit_memory(&mut self, f: &Function, array: ArrayId, path: &str) -> MemoryCells {
        let decl = f.array(array);
        let mem: MemoryImpl = implement_array(decl);
        let mut cells = Vec::new();
        for bank in &mem.banks {
            let id = self.add_cell(
                format!("{path}/{}_bank{}", decl.name, bank.index),
                CellKind::Memory { kind: bank.kind },
                bank.bits,
                bank.resources,
                Vec::new(),
            );
            cells.push(id);
        }
        MemoryCells { banks: cells }
    }

    /// Emit one function instance; returns the signal of its return value.
    fn emit_instance(
        &mut self,
        func: FuncId,
        args: &[Signal],
        array_map: &HashMap<ArrayId, MemoryCells>,
        path: &str,
    ) -> Signal {
        let f = self.module.function(func);
        let synth = &self.synth[&func];
        let sched = &synth.schedule;
        let binding = &synth.binding;
        let users = f.users();

        // Local array memories.
        let mut memories: HashMap<ArrayId, MemoryCells> = array_map.clone();
        for a in &f.arrays {
            if !a.is_param {
                let cells = self.emit_memory(f, a.id, path);
                memories.insert(a.id, cells);
            }
        }

        // Functional-unit cells (lazily created on first bound op).
        let mut unit_cells: HashMap<u32, CellId> = HashMap::new();
        // Per unit, per operand position: the signals feeding it.
        let mut unit_inputs: HashMap<u32, Vec<Vec<(Signal, u16)>>> = HashMap::new();

        let mut signals: Vec<Signal> = vec![None; f.ops.len()];
        let mut registered: HashMap<OpId, CellId> = HashMap::new();
        let mut ret_sig: Signal = None;

        // Resolve the signal feeding `consumer` from operand producer `src`,
        // inserting an output register if the value crosses states.
        macro_rules! operand_signal {
            ($self:ident, $signals:ident, $registered:ident, $sched:ident, $src:expr, $consumer:expr) => {{
                let src: OpId = $src;
                let consumer: OpId = $consumer;
                let base = $signals[src.index()];
                match base {
                    None => None,
                    Some(cell) => {
                        if $sched.start[consumer.index()] > $sched.end[src.index()] {
                            let reg = match $registered.get(&src) {
                                Some(&r) => r,
                                None => {
                                    let bits = f.op(src).ty.bits();
                                    let r = $self.add_cell(
                                        format!("{}/reg_{}", path, src.0),
                                        CellKind::Register,
                                        bits,
                                        Resources::new(0, bits as u32, 0, 0),
                                        vec![(func, src)],
                                    );
                                    $self.connect(cell, r, bits);
                                    $registered.insert(src, r);
                                    r
                                }
                            };
                            Some(reg)
                        } else {
                            Some(cell)
                        }
                    }
                }
            }};
        }

        for op in &f.ops {
            let id = op.id;
            let cost = self.lib.cost_of_op(f, op);
            match op.kind {
                OpKind::Const => {}
                OpKind::Read => {
                    let idx = op.imm.unwrap_or(0) as usize;
                    signals[id.index()] = args.get(idx).copied().flatten();
                }
                OpKind::Return => {
                    if let Some(o) = op.operands.first() {
                        ret_sig = operand_signal!(self, signals, registered, sched, o.src, id);
                    }
                }
                OpKind::Alloca | OpKind::Branch | OpKind::Switch | OpKind::Write | OpKind::Port => {
                }
                OpKind::Load | OpKind::Store => {
                    self.emit_memory_access(
                        f,
                        func,
                        op,
                        &memories,
                        &mut signals,
                        &mut registered,
                        sched,
                        path,
                    );
                }
                OpKind::Call => {
                    let callee = op.callee.expect("call without callee");
                    let mut callee_args: Vec<Signal> = Vec::new();
                    for o in &op.operands {
                        callee_args
                            .push(operand_signal!(self, signals, registered, sched, o.src, id));
                    }
                    // Map callee interface arrays to caller bank cells.
                    let callee_f = self.module.function(callee);
                    let mut callee_arrays: HashMap<ArrayId, MemoryCells> = HashMap::new();
                    let mut arg_arrays = op.array_args.iter();
                    for a in &callee_f.arrays {
                        if a.is_param {
                            let caller_arr = arg_arrays.next().expect("missing array argument");
                            callee_arrays.insert(
                                a.id,
                                memories
                                    .get(caller_arr)
                                    .cloned()
                                    .unwrap_or(MemoryCells { banks: vec![] }),
                            );
                        }
                    }
                    let sub_path = format!("{path}/{}_{}", callee_f.name, id.0);
                    let rv = self.emit_instance(callee, &callee_args, &callee_arrays, &sub_path);
                    signals[id.index()] = rv;
                }
                _ if cost == OperatorCost::FREE => {
                    // Wiring op: pass through the first operand's signal.
                    signals[id.index()] = op
                        .operands
                        .first()
                        .and_then(|o| operand_signal!(self, signals, registered, sched, o.src, id));
                }
                _ => {
                    // A real operator.
                    match binding.unit_of[id.index()] {
                        Some(u) if binding.units[u as usize].is_shared() => {
                            let cell = match unit_cells.get(&u) {
                                Some(&c) => c,
                                None => {
                                    let unit = &binding.units[u as usize];
                                    let c = self.add_cell(
                                        format!("{path}/fu{}_{}", u, unit.kind),
                                        CellKind::Operator(unit.kind),
                                        unit.bits,
                                        cost.resources,
                                        unit.ops.iter().map(|&o| (func, o)).collect(),
                                    );
                                    unit_cells.insert(u, c);
                                    c
                                }
                            };
                            signals[id.index()] = Some(cell);
                            // Record operand signals for later mux creation.
                            let slots = unit_inputs
                                .entry(u)
                                .or_insert_with(|| vec![Vec::new(); op.operands.len()]);
                            for (pos, o) in op.operands.iter().enumerate() {
                                let s =
                                    operand_signal!(self, signals, registered, sched, o.src, id);
                                if pos < slots.len() {
                                    slots[pos].push((s, o.width));
                                } else {
                                    slots.push(vec![(s, o.width)]);
                                }
                            }
                        }
                        _ => {
                            let cell = self.add_cell(
                                format!("{path}/op{}_{}", id.0, op.kind),
                                CellKind::Operator(op.kind),
                                op.ty.bits(),
                                cost.resources,
                                vec![(func, id)],
                            );
                            signals[id.index()] = Some(cell);
                            for o in &op.operands {
                                if let Some(s) =
                                    operand_signal!(self, signals, registered, sched, o.src, id)
                                {
                                    self.connect(s, cell, o.width);
                                }
                            }
                        }
                    }
                }
            }
            let _ = &users;
        }

        // Input muxes for shared units.
        let mut unit_keys: Vec<u32> = unit_inputs.keys().copied().collect();
        unit_keys.sort();
        for u in unit_keys {
            let slots = &unit_inputs[&u];
            let cell = unit_cells[&u];
            let unit_kind = self.design.cells[cell.index()].kind;
            let prov = self.design.cells[cell.index()].provenance.clone();
            let _ = unit_kind;
            for slot in slots {
                let inputs: Vec<(CellId, u16)> = slot
                    .iter()
                    .filter_map(|(s, w)| s.map(|c| (c, *w)))
                    .collect();
                if inputs.len() <= 1 {
                    if let Some(&(c, w)) = inputs.first() {
                        self.connect(c, cell, w);
                    }
                    continue;
                }
                let width = inputs.iter().map(|(_, w)| *w).max().unwrap_or(1);
                let mux = self.add_cell(
                    format!("{path}/mux_fu{u}"),
                    CellKind::Mux {
                        inputs: inputs.len() as u32,
                    },
                    width,
                    self.lib.mux_resources(inputs.len() as u32, width),
                    prov.clone(),
                );
                for (c, w) in inputs {
                    self.connect(c, mux, w);
                }
                self.connect(mux, cell, width);
            }
        }

        // FSM.
        let fsm = self.add_cell(
            format!("{path}/fsm"),
            CellKind::Fsm {
                states: sched.total_states,
            },
            (32 - sched.total_states.max(2).leading_zeros()) as u16,
            Resources::new(sched.total_states, sched.total_states, 0, 0),
            Vec::new(),
        );
        // FSM drives mux selects and memory write enables in this instance.
        let targets: Vec<(CellId, u16)> = self
            .design
            .cells
            .iter()
            .filter(|c| {
                c.name.starts_with(path)
                    && matches!(c.kind, CellKind::Mux { .. } | CellKind::Memory { .. })
            })
            .map(|c| {
                let w = match c.kind {
                    CellKind::Mux { inputs } => (32 - inputs.max(2).leading_zeros()) as u16,
                    _ => 1,
                };
                (c.id, w)
            })
            .collect();
        for (c, w) in targets {
            self.connect(fsm, c, w);
        }

        ret_sig
    }

    /// Wire one load/store to its memory banks (with read muxes for unknown
    /// banks) and register the access for address/data mux accounting.
    #[allow(clippy::too_many_arguments)]
    fn emit_memory_access(
        &mut self,
        f: &Function,
        func: FuncId,
        op: &hls_ir::Operation,
        memories: &HashMap<ArrayId, MemoryCells>,
        signals: &mut [Signal],
        registered: &mut HashMap<OpId, CellId>,
        sched: &Schedule,
        path: &str,
    ) {
        let arr = op.array.expect("memory op without array");
        let decl = f.array(arr);
        let Some(mem) = memories.get(&arr) else {
            return;
        };
        if mem.banks.is_empty() {
            return;
        }
        // Which bank(s)? (uses the affine bank-disambiguation analysis)
        let bank = crate::memory::access_bank(f, op)
            .map(|b| b as usize)
            .filter(|&b| b < mem.banks.len());

        // Address and (for stores) data connections.
        let mut connect_in = |gen: &mut Self, src: OpId, width: u16, to: &[CellId]| {
            let sig = {
                let base = signals[src.index()];
                match base {
                    None => None,
                    Some(cell) => {
                        if sched.start[op.id.index()] > sched.end[src.index()] {
                            let reg = match registered.get(&src) {
                                Some(&r) => r,
                                None => {
                                    let bits = f.op(src).ty.bits();
                                    let r = gen.add_cell(
                                        format!("{}/reg_{}", path, src.0),
                                        CellKind::Register,
                                        bits,
                                        Resources::new(0, bits as u32, 0, 0),
                                        vec![(func, src)],
                                    );
                                    gen.connect(cell, r, bits);
                                    registered.insert(src, r);
                                    r
                                }
                            };
                            Some(reg)
                        } else {
                            Some(cell)
                        }
                    }
                }
            };
            if let Some(s) = sig {
                for &m in to {
                    gen.connect(s, m, width);
                }
            }
        };

        let targets: Vec<CellId> = match bank {
            Some(b) => vec![mem.banks[b]],
            None => mem.banks.clone(),
        };

        // Address.
        if let Some(o) = op.operands.first() {
            connect_in(self, o.src, o.width, &targets);
        }
        match op.kind {
            OpKind::Store => {
                if let Some(o) = op.operands.get(1) {
                    connect_in(self, o.src, o.width, &targets);
                }
                // Stores leave their provenance on the banks they write.
                for &t in &targets {
                    self.design.cells[t.index()].provenance.push((func, op.id));
                }
            }
            OpKind::Load => {
                let out = if targets.len() > 1 {
                    // Unknown bank: bank-select read mux.
                    let mux = self.add_cell(
                        format!("{path}/rdmux_{}", op.id.0),
                        CellKind::Mux {
                            inputs: targets.len() as u32,
                        },
                        decl.elem.bits(),
                        self.lib
                            .mux_resources(targets.len() as u32, decl.elem.bits()),
                        vec![(func, op.id)],
                    );
                    for &t in &targets {
                        self.connect(t, mux, decl.elem.bits());
                    }
                    mux
                } else {
                    let t = targets[0];
                    self.design.cells[t.index()].provenance.push((func, op.id));
                    t
                };
                signals[op.id.index()] = Some(out);
            }
            _ => unreachable!("emit_memory_access on non-memory op"),
        }
    }
}

/// The bank cells of one array.
#[derive(Debug, Clone)]
struct MemoryCells {
    banks: Vec<CellId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_function;
    use crate::schedule::{schedule_function, SchedulerOptions};
    use hls_ir::frontend::compile;

    fn netlist(src: &str) -> (Module, RtlDesign) {
        let m = compile(src).unwrap();
        let lib = CharLib::zynq7();
        let opts = SchedulerOptions::default();
        let mut synth = HashMap::new();
        let mut lat = HashMap::new();
        for &fid in &m.bottom_up_order() {
            let f = m.function(fid);
            let s = schedule_function(f, &lib, &opts, &lat);
            lat.insert(fid, s.latency_cycles);
            let b = bind_function(f, &s);
            synth.insert(
                fid,
                FunctionSynth {
                    schedule: s,
                    binding: b,
                },
            );
        }
        let d = generate_netlist(&m, &synth, &lib);
        (m, d)
    }

    #[test]
    fn simple_design_has_cells_and_nets() {
        let (_, d) = netlist("int32 f(int32 x, int32 y) { return x * y + 1; }");
        assert!(
            d.cells.len() >= 4,
            "ports, mul, add, fsm: {}",
            d.cells.len()
        );
        assert!(!d.nets.is_empty());
        let ops = d.cells_of_kind(|k| matches!(k, CellKind::Operator(_)));
        assert!(ops
            .iter()
            .any(|c| matches!(c.kind, CellKind::Operator(OpKind::Mul))));
    }

    #[test]
    fn every_net_has_valid_endpoints() {
        let (_, d) = netlist(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * 3; } return s; }",
        );
        for n in &d.nets {
            assert!(n.driver.index() < d.cells.len());
            assert!(!n.sinks.is_empty());
            for s in &n.sinks {
                assert!(s.index() < d.cells.len());
            }
            assert!(n.width >= 1);
        }
    }

    #[test]
    fn memory_banks_materialize() {
        let (_, d) = netlist(
            "int32 f(int32 a[64]) {\n#pragma HLS array_partition variable=a cyclic factor=4\nint32 s = 0; for (i = 0; i < 64; i++) { s = s + a[i]; } return s; }",
        );
        let mems = d.cells_of_kind(|k| matches!(k, CellKind::Memory { .. }));
        assert_eq!(mems.len(), 4, "four banks");
    }

    #[test]
    fn unknown_bank_load_gets_read_mux() {
        let (_, d) = netlist(
            "int32 f(int32 a[64], int32 j) {\n#pragma HLS array_partition variable=a cyclic factor=4\nreturn a[j]; }",
        );
        let muxes = d.cells_of_kind(|k| matches!(k, CellKind::Mux { .. }));
        assert!(
            muxes.iter().any(|c| c.name.contains("rdmux")),
            "bank-select mux expected"
        );
    }

    #[test]
    fn call_sites_create_instances() {
        let (_, d) = netlist(
            "int32 g(int32 x) { return x * x; }\nint32 f(int32 x) { return g(x) + g(x + 1); }",
        );
        let fsms = d.cells_of_kind(|k| matches!(k, CellKind::Fsm { .. }));
        assert_eq!(fsms.len(), 3, "top + two g instances");
        let muls = d.cells_of_kind(|k| matches!(k, CellKind::Operator(OpKind::Mul)));
        assert_eq!(muls.len(), 2, "one multiplier per instance");
    }

    #[test]
    fn provenance_maps_ops_to_cells() {
        let (m, d) = netlist("int32 f(int32 x) { return x * x + x; }");
        let map = d.op_cells();
        let f = m.top_function();
        let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
        assert!(map.contains_key(&(f.id, mul.id)));
    }

    #[test]
    fn registers_inserted_across_states() {
        // load (1 cycle) feeding an add in the next state -> register between.
        let (_, d) = netlist(
            "int32 f(int32 a[256]) { int32 s = 0; for (i = 0; i < 256; i++) { s = s + a[i]; } return s; }",
        );
        let regs = d.cells_of_kind(|k| matches!(k, CellKind::Register));
        assert!(!regs.is_empty(), "state-crossing values must be registered");
    }

    #[test]
    fn total_resources_nonzero() {
        let (_, d) = netlist("int32 f(int32 x, int32 y) { return x / y; }");
        let r = d.total_resources();
        assert!(r.luts > 0);
        assert!(r.ffs > 0);
    }
}
