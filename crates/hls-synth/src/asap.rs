//! ASAP/ALAP scheduling bounds and operation mobility.
//!
//! The unconstrained as-soon-as-possible and as-late-as-possible control
//! steps bracket every operation's feasible schedule window; their
//! difference (**mobility**, or slack) tells the list scheduler — and any
//! analysis built on top — how critical an operation is. Operations with
//! zero mobility form the critical path of the dataflow graph.

use crate::charlib::CharLib;
use hls_ir::{Function, OpId, OpKind};

/// ASAP/ALAP bounds of one function's operations.
#[derive(Debug, Clone)]
pub struct ScheduleBounds {
    /// Earliest feasible control step per op (arena-indexed).
    pub asap: Vec<u32>,
    /// Latest feasible control step per op (under the ASAP-derived length).
    pub alap: Vec<u32>,
    /// Unconstrained schedule length in control steps.
    pub length: u32,
}

impl ScheduleBounds {
    /// `alap - asap`: the scheduling freedom of an op.
    pub fn mobility(&self, op: OpId) -> u32 {
        self.alap[op.index()] - self.asap[op.index()]
    }

    /// Ops with zero mobility (the dataflow critical path).
    pub fn critical_ops(&self) -> Vec<OpId> {
        (0..self.asap.len())
            .filter(|&i| self.alap[i] == self.asap[i])
            .map(|i| OpId(i as u32))
            .collect()
    }
}

/// Per-op step cost: multi-cycle ops occupy `latency` steps, combinational
/// ops one.
fn steps(lib: &CharLib, f: &Function, op: &hls_ir::Operation) -> u32 {
    lib.cost_of_op(f, op).latency.max(1)
}

/// Compute unconstrained ASAP/ALAP bounds over the data-dependency DAG
/// (phi latch operands are back edges and are ignored, like in the real
/// scheduler).
pub fn asap_alap(f: &Function, lib: &CharLib) -> ScheduleBounds {
    let n = f.ops.len();
    let mut asap = vec![0u32; n];

    // ASAP: forward pass in program order (operands precede uses except
    // phi latches).
    for op in &f.ops {
        if op.kind == OpKind::Phi {
            continue;
        }
        let mut earliest = 0;
        for operand in &op.operands {
            let src = &f.ops[operand.src.index()];
            let finish = asap[operand.src.index()] + steps(lib, f, src);
            earliest = earliest.max(finish);
        }
        asap[op.id.index()] = earliest;
    }
    let length = f
        .ops
        .iter()
        .map(|op| asap[op.id.index()] + steps(lib, f, op))
        .max()
        .unwrap_or(1);

    // ALAP: backward pass.
    let users = f.users();
    let mut alap = vec![u32::MAX; n];
    for op in f.ops.iter().rev() {
        let i = op.id.index();
        let my_steps = steps(lib, f, op);
        let mut latest = length - my_steps.min(length);
        for &u in &users[i] {
            let user = &f.ops[u.index()];
            if user.kind == OpKind::Phi {
                continue; // back edge
            }
            if alap[u.index()] != u32::MAX {
                latest = latest.min(alap[u.index()].saturating_sub(my_steps));
            }
        }
        alap[i] = latest.max(asap[i]);
    }

    ScheduleBounds { asap, alap, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;

    fn bounds(src: &str) -> (hls_ir::Module, ScheduleBounds) {
        let m = compile(src).unwrap();
        let b = asap_alap(m.top_function(), &CharLib::zynq7());
        (m, b)
    }

    #[test]
    fn asap_never_exceeds_alap() {
        let (m, b) = bounds(
            "int32 f(int32 a[8], int32 k) { int32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 8; i++) { s = s + a[i] * k; } return s; }",
        );
        for op in &m.top_function().ops {
            assert!(
                b.asap[op.id.index()] <= b.alap[op.id.index()],
                "op {} asap {} > alap {}",
                op.id,
                b.asap[op.id.index()],
                b.alap[op.id.index()]
            );
        }
    }

    #[test]
    fn chains_have_zero_mobility() {
        // A pure dependency chain: every op is critical.
        let (m, b) = bounds("int32 f(int32 x) { return ((x / x) / x) / x; }");
        let f = m.top_function();
        for op in &f.ops {
            if op.kind == hls_ir::OpKind::SDiv {
                assert_eq!(b.mobility(op.id), 0, "chain op {} must be critical", op.id);
            }
        }
        assert!(!b.critical_ops().is_empty());
    }

    #[test]
    fn parallel_branches_get_mobility() {
        // A cheap add racing a slow divider: the add has slack.
        let (m, b) = bounds("int32 f(int32 x, int32 y) { return (x / y) + (x + y); }");
        let f = m.top_function();
        let add = f
            .ops
            .iter()
            .find(|o| o.kind == hls_ir::OpKind::Add)
            .unwrap();
        assert!(
            b.mobility(add.id) > 0,
            "the add can float within the divider's span"
        );
        let div = f
            .ops
            .iter()
            .find(|o| o.kind == hls_ir::OpKind::SDiv)
            .unwrap();
        assert_eq!(b.mobility(div.id), 0, "the divider is critical");
    }

    #[test]
    fn length_covers_the_critical_path() {
        let (m, b) = bounds("int32 f(int32 x, int32 y) { return x / y; }");
        let f = m.top_function();
        let div = f
            .ops
            .iter()
            .find(|o| o.kind == hls_ir::OpKind::SDiv)
            .unwrap();
        let div_steps = CharLib::zynq7().cost_of_op(f, div).latency;
        assert!(
            b.length >= div_steps,
            "length {} >= divider {}",
            b.length,
            div_steps
        );
    }
}
