//! Resource-constrained list scheduling with operator chaining.
//!
//! Operations are assigned to FSM **control states**. Combinational
//! operators chain within a state while the accumulated delay fits the clock
//! budget; multi-cycle operators (wide multipliers, dividers, memory reads)
//! occupy a state span. Memory ports (2 per BRAM bank) are the binding
//! resource constraint. Loop regions are scheduled once — their body states
//! appear once in the FSM and the latency accounts for the trip count
//! (`trip × body` rolled, `body + (trip-1) × II` pipelined), exactly the
//! control-state model the paper's ΔTcs feature is built on.

use crate::charlib::CharLib;
use hls_ir::directives::Partition;
use hls_ir::{ArrayId, FuncId, Function, OpId, OpKind, Region};
use std::collections::HashMap;

/// The schedule of one function.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Control state in which each op starts (indexed by op arena index).
    pub start: Vec<u32>,
    /// Control state in which each op's result becomes available.
    pub end: Vec<u32>,
    /// Intra-state arrival delay (ns) of each op's output.
    pub out_delay: Vec<f64>,
    /// Number of FSM states.
    pub total_states: u32,
    /// Total function latency in clock cycles (loop trip counts applied).
    pub latency_cycles: u64,
    /// Worst per-state combinational path observed (ns).
    pub estimated_clock_ns: f64,
    /// Ops inside pipelined loop bodies (binding must not share them).
    pub in_pipelined_loop: Vec<bool>,
}

impl Schedule {
    /// Control-state distance between dependent ops `p -> s` (the paper's
    /// ΔTcs, clamped to at least 1 to stay divisible).
    pub fn delta_tcs(&self, p: OpId, s: OpId) -> u32 {
        let prod_end = self.end[p.index()];
        let cons_start = self.start[s.index()];
        cons_start.saturating_sub(prod_end).max(1)
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerOptions {
    /// Target clock period (ns).
    pub clock_ns: f64,
    /// Clock uncertainty subtracted from the chaining budget (ns).
    pub uncertainty_ns: f64,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            clock_ns: 10.0,
            uncertainty_ns: 1.25,
        }
    }
}

/// Schedule `f` given the characterization library and the latencies of
/// already-scheduled callees.
pub fn schedule_function(
    f: &Function,
    lib: &CharLib,
    opts: &SchedulerOptions,
    callee_latency: &HashMap<FuncId, u64>,
) -> Schedule {
    let n = f.ops.len();
    let mut sched = Schedule {
        start: vec![0; n],
        end: vec![0; n],
        out_delay: vec![0.0; n],
        total_states: 0,
        latency_cycles: 0,
        estimated_clock_ns: 0.0,
        in_pipelined_loop: vec![false; n],
    };

    // Memory ordering predecessors.
    let mut mem_preds: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for (p, s) in f.memory_deps() {
        mem_preds.entry(s).or_default().push(p);
    }

    let mut ctx = Ctx {
        f,
        lib,
        budget: (opts.clock_ns - opts.uncertainty_ns).max(1.0),
        callee_latency,
        mem_preds,
        port_usage: HashMap::new(),
        sched: &mut sched,
        extra_cycles: 0,
    };

    let (frontier, _states) = ctx.sched_region(&f.body, 0, false);
    let extra = ctx.extra_cycles;
    sched.total_states = frontier + 1;
    sched.latency_cycles = frontier as u64 + 1 + extra;
    sched
}

struct Ctx<'a> {
    f: &'a Function,
    lib: &'a CharLib,
    budget: f64,
    callee_latency: &'a HashMap<FuncId, u64>,
    mem_preds: HashMap<OpId, Vec<OpId>>,
    /// (array, bank, state) -> accesses scheduled.
    port_usage: HashMap<(ArrayId, u32, u32), u32>,
    sched: &'a mut Schedule,
    extra_cycles: u64,
}

impl<'a> Ctx<'a> {
    /// Schedule a region starting no earlier than `floor`; returns
    /// `(frontier, states_used)` where `frontier` is the last state used (or
    /// `floor` if empty).
    fn sched_region(&mut self, r: &Region, floor: u32, pipelined: bool) -> (u32, u32) {
        match r {
            Region::Block(ops) => {
                let mut frontier = floor;
                for &id in ops {
                    let end = self.sched_op(id, floor, pipelined);
                    frontier = frontier.max(end);
                }
                (frontier, frontier - floor + 1)
            }
            Region::Seq(rs) => {
                let mut frontier = floor;
                let mut cursor = floor;
                for sub in rs {
                    match sub {
                        Region::Loop { .. } => {
                            // Loops occupy their own states after everything
                            // already issued.
                            let entry = frontier + 1;
                            let (fr, _) = self.sched_region(sub, entry, pipelined);
                            frontier = fr;
                            cursor = fr + 1;
                        }
                        _ => {
                            let (fr, _) = self.sched_region(sub, cursor, pipelined);
                            frontier = frontier.max(fr);
                        }
                    }
                }
                (frontier, frontier - floor + 1)
            }
            Region::Loop {
                body,
                trip_count,
                pipeline_ii,
                ..
            } => {
                let is_pipe = pipeline_ii.is_some();
                let (fr, states) = self.sched_region(body, floor, pipelined || is_pipe);
                let body_cycles = states as u64;
                let loop_cycles = match pipeline_ii {
                    Some(ii) => body_cycles + trip_count.saturating_sub(1) * *ii as u64,
                    None => body_cycles * trip_count,
                };
                self.extra_cycles += loop_cycles - body_cycles;
                (fr, states)
            }
        }
    }

    fn sched_op(&mut self, id: OpId, floor: u32, pipelined: bool) -> u32 {
        let op = self.f.op(id);
        let cost = self.lib.cost_of_op(self.f, op);
        self.sched.in_pipelined_loop[id.index()] = pipelined;

        // Earliest state from data dependencies (phis ignore their latch —
        // it is a back edge).
        let mut state = floor;
        let mut chain_delay: f64 = 0.0;
        let deps: Vec<OpId> = {
            let data = op.operands.iter().map(|o| o.src);
            match op.kind {
                OpKind::Phi => Vec::new(),
                _ => data.collect(),
            }
        };
        let mem: Vec<OpId> = self.mem_preds.get(&id).cloned().unwrap_or_default();
        for src in deps.iter().chain(mem.iter()) {
            // Forward references (latches) would have end == 0 before being
            // scheduled; program order guarantees real deps are scheduled.
            let e = self.sched.end[src.index()];
            let d = self.sched.out_delay[src.index()];
            if e > state {
                state = e;
                chain_delay = d;
            } else if e == state {
                chain_delay = chain_delay.max(d);
            }
        }

        // Memory port constraint (Complete partitions are registers: free).
        let (is_mem, banks, complete) = match (op.kind.is_memory(), op.array) {
            (true, Some(a)) => {
                let arr = self.f.array(a);
                (true, arr.banks(), arr.partition == Partition::Complete)
            }
            _ => (false, 1, false),
        };

        let mut latency = cost.latency;
        let mut delay = cost.delay_ns;
        if is_mem && complete {
            // Register-file access: combinational mux instead of BRAM port.
            latency = 0;
            delay = self
                .lib
                .mux_delay(self.f.array(op.array.unwrap()).len.min(64));
        }
        if op.kind == OpKind::Call {
            latency = op
                .callee
                .and_then(|c| self.callee_latency.get(&c))
                .copied()
                .unwrap_or(1)
                .min(u32::MAX as u64 / 4) as u32;
        }

        // Chaining decision.
        let (start, out_delay) = if latency == 0 {
            if chain_delay + delay <= self.budget {
                (state, chain_delay + delay)
            } else {
                (state + 1, delay)
            }
        } else {
            // Registered operator: starts in the dependency state.
            (state, 0.0)
        };

        // Find a state with a free memory port.
        let mut start = start;
        if is_mem && !complete {
            let a = op.array.unwrap();
            let bank = self.access_bank(op);
            loop {
                let ok = match bank {
                    Some(b) => *self.port_usage.get(&(a, b, start)).unwrap_or(&0) < 2,
                    None => {
                        // Unknown index: needs a port on every bank.
                        (0..banks).all(|b| *self.port_usage.get(&(a, b, start)).unwrap_or(&0) < 2)
                    }
                };
                if ok {
                    break;
                }
                start += 1;
            }
            match bank {
                Some(b) => *self.port_usage.entry((a, b, start)).or_insert(0) += 1,
                None => {
                    for b in 0..banks {
                        *self.port_usage.entry((a, b, start)).or_insert(0) += 1;
                    }
                }
            }
        }

        let end = start + latency;
        let i = id.index();
        self.sched.start[i] = start;
        self.sched.end[i] = end;
        self.sched.out_delay[i] = out_delay;
        self.sched.estimated_clock_ns = self.sched.estimated_clock_ns.max(out_delay).max(delay);
        end
    }

    /// The bank a memory op addresses, when statically determinable.
    fn access_bank(&self, op: &hls_ir::Operation) -> Option<u32> {
        crate::memory::access_bank(self.f, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;

    fn schedule_top(src: &str) -> (hls_ir::Module, Schedule) {
        let m = compile(src).expect("compile");
        let s = schedule_function(
            m.top_function(),
            &CharLib::zynq7(),
            &SchedulerOptions::default(),
            &HashMap::new(),
        );
        (m, s)
    }

    #[test]
    fn straight_line_chains_in_few_states() {
        let (_, s) = schedule_top("int32 f(int32 x) { return x + 1 + 2 + 3; }");
        assert!(s.total_states <= 2, "short add chain fits one state");
        assert!(s.latency_cycles <= 2);
    }

    #[test]
    fn long_chain_splits_states() {
        // 40 chained 32-bit adds exceed a 10 ns budget.
        let mut body = String::from("int32 f(int32 x) { int32 a = x;\n");
        for _ in 0..40 {
            body.push_str("a = a + x;\n");
        }
        body.push_str("return a; }");
        let (_, s) = schedule_top(&body);
        assert!(s.total_states > 1, "long chains must be split");
        assert!(s.estimated_clock_ns <= 10.0);
    }

    #[test]
    fn rolled_loop_multiplies_latency() {
        let (_, s) = schedule_top(
            "int32 f(int32 a[64]) { int32 acc = 0; for (i = 0; i < 64; i++) { acc = acc + a[i]; } return acc; }",
        );
        // 64 iterations of a body with >= 2 states (load is 1 cycle).
        assert!(
            s.latency_cycles >= 64,
            "latency {} too small",
            s.latency_cycles
        );
        // but the FSM only holds one copy of the body states
        assert!(s.total_states < 20);
    }

    #[test]
    fn pipelined_loop_latency_uses_ii() {
        let rolled = schedule_top(
            "int32 f(int32 a[64]) { int32 acc = 0; for (i = 0; i < 64; i++) { acc = acc + a[i]; } return acc; }",
        )
        .1
        .latency_cycles;
        let piped = schedule_top(
            "int32 f(int32 a[64]) { int32 acc = 0;\n#pragma HLS pipeline II=1\nfor (i = 0; i < 64; i++) { acc = acc + a[i]; } return acc; }",
        )
        .1
        .latency_cycles;
        assert!(
            piped < rolled,
            "pipelining reduces latency: {piped} vs {rolled}"
        );
    }

    #[test]
    fn memory_ports_serialize_unrolled_access() {
        // Fully unrolled loop over an unpartitioned array: 2 ports -> >= 4
        // states of loads for 8 accesses.
        let (_, s) = schedule_top(
            "int32 f(int32 a[8]) { int32 acc = 0;\n#pragma HLS unroll\nfor (i = 0; i < 8; i++) { acc = acc + a[i]; } return acc; }",
        );
        assert!(
            s.total_states >= 4,
            "port conflicts must serialize: {} states",
            s.total_states
        );
    }

    #[test]
    fn partitioning_relieves_ports() {
        let unpart = schedule_top(
            "int32 f(int32 a[8]) { int32 acc = 0;\n#pragma HLS unroll\nfor (i = 0; i < 8; i++) { acc = acc + a[i]; } return acc; }",
        )
        .1
        .latency_cycles;
        let part = schedule_top(
            "int32 f(int32 a[8]) {\n#pragma HLS array_partition variable=a complete\nint32 acc = 0;\n#pragma HLS unroll\nfor (i = 0; i < 8; i++) { acc = acc + a[i]; } return acc; }",
        )
        .1
        .latency_cycles;
        assert!(
            part < unpart,
            "complete partitioning should cut latency ({part} vs {unpart})"
        );
    }

    #[test]
    fn multicycle_divider_spans_states() {
        let (m, s) = schedule_top("int32 f(int32 x, int32 y) { return x / y; }");
        let f = m.top_function();
        let div = f
            .ops
            .iter()
            .find(|o| o.kind == OpKind::SDiv)
            .expect("divider present");
        assert!(s.end[div.id.index()] > s.start[div.id.index()]);
    }

    #[test]
    fn delta_tcs_is_at_least_one() {
        let (m, s) = schedule_top("int32 f(int32 x) { return x + 1; }");
        let f = m.top_function();
        let add = f.ops.iter().find(|o| o.kind == OpKind::Add).unwrap();
        let rd = f.ops.iter().find(|o| o.kind == OpKind::Read).unwrap();
        assert!(s.delta_tcs(rd.id, add.id) >= 1);
    }
}
