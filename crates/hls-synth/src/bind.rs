//! Functional-unit binding with resource sharing.
//!
//! Expensive operators (multipliers, dividers, square roots) whose execution
//! intervals are disjoint in the schedule share one hardware unit; the cost
//! is input multiplexers. The shared-unit map is what drives the
//! dependency-graph node merging of the paper (Fig 4: "merging the nodes
//! that share the same RTL module").

use crate::schedule::Schedule;
use hls_ir::{Function, OpId, OpKind};
use std::collections::HashMap;

/// A functional unit holding one or more operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalUnit {
    /// Unit index.
    pub id: u32,
    /// Operator kind implemented by the unit.
    pub kind: OpKind,
    /// Result bitwidth of the unit.
    pub bits: u16,
    /// Operations bound to this unit (shared if > 1).
    pub ops: Vec<OpId>,
}

impl FunctionalUnit {
    /// Whether the unit is shared by several operations.
    pub fn is_shared(&self) -> bool {
        self.ops.len() > 1
    }
}

/// The binding of one function.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// All functional units (shared and private).
    pub units: Vec<FunctionalUnit>,
    /// Per op (arena index): the unit implementing it, if it is a
    /// unit-bound (sharable-kind) op.
    pub unit_of: Vec<Option<u32>>,
}

impl Binding {
    /// Units shared by more than one op.
    pub fn shared_units(&self) -> impl Iterator<Item = &FunctionalUnit> {
        self.units.iter().filter(|u| u.is_shared())
    }

    /// The ops sharing a unit with `op` (including `op` itself), or an empty
    /// slice if the op is unshared.
    pub fn sharing_group(&self, op: OpId) -> &[OpId] {
        match self.unit_of.get(op.index()).copied().flatten() {
            Some(u) => &self.units[u as usize].ops,
            None => &[],
        }
    }
}

/// Operator kinds worth sharing (mirrors Vivado HLS defaults: multipliers,
/// dividers and other large cores are shared; adders and logic are not).
pub fn is_sharable(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::Mul
            | OpKind::SDiv
            | OpKind::UDiv
            | OpKind::SRem
            | OpKind::URem
            | OpKind::Sqrt
            | OpKind::FMul
            | OpKind::FDiv
    )
}

/// Bind sharable ops to functional units by greedy interval assignment:
/// two ops may share a unit if their `[start, end]` state intervals are
/// disjoint and neither sits in a pipelined loop body (a pipelined op needs
/// its unit every II cycles).
pub fn bind_function(f: &Function, sched: &Schedule) -> Binding {
    let mut binding = Binding {
        units: Vec::new(),
        unit_of: vec![None; f.ops.len()],
    };
    // Group candidate ops by (kind, width bucket): a 33-bit and a 32-bit
    // divide can share one 40-bit unit, so widths are bucketed to the next
    // multiple of 8.
    let bucket = |bits: u16| bits.div_ceil(8) * 8;
    let mut groups: HashMap<(OpKind, u16), Vec<OpId>> = HashMap::new();
    for op in &f.ops {
        if is_sharable(op.kind) {
            groups
                .entry((op.kind, bucket(op.ty.bits())))
                .or_default()
                .push(op.id);
        }
    }
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort();
    for key in keys {
        let mut ops = groups.remove(&key).unwrap();
        ops.sort_by_key(|id| (sched.start[id.index()], id.0));
        // Greedy: assign each op to the first unit whose last interval ends
        // before this op starts.
        let mut unit_last_end: Vec<(u32, u32)> = Vec::new(); // (unit idx in binding.units, end)
        for id in ops {
            let start = sched.start[id.index()];
            let end = sched.end[id.index()];
            // A unit is busy in [start, end-1] (the result is handed off at
            // `end`); combinational ops occupy their single state.
            let busy_end = if end > start { end - 1 } else { end };
            let pipelined = sched.in_pipelined_loop[id.index()];
            let slot = if pipelined {
                None
            } else {
                unit_last_end.iter_mut().find(|(u, last)| {
                    *last < start
                        && !sched.in_pipelined_loop[binding.units[*u as usize].ops[0].index()]
                })
            };
            match slot {
                Some((u, last)) => {
                    binding.units[*u as usize].ops.push(id);
                    binding.unit_of[id.index()] = Some(*u);
                    *last = busy_end;
                }
                None => {
                    let u = binding.units.len() as u32;
                    binding.units.push(FunctionalUnit {
                        id: u,
                        kind: key.0,
                        bits: key.1,
                        ops: vec![id],
                    });
                    binding.unit_of[id.index()] = Some(u);
                    unit_last_end.push((u, busy_end));
                }
            }
        }
    }
    binding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charlib::CharLib;
    use crate::schedule::{schedule_function, SchedulerOptions};
    use hls_ir::frontend::compile;
    use std::collections::HashMap as Map;

    fn bind_top(src: &str) -> (hls_ir::Module, Schedule, Binding) {
        let m = compile(src).unwrap();
        let s = schedule_function(
            m.top_function(),
            &CharLib::zynq7(),
            &SchedulerOptions::default(),
            &Map::new(),
        );
        let b = bind_function(m.top_function(), &s);
        (m, s, b)
    }

    #[test]
    fn sequential_multiplies_share_one_unit() {
        // Rolled loop: one multiply executed 8 times -> exactly 1 unit.
        let (_, _, b) = bind_top(
            "int32 f(int32 a[8], int32 k) { int32 acc = 0; for (i = 0; i < 8; i++) { acc = acc + a[i] * k; } return acc; }",
        );
        let mul_units: Vec<_> = b.units.iter().filter(|u| u.kind == OpKind::Mul).collect();
        assert_eq!(mul_units.len(), 1);
    }

    #[test]
    fn serialized_dividers_share() {
        // Two dividers that cannot run concurrently (data dependent).
        let (_, _, b) = bind_top("int32 f(int32 x, int32 y) { return (x / y) / y; }");
        let div_units: Vec<_> = b.units.iter().filter(|u| u.kind == OpKind::SDiv).collect();
        assert_eq!(div_units.len(), 1, "dependent divides share one unit");
        assert!(div_units[0].is_shared());
    }

    #[test]
    fn concurrent_multiplies_get_private_units() {
        // Independent multiplies scheduled in the same state need 2 units.
        let (m, s, b) = bind_top("int32 f(int32 x, int32 y) { return x * x + y * y; }");
        let f = m.top_function();
        let muls: Vec<_> = f.ops.iter().filter(|o| o.kind == OpKind::Mul).collect();
        assert_eq!(muls.len(), 2);
        if s.start[muls[0].id.index()] == s.start[muls[1].id.index()] {
            assert_ne!(b.unit_of[muls[0].id.index()], b.unit_of[muls[1].id.index()]);
        }
    }

    #[test]
    fn adders_never_shared() {
        let (_, _, b) = bind_top("int32 f(int32 x) { return x + 1 + 2; }");
        assert!(b.units.iter().all(|u| u.kind != OpKind::Add));
    }

    #[test]
    fn sharing_group_lookup() {
        let (m, _, b) = bind_top("int32 f(int32 x, int32 y) { return (x / y) / y; }");
        let f = m.top_function();
        let div = f.ops.iter().find(|o| o.kind == OpKind::SDiv).unwrap();
        assert_eq!(b.sharing_group(div.id).len(), 2);
        let add = f.ops.iter().find(|o| o.kind == OpKind::Read).unwrap();
        assert!(b.sharing_group(add.id).is_empty());
    }
}
