//! The HLS synthesis report.
//!
//! Mirrors what the paper extracts from Vivado HLS for the *Global
//! information* feature category: per-function resource usage and timing,
//! memory statistics (#words, #banks, #bits, #primitives) and multiplexer
//! statistics (number, resource usage, input size, bitwidth).

use crate::bind::Binding;
use crate::charlib::{CharLib, Resources};
use crate::memory::implement_array;
use crate::schedule::Schedule;
use hls_ir::{FuncId, Function, Module, OpKind};
use std::collections::HashMap;

/// Memory statistics of one function (paper Table II, Global information).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    /// Total words over all arrays.
    pub words: u64,
    /// Total banks over all arrays.
    pub banks: u64,
    /// Total data bits.
    pub bits: u64,
    /// words × bits × banks (the paper's "#primitives").
    pub primitives: u64,
}

/// Multiplexer statistics of one function.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MuxStats {
    /// Number of multiplexers.
    pub count: u64,
    /// LUTs consumed by multiplexers.
    pub luts: u64,
    /// Summed input counts.
    pub input_size: u64,
    /// Summed data widths.
    pub bits: u64,
}

/// Per-function synthesis report.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Resource estimate including callee instances.
    pub resources: Resources,
    /// Latency in cycles (trip counts applied).
    pub latency_cycles: u64,
    /// Estimated achievable clock period (ns).
    pub estimated_clock_ns: f64,
    /// Memory statistics.
    pub memory: MemoryStats,
    /// Multiplexer statistics.
    pub mux: MuxStats,
}

/// Whole-design report.
#[derive(Debug, Clone)]
pub struct HlsReport {
    /// Target clock period (ns).
    pub clock_target_ns: f64,
    /// Clock uncertainty (ns).
    pub clock_uncertainty_ns: f64,
    /// Top function id.
    pub top: FuncId,
    /// Per-function reports.
    pub functions: HashMap<FuncId, FunctionReport>,
}

impl HlsReport {
    /// The report of the top function.
    pub fn top_report(&self) -> &FunctionReport {
        &self.functions[&self.top]
    }

    /// Design latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.top_report().latency_cycles
    }
}

/// Compute the analytic report of one function (callee reports must already
/// exist for every function it calls).
pub fn function_report(
    f: &Function,
    sched: &Schedule,
    binding: &Binding,
    lib: &CharLib,
    callee_reports: &HashMap<FuncId, FunctionReport>,
) -> FunctionReport {
    let mut resources = Resources::ZERO;

    // Operator costs (shared units counted once).
    for op in &f.ops {
        match binding.unit_of[op.id.index()] {
            Some(u) => {
                // Count each unit at its first op only.
                if binding.units[u as usize].ops.first() == Some(&op.id) {
                    resources += lib.cost_of_op(f, op).resources;
                }
            }
            None => resources += lib.cost_of_op(f, op).resources,
        }
    }

    // Output registers for state-crossing values (approximation: every op
    // whose result lives past its end state).
    let users = f.users();
    for op in &f.ops {
        if !op.kind.has_result() {
            continue;
        }
        let crosses = users[op.id.index()]
            .iter()
            .any(|&u| sched.start[u.index()] > sched.end[op.id.index()]);
        if crosses {
            resources += Resources::new(0, op.ty.bits() as u32, 0, 0);
        }
    }

    // Memories.
    let mut memory = MemoryStats::default();
    for a in &f.arrays {
        let m = implement_array(a);
        resources += m.resources();
        memory.words += a.len as u64;
        memory.banks += a.banks() as u64;
        memory.bits += a.total_bits();
        memory.primitives += a.len as u64 * a.elem.bits() as u64 * a.banks() as u64;
    }

    // Multiplexers: shared-unit input muxes + memory port muxes.
    let mut mux = MuxStats::default();
    for unit in binding.shared_units() {
        let k = unit.ops.len() as u32;
        // Two operand ports per unit.
        for _ in 0..2 {
            let r = lib.mux_resources(k, unit.bits);
            mux.count += 1;
            mux.luts += r.luts as u64;
            mux.input_size += k as u64;
            mux.bits += unit.bits as u64;
            resources += r;
        }
    }
    for a in &f.arrays {
        let accessors = f
            .ops
            .iter()
            .filter(|o| o.kind.is_memory() && o.array == Some(a.id))
            .count() as u32;
        if accessors > 1 && a.partition != hls_ir::directives::Partition::Complete {
            let addr_bits = (32 - a.len.max(2).leading_zeros()) as u16;
            let r = lib.mux_resources(accessors, addr_bits.max(a.elem.bits()));
            mux.count += 1;
            mux.luts += r.luts as u64;
            mux.input_size += accessors as u64;
            mux.bits += a.elem.bits() as u64;
            resources += r;
        }
    }

    // FSM.
    resources += Resources::new(sched.total_states, sched.total_states, 0, 0);

    // Callee instances (one per call site).
    let mut mux_from_callees = MuxStats::default();
    for op in &f.ops {
        if op.kind == OpKind::Call {
            if let Some(r) = op.callee.and_then(|c| callee_reports.get(&c)) {
                resources += r.resources;
                memory.words += r.memory.words;
                memory.banks += r.memory.banks;
                memory.bits += r.memory.bits;
                memory.primitives += r.memory.primitives;
                mux_from_callees.count += r.mux.count;
                mux_from_callees.luts += r.mux.luts;
                mux_from_callees.input_size += r.mux.input_size;
                mux_from_callees.bits += r.mux.bits;
            }
        }
    }
    mux.count += mux_from_callees.count;
    mux.luts += mux_from_callees.luts;
    mux.input_size += mux_from_callees.input_size;
    mux.bits += mux_from_callees.bits;

    FunctionReport {
        name: f.name.clone(),
        resources,
        latency_cycles: sched.latency_cycles,
        estimated_clock_ns: sched.estimated_clock_ns,
        memory,
        mux,
    }
}

/// Build the whole-design report (functions must be passed bottom-up).
pub fn build_report(
    module: &Module,
    schedules: &HashMap<FuncId, Schedule>,
    bindings: &HashMap<FuncId, Binding>,
    lib: &CharLib,
    clock_target_ns: f64,
    clock_uncertainty_ns: f64,
) -> HlsReport {
    let mut functions: HashMap<FuncId, FunctionReport> = HashMap::new();
    for fid in module.bottom_up_order() {
        let f = module.function(fid);
        let rep = function_report(f, &schedules[&fid], &bindings[&fid], lib, &functions);
        functions.insert(fid, rep);
    }
    HlsReport {
        clock_target_ns,
        clock_uncertainty_ns,
        top: module.top,
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_function;
    use crate::schedule::{schedule_function, SchedulerOptions};
    use hls_ir::frontend::compile;

    fn report(src: &str) -> HlsReport {
        let m = compile(src).unwrap();
        let lib = CharLib::zynq7();
        let opts = SchedulerOptions::default();
        let mut schedules = HashMap::new();
        let mut bindings = HashMap::new();
        let mut lat = HashMap::new();
        for fid in m.bottom_up_order() {
            let f = m.function(fid);
            let s = schedule_function(f, &lib, &opts, &lat);
            lat.insert(fid, s.latency_cycles);
            bindings.insert(fid, bind_function(f, &s));
            schedules.insert(fid, s);
        }
        build_report(&m, &schedules, &bindings, &lib, 10.0, 1.25)
    }

    #[test]
    fn resources_accumulate_into_top() {
        let r = report(
            "int32 g(int32 x) { return x * x; }\nint32 f(int32 x) { return g(x) + g(x + 1); }",
        );
        let top = r.top_report();
        assert!(top.resources.dsps >= 2, "two g instances worth of DSPs");
        assert!(top.latency_cycles >= 2);
    }

    #[test]
    fn memory_stats_counted() {
        let r = report(
            "int32 f(int32 a[128]) {\n#pragma HLS array_partition variable=a cyclic factor=4\nint32 s = 0; for (i = 0; i < 128; i++) { s = s + a[i]; } return s; }",
        );
        let top = r.top_report();
        assert_eq!(top.memory.words, 128);
        assert_eq!(top.memory.banks, 4);
        assert_eq!(top.memory.bits, 128 * 32);
    }

    #[test]
    fn shared_units_produce_mux_stats() {
        let r = report("int32 f(int32 x, int32 y) { return (x / y) / y; }");
        let top = r.top_report();
        assert!(top.mux.count >= 2, "shared divider needs input muxes");
        assert!(top.mux.luts > 0);
    }

    #[test]
    fn estimated_clock_below_target() {
        let r = report("int32 f(int32 x) { return x + 1; }");
        assert!(r.top_report().estimated_clock_ns <= r.clock_target_ns);
    }
}
