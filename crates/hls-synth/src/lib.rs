//! # hls-synth
//!
//! High-level synthesis over [`hls_ir`]: operator characterization,
//! resource-constrained list scheduling with operator chaining, functional
//! unit binding with resource sharing, memory banking, RTL netlist
//! generation (datapath + FSM + multiplexers), and the HLS report that feeds
//! the *Global information* feature category of the congestion model.
//!
//! This crate stands in for the Vivado HLS middle/back end in the
//! reproduction of *Zhao et al. (DATE 2019)*.
//!
//! ```
//! use hls_ir::frontend::compile;
//! use hls_synth::flow::{HlsFlow, HlsOptions};
//!
//! let m = compile(
//!     "int32 dot(int32 a[8], int32 b[8]) {\n\
//!      int32 acc = 0;\n\
//!      for (i = 0; i < 8; i++) { acc = acc + a[i] * b[i]; }\n\
//!      return acc; }",
//! )?;
//! let design = HlsFlow::new(HlsOptions::default()).run(&m)?;
//! assert!(design.report.latency_cycles() > 0);
//! assert!(!design.rtl.cells.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asap;
pub mod bind;
pub mod charlib;
pub mod datapath;
pub mod flow;
pub mod memory;
pub mod report;
pub mod schedule;

pub use asap::{asap_alap, ScheduleBounds};
pub use bind::{Binding, FunctionalUnit};
pub use charlib::{CharLib, OperatorCost, Resources};
pub use datapath::{CellId, CellKind, NetId, RtlCell, RtlDesign, RtlNet};
pub use flow::{HlsFlow, HlsOptions, SynthError, SynthesizedDesign};
pub use report::{FunctionReport, HlsReport, MemoryStats, MuxStats};
pub use schedule::Schedule;
