//! The end-to-end HLS flow: verify → schedule → bind → netlist → report.

use crate::bind::{bind_function, Binding};
use crate::charlib::CharLib;
use crate::datapath::{generate_netlist, FunctionSynth, RtlDesign};
use crate::report::{build_report, HlsReport};
use crate::schedule::{schedule_function, Schedule, SchedulerOptions};
use hls_ir::{FuncId, Module};
use std::collections::HashMap;
use std::fmt;

/// HLS flow options.
#[derive(Debug, Clone)]
pub struct HlsOptions {
    /// Target clock period in ns (the paper targets 100 MHz = 10 ns).
    pub clock_ns: f64,
    /// Clock uncertainty in ns (Vivado HLS default: 12.5 % of the period).
    pub uncertainty_ns: f64,
}

impl Default for HlsOptions {
    fn default() -> Self {
        HlsOptions {
            clock_ns: 10.0,
            uncertainty_ns: 1.25,
        }
    }
}

/// Errors raised by the synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The input module failed IR verification.
    InvalidIr(String),
    /// A transient fault injected by an armed [`faultkit`] plan at the
    /// `hls` injection point (chaos testing only — never raised in
    /// production runs).
    Injected(String),
}

impl SynthError {
    /// Whether a supervisor should retry the stage: verification failures
    /// are deterministic and permanent, injected faults are transient by
    /// definition.
    pub fn is_transient(&self) -> bool {
        matches!(self, SynthError::Injected(_))
    }
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidIr(m) => write!(f, "invalid IR: {m}"),
            SynthError::Injected(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Everything the downstream implementation flow (and the congestion
/// predictor) needs about a synthesized design.
#[derive(Debug)]
pub struct SynthesizedDesign {
    /// The synthesized module (owned copy).
    pub module: Module,
    /// Per-function schedules.
    pub schedules: HashMap<FuncId, Schedule>,
    /// Per-function bindings.
    pub bindings: HashMap<FuncId, Binding>,
    /// Flattened RTL netlist.
    pub rtl: RtlDesign,
    /// HLS report (global features).
    pub report: HlsReport,
    /// Characterization library used.
    pub lib: CharLib,
    /// Flow options used.
    pub options: HlsOptions,
}

impl SynthesizedDesign {
    /// The schedule of the top function.
    pub fn top_schedule(&self) -> &Schedule {
        &self.schedules[&self.module.top]
    }

    /// The binding of the top function.
    pub fn top_binding(&self) -> &Binding {
        &self.bindings[&self.module.top]
    }
}

/// The HLS flow driver.
#[derive(Debug, Clone, Default)]
pub struct HlsFlow {
    options: HlsOptions,
    lib: CharLib,
}

impl HlsFlow {
    /// A flow with the given options and the default Zynq-7000
    /// characterization library.
    pub fn new(options: HlsOptions) -> Self {
        HlsFlow {
            options,
            lib: CharLib::zynq7(),
        }
    }

    /// Override the characterization library.
    pub fn with_lib(mut self, lib: CharLib) -> Self {
        self.lib = lib;
        self
    }

    /// Run the flow on a module.
    ///
    /// # Errors
    /// Returns [`SynthError::InvalidIr`] if the module fails verification.
    pub fn run(&self, module: &Module) -> Result<SynthesizedDesign, SynthError> {
        hls_ir::verify::verify_module(module).map_err(|e| SynthError::InvalidIr(e.to_string()))?;
        // Chaos-testing injection point; a no-op unless a fault plan is
        // armed on this thread by a faultkit supervisor.
        faultkit::inject("hls").map_err(|f| SynthError::Injected(f.to_string()))?;

        let sched_opts = SchedulerOptions {
            clock_ns: self.options.clock_ns,
            uncertainty_ns: self.options.uncertainty_ns,
        };

        let mut schedules: HashMap<FuncId, Schedule> = HashMap::new();
        let mut bindings: HashMap<FuncId, Binding> = HashMap::new();
        let mut latencies: HashMap<FuncId, u64> = HashMap::new();
        for fid in module.bottom_up_order() {
            let f = module.function(fid);
            let sched = schedule_function(f, &self.lib, &sched_opts, &latencies);
            latencies.insert(fid, sched.latency_cycles);
            let binding = bind_function(f, &sched);
            bindings.insert(fid, binding);
            schedules.insert(fid, sched);
        }
        // Unreachable functions still need entries (netlist gen indexes by id).
        for f in &module.functions {
            if let std::collections::hash_map::Entry::Vacant(e) = schedules.entry(f.id) {
                let sched = schedule_function(f, &self.lib, &sched_opts, &latencies);
                let binding = bind_function(f, &sched);
                e.insert(sched);
                bindings.insert(f.id, binding);
            }
        }

        let mut synth: HashMap<FuncId, FunctionSynth> = HashMap::new();
        for (&fid, sched) in &schedules {
            synth.insert(
                fid,
                FunctionSynth {
                    schedule: sched.clone(),
                    binding: bindings[&fid].clone(),
                },
            );
        }
        let rtl = generate_netlist(module, &synth, &self.lib);
        let report = build_report(
            module,
            &schedules,
            &bindings,
            &self.lib,
            self.options.clock_ns,
            self.options.uncertainty_ns,
        );

        Ok(SynthesizedDesign {
            module: module.clone(),
            schedules,
            bindings,
            rtl,
            report,
            lib: self.lib.clone(),
            options: self.options.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;

    #[test]
    fn flow_runs_end_to_end() {
        let m = compile(
            "int32 f(int32 a[32], int32 k) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        assert!(d.report.latency_cycles() >= 32);
        assert!(d.rtl.total_resources().total() > 0);
        assert!(!d.rtl.op_cells().is_empty());
    }

    #[test]
    fn unrolled_version_uses_more_resources_less_time() {
        let rolled = compile(
            "int32 f(int32 a[32], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let unrolled = compile(
            "int32 f(int32 a[32], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let flow = HlsFlow::new(HlsOptions::default());
        let dr = flow.run(&rolled).unwrap();
        let du = flow.run(&unrolled).unwrap();
        assert!(
            du.report.latency_cycles() < dr.report.latency_cycles(),
            "unrolled faster: {} vs {}",
            du.report.latency_cycles(),
            dr.report.latency_cycles()
        );
        assert!(
            du.report.top_report().resources.dsps > dr.report.top_report().resources.dsps,
            "unrolled uses more multipliers"
        );
    }

    #[test]
    fn invalid_ir_rejected() {
        use hls_ir::{FuncId, Function, Module, OpId, OpKind, Operation};
        let mut m = Module::new("bad");
        let mut f = Function::new(FuncId(0), "f");
        // Op in arena but not in body.
        f.push_op(Operation::new(OpId(0), OpKind::Add, hls_ir::IrType::int(8)));
        m.push_function(f);
        assert!(HlsFlow::new(HlsOptions::default()).run(&m).is_err());
    }
}
