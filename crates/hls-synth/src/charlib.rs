//! Operator pre-characterization library.
//!
//! The paper extracts "the resource usage, operation type, bitwidth and
//! delay (ns) for each operator" from the HLS pre-characterization libraries
//! (§III-A2). This module provides that library: per operation kind and
//! bitwidth it reports delay, pipeline latency, and LUT/FF/DSP/BRAM usage,
//! with cost shapes modelled on Xilinx 7-series operators.

use hls_ir::{OpKind, Operation};
use std::ops::{Add, AddAssign};

/// FPGA resource usage, one counter per resource type the paper's *Resource*
/// feature category tracks (LUT, FF, DSP, BRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// DSP48 blocks.
    pub dsps: u32,
    /// Block RAMs (in RAMB18-equivalents).
    pub brams: u32,
}

impl Resources {
    /// All-zero usage.
    pub const ZERO: Resources = Resources {
        luts: 0,
        ffs: 0,
        dsps: 0,
        brams: 0,
    };

    /// Construct from the four counters.
    pub fn new(luts: u32, ffs: u32, dsps: u32, brams: u32) -> Self {
        Resources {
            luts,
            ffs,
            dsps,
            brams,
        }
    }

    /// The counter for resource-type index `i` (0=LUT, 1=FF, 2=DSP, 3=BRAM).
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    pub fn get(&self, i: usize) -> u32 {
        match i {
            0 => self.luts,
            1 => self.ffs,
            2 => self.dsps,
            3 => self.brams,
            _ => panic!("resource index {i} out of range"),
        }
    }

    /// Number of tracked resource types.
    pub const KINDS: usize = 4;

    /// Names of the resource types, aligned with [`Resources::get`].
    pub const NAMES: [&'static str; 4] = ["LUT", "FF", "DSP", "BRAM"];

    /// Sum of all counters (a crude "size" scalar).
    pub fn total(&self) -> u64 {
        self.luts as u64 + self.ffs as u64 + self.dsps as u64 + self.brams as u64
    }

    /// Scale every counter by `n`.
    pub fn scaled(&self, n: u32) -> Resources {
        Resources {
            luts: self.luts * n,
            ffs: self.ffs * n,
            dsps: self.dsps * n,
            brams: self.brams * n,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            dsps: self.dsps + rhs.dsps,
            brams: self.brams + rhs.brams,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

/// Characterized cost of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorCost {
    /// Combinational delay in nanoseconds (per pipeline stage).
    pub delay_ns: f64,
    /// Pipeline latency in clock cycles (0 = purely combinational).
    pub latency: u32,
    /// Resource usage of one instance.
    pub resources: Resources,
}

impl OperatorCost {
    /// A free (wiring-only) operator.
    pub const FREE: OperatorCost = OperatorCost {
        delay_ns: 0.0,
        latency: 0,
        resources: Resources::ZERO,
    };
}

/// The characterization library. Parameterized by the process speed grade so
/// alternative devices can be modelled; [`CharLib::zynq7()`] matches the
/// paper's XC7Z020 target.
#[derive(Debug, Clone)]
pub struct CharLib {
    /// Base logic delay (ns) — one LUT level.
    pub lut_delay_ns: f64,
    /// Carry-chain delay per bit (ns).
    pub carry_per_bit_ns: f64,
    /// DSP multiplier base delay (ns).
    pub dsp_delay_ns: f64,
}

impl CharLib {
    /// Library tuned for the Zynq-7000 (28 nm, -1 speed grade) the paper
    /// targets.
    pub fn zynq7() -> Self {
        CharLib {
            lut_delay_ns: 0.43,
            carry_per_bit_ns: 0.055,
            dsp_delay_ns: 2.9,
        }
    }

    /// Cost of an operation (width-dependent). `const_shift` should be true
    /// for shifts whose amount is a constant (they become wiring).
    pub fn cost_of(&self, kind: OpKind, bits: u16, const_shift: bool) -> OperatorCost {
        let w = bits as u32;
        let wf = bits as f64;
        match kind {
            OpKind::Add | OpKind::Sub => OperatorCost {
                delay_ns: self.lut_delay_ns + self.carry_per_bit_ns * wf,
                latency: 0,
                resources: Resources::new(w, 0, 0, 0),
            },
            OpKind::Mul | OpKind::FMul => {
                // Small products (operands <= ~10 bits, i.e. results <= 20)
                // stay in LUTs; wide multipliers map to DSP48E1 tiles.
                if bits <= 20 {
                    OperatorCost {
                        delay_ns: self.lut_delay_ns * 2.0 + self.carry_per_bit_ns * wf,
                        latency: 0,
                        resources: Resources::new(w * w / 8 + w, 0, 0, 0),
                    }
                } else {
                    let dsps =
                        (w.div_ceil(2)).div_ceil(17).max(1) * (w.div_ceil(2)).div_ceil(24).max(1);
                    OperatorCost {
                        delay_ns: self.dsp_delay_ns,
                        latency: if bits > 35 { 3 } else { 2 },
                        resources: Resources::new(w / 2, w, dsps, 0),
                    }
                }
            }
            OpKind::SDiv | OpKind::UDiv | OpKind::SRem | OpKind::URem => OperatorCost {
                // Iterative radix-2 divider: one stage per bit.
                delay_ns: self.lut_delay_ns + self.carry_per_bit_ns * wf,
                latency: w.max(1),
                resources: Resources::new(w * 3 + 8, w * 4, 0, 0),
            },
            OpKind::Sqrt => OperatorCost {
                delay_ns: self.lut_delay_ns + self.carry_per_bit_ns * wf,
                latency: (w / 2).max(1),
                resources: Resources::new(w * 2 + 8, w * 3, 0, 0),
            },
            OpKind::Shl | OpKind::LShr | OpKind::AShr => {
                if const_shift {
                    OperatorCost::FREE
                } else {
                    // Barrel shifter: log2(w) mux stages.
                    let stages = (32 - (w.max(2) - 1).leading_zeros()).max(1);
                    OperatorCost {
                        delay_ns: self.lut_delay_ns * stages as f64,
                        latency: 0,
                        resources: Resources::new(w * stages / 2 + 1, 0, 0, 0),
                    }
                }
            }
            OpKind::And | OpKind::Or | OpKind::Xor => OperatorCost {
                delay_ns: self.lut_delay_ns,
                latency: 0,
                resources: Resources::new(w.div_ceil(2), 0, 0, 0),
            },
            OpKind::Not => OperatorCost {
                delay_ns: self.lut_delay_ns * 0.5,
                latency: 0,
                resources: Resources::new(w.div_ceil(4), 0, 0, 0),
            },
            OpKind::ICmp | OpKind::FCmp => OperatorCost {
                delay_ns: self.lut_delay_ns + self.carry_per_bit_ns * wf * 0.5,
                latency: 0,
                resources: Resources::new(w.div_ceil(2) + 1, 0, 0, 0),
            },
            OpKind::Select | OpKind::Mux => OperatorCost {
                delay_ns: self.lut_delay_ns,
                latency: 0,
                resources: Resources::new(w.div_ceil(2) + 1, 0, 0, 0),
            },
            OpKind::Phi => OperatorCost {
                // A register plus its feedback mux.
                delay_ns: self.lut_delay_ns,
                latency: 0,
                resources: Resources::new(w.div_ceil(2), w, 0, 0),
            },
            OpKind::Load => OperatorCost {
                // Synchronous BRAM read: one cycle; address decode logic.
                delay_ns: self.lut_delay_ns,
                latency: 1,
                resources: Resources::new(2, 0, 0, 0),
            },
            OpKind::Store => OperatorCost {
                delay_ns: self.lut_delay_ns,
                latency: 1,
                resources: Resources::new(2, 0, 0, 0),
            },
            OpKind::FAdd | OpKind::FSub => OperatorCost {
                delay_ns: self.dsp_delay_ns,
                latency: 4,
                resources: Resources::new(w * 4, w * 4, 2, 0),
            },
            OpKind::FDiv => OperatorCost {
                delay_ns: self.dsp_delay_ns,
                latency: w.max(8),
                resources: Resources::new(w * 6, w * 6, 0, 0),
            },
            OpKind::Read | OpKind::Write | OpKind::Port => OperatorCost::FREE,
            OpKind::Const
            | OpKind::ZExt
            | OpKind::SExt
            | OpKind::Trunc
            | OpKind::BitConcat
            | OpKind::BitSelect
            | OpKind::GetElementPtr
            | OpKind::Alloca
            | OpKind::Return
            | OpKind::Branch
            | OpKind::Switch => OperatorCost::FREE,
            // Call cost comes from the callee instance; the op itself is
            // handshake wiring.
            OpKind::Call => OperatorCost::FREE,
        }
    }

    /// Cost of an operation as it appears in a function (detects constant
    /// shift amounts).
    pub fn cost_of_op(&self, f: &hls_ir::Function, op: &Operation) -> OperatorCost {
        let const_shift = matches!(op.kind, OpKind::Shl | OpKind::LShr | OpKind::AShr)
            && op
                .operands
                .get(1)
                .map(|o| f.op(o.src).kind == OpKind::Const)
                .unwrap_or(false);
        self.cost_of(op.kind, op.ty.bits(), const_shift)
    }

    /// Resources of a `k`-input multiplexer of width `bits`.
    pub fn mux_resources(&self, inputs: u32, bits: u16) -> Resources {
        if inputs <= 1 {
            return Resources::ZERO;
        }
        // Each LUT6 implements ~2 bits of a 2:1 mux; a k:1 mux is (k-1)
        // 2:1 stages.
        let luts = (inputs - 1) * (bits as u32).div_ceil(2).max(1);
        Resources::new(luts, 0, 0, 0)
    }

    /// Delay of a `k`-input multiplexer.
    pub fn mux_delay(&self, inputs: u32) -> f64 {
        if inputs <= 1 {
            0.0
        } else {
            self.lut_delay_ns * (32 - (inputs - 1).leading_zeros()) as f64
        }
    }
}

impl Default for CharLib {
    fn default() -> Self {
        CharLib::zynq7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_arithmetic() {
        let a = Resources::new(1, 2, 3, 4);
        let b = Resources::new(10, 20, 30, 40);
        let s = a + b;
        assert_eq!(s, Resources::new(11, 22, 33, 44));
        assert_eq!(s.total(), 110);
        assert_eq!(a.scaled(3), Resources::new(3, 6, 9, 12));
        for (i, v) in [11, 22, 33, 44].iter().enumerate() {
            assert_eq!(s.get(i), *v);
        }
    }

    #[test]
    fn adder_cost_scales_with_width() {
        let lib = CharLib::zynq7();
        let c8 = lib.cost_of(OpKind::Add, 8, false);
        let c32 = lib.cost_of(OpKind::Add, 32, false);
        assert!(c32.delay_ns > c8.delay_ns);
        assert_eq!(c8.resources.luts, 8);
        assert_eq!(c32.resources.luts, 32);
        assert_eq!(c8.resources.dsps, 0);
    }

    #[test]
    fn wide_multiplier_uses_dsps() {
        let lib = CharLib::zynq7();
        let small = lib.cost_of(OpKind::Mul, 8, false);
        let wide = lib.cost_of(OpKind::Mul, 32, false);
        assert_eq!(small.resources.dsps, 0);
        assert!(wide.resources.dsps >= 1);
        assert!(wide.latency >= 1);
    }

    #[test]
    fn divider_is_multicycle() {
        let lib = CharLib::zynq7();
        let c = lib.cost_of(OpKind::SDiv, 16, false);
        assert_eq!(c.latency, 16);
        assert!(c.resources.luts > 0);
    }

    #[test]
    fn const_shift_is_free() {
        let lib = CharLib::zynq7();
        assert_eq!(lib.cost_of(OpKind::Shl, 32, true), OperatorCost::FREE);
        assert!(lib.cost_of(OpKind::Shl, 32, false).resources.luts > 0);
    }

    #[test]
    fn wiring_ops_are_free() {
        let lib = CharLib::zynq7();
        for kind in [
            OpKind::Const,
            OpKind::ZExt,
            OpKind::Trunc,
            OpKind::Read,
            OpKind::Port,
        ] {
            assert_eq!(lib.cost_of(kind, 32, false), OperatorCost::FREE);
        }
    }

    #[test]
    fn mux_costs_grow_with_inputs() {
        let lib = CharLib::zynq7();
        assert_eq!(lib.mux_resources(1, 32), Resources::ZERO);
        let m2 = lib.mux_resources(2, 32);
        let m8 = lib.mux_resources(8, 32);
        assert!(m8.luts > m2.luts);
        assert!(lib.mux_delay(8) > lib.mux_delay(2));
    }
}
