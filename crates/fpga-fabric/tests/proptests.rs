//! Property-based tests of the implementation-flow invariants.

use fpga_fabric::congestion::CongestionMap;
use fpga_fabric::device::Device;
use fpga_fabric::par::{run_par, ParOptions};
use fpga_fabric::place::{place, recompute_cost, PlaceKernel, PlacerOptions};
use hls_ir::frontend::compile_named;
use hls_synth::{HlsFlow, HlsOptions};
use proptest::prelude::*;

/// A tiny random MAC-kernel generator: varies array length, unroll factor,
/// and partition factor.
fn kernel() -> impl Strategy<Value = String> {
    (1u32..5, 0u32..3, 1u32..4).prop_map(|(len_pow, unroll_pow, part_pow)| {
        let len = 8 << len_pow;
        let unroll = 1 << unroll_pow;
        let part = 1 << part_pow;
        let mut src = String::new();
        src.push_str(&format!("int32 f(int32 a[{len}], int32 k) {{\n"));
        if part > 1 {
            src.push_str(&format!(
                "#pragma HLS array_partition variable=a cyclic factor={part}\n"
            ));
        }
        src.push_str("int32 s = 0;\n");
        if unroll > 1 {
            src.push_str(&format!("#pragma HLS unroll factor={unroll}\n"));
        }
        src.push_str(&format!(
            "for (i = 0; i < {len}; i++) {{ s = s + a[i] * k; }}\nreturn s;\n}}\n"
        ));
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_invariants_hold_for_random_kernels(src in kernel(), seed in 0u64..8) {
        let m = compile_named(&src, "prop").expect("kernel compiles");
        let design = HlsFlow::new(HlsOptions::default()).run(&m).expect("synthesizes");
        let device = Device::xc7z020();
        let opts = ParOptions::fast().with_seed(seed);
        let result = run_par(&design, &device, &opts);

        // Placement: every cell inside the device, in a matching column.
        for i in 0..design.rtl.cells.len() {
            let (x, y) = result.placement.pos[i];
            prop_assert!(x < device.width && y < device.height);
        }

        // Congestion: finite, non-negative, consistent with usage.
        let c = &result.congestion;
        prop_assert_eq!(c.vertical.len(), (device.width * device.height) as usize);
        for v in c.vertical.iter().chain(c.horizontal.iter()) {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
        prop_assert!(c.max_vertical() >= c.mean_vertical() || c.mean_vertical() == 0.0);
        prop_assert!(c.tiles_over(100.0) <= c.vertical.len());
        prop_assert!(c.tiles_over(50.0) >= c.tiles_over(100.0), "monotone threshold");

        // Timing: consistent identities.
        let t = &result.timing;
        prop_assert!(t.critical_path_ns > 0.0);
        prop_assert!((t.fmax_mhz - 1000.0 / t.critical_path_ns).abs() < 1e-6);
        prop_assert!((t.wns_ns - (design.options.clock_ns - t.critical_path_ns)).abs() < 1e-6);

        // Routing: every connection belongs to a real net.
        for conn in &result.route.conns {
            prop_assert!((conn.net as usize) < design.rtl.nets.len());
            prop_assert!(conn.overflow >= 0.0);
        }
    }

    #[test]
    fn placer_invariants_hold_for_random_kernels(src in kernel(), seed in 0u64..8,
                                                 delta_kernel in any::<bool>()) {
        let m = compile_named(&src, "prop").expect("kernel compiles");
        let design = HlsFlow::new(HlsOptions::default()).run(&m).expect("synthesizes");
        let device = Device::xc7z020();
        let mut opts = PlacerOptions::fast().with_kernel(if delta_kernel {
            PlaceKernel::DeltaAnneal
        } else {
            PlaceKernel::ReferenceAnneal
        });
        opts.seed = seed;
        let p = place(&design.rtl, &device, &opts);

        // The incrementally-maintained cost is the true cost: it matches a
        // from-scratch recompute to 1e-6 relative, for every random move
        // sequence either kernel executes.
        let full = recompute_cost(&design.rtl, &device, &opts, &p);
        prop_assert!(
            (p.cost - full).abs() <= 1e-6 * full.abs().max(1.0),
            "incremental {} vs recomputed {}", p.cost, full
        );

        // Every footprint lies entirely on the device: spans are clamped
        // and move windows never push a cell past the bottom edge.
        for i in 0..p.pos.len() {
            prop_assert!(p.span[i] >= 1 && p.span[i] <= device.height);
            let tiles: Vec<_> = p.footprint(i).collect();
            prop_assert_eq!(tiles.len() as u32, p.span[i], "footprint clipped at edge");
            for (x, y) in tiles {
                prop_assert!(x < device.width && y < device.height);
            }
        }

        // Same seed, same kernel: bit-identical placement.
        let again = place(&design.rtl, &device, &opts);
        prop_assert_eq!(&p.pos, &again.pos);
        prop_assert_eq!(p.position_checksum(), again.position_checksum());
        prop_assert_eq!(p.stats, again.stats);
    }

    #[test]
    fn congestion_map_row_profile_is_mean(w in 2u32..10, h in 2u32..10,
                                          vals in prop::collection::vec(0f64..200.0, 4..100)) {
        let n = (w * h) as usize;
        prop_assume!(vals.len() >= n);
        let vertical: Vec<f64> = vals[..n].to_vec();
        let map = CongestionMap {
            width: w,
            height: h,
            vertical: vertical.clone(),
            horizontal: vec![0.0; n],
        };
        let profile = map.row_profile(true);
        prop_assert_eq!(profile.len(), h as usize);
        for (y, row_mean) in profile.iter().enumerate() {
            let expect: f64 = (0..w).map(|x| vertical[(y as u32 * w + x) as usize]).sum::<f64>() / w as f64;
            prop_assert!((row_mean - expect).abs() < 1e-9);
        }
        // The render has one glyph per tile.
        let art = map.render(true);
        prop_assert_eq!(art.lines().count(), h as usize);
        prop_assert!(art.lines().all(|l| l.chars().count() == w as usize));
    }
}
