//! The device model: a column-organized tile grid.
//!
//! 7-series devices are columns of CLBs interleaved with DSP and BRAM
//! columns; routing runs through a switch fabric with a fixed number of
//! horizontal and vertical tracks per tile. [`Device::xc7z020`] approximates
//! the paper's Zynq XC7Z020 target at that structure (exact LUT counts are
//! irrelevant — relative crowding is what the congestion model learns).

/// What a column of tiles holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Configurable logic blocks (LUTs + FFs).
    Clb,
    /// DSP48 slices.
    Dsp,
    /// Block RAM.
    Bram,
    /// I/O column (device edge).
    Io,
}

/// Per-tile site capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileCapacity {
    /// LUTs per tile.
    pub luts: u32,
    /// Flip-flops per tile.
    pub ffs: u32,
    /// DSP slices per tile.
    pub dsps: u32,
    /// RAMB18 primitives per tile.
    pub brams: u32,
}

/// A column-structured FPGA device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device name.
    pub name: String,
    /// Number of columns (x dimension).
    pub width: u32,
    /// Number of rows (y dimension).
    pub height: u32,
    /// Column kinds, `columns[x]`.
    pub columns: Vec<ColumnKind>,
    /// Horizontal routing tracks per tile.
    pub h_tracks: u32,
    /// Vertical routing tracks per tile.
    pub v_tracks: u32,
}

impl Device {
    /// A model of the Zynq XC7Z020 (the paper's target): 64×100 tiles with
    /// DSP and BRAM columns interleaved among CLB columns.
    pub fn xc7z020() -> Device {
        let width = 64u32;
        let height = 120u32;
        let mut columns = Vec::with_capacity(width as usize);
        for x in 0..width {
            let kind = if x == 0 || x == width - 1 {
                ColumnKind::Io
            } else if x % 18 == 9 {
                ColumnKind::Dsp
            } else if x % 18 == 0 {
                ColumnKind::Bram
            } else {
                ColumnKind::Clb
            };
            columns.push(kind);
        }
        Device {
            name: "xc7z020".into(),
            width,
            height,
            columns,
            h_tracks: 200,
            v_tracks: 200,
        }
    }

    /// A small device for fast unit tests.
    pub fn tiny(width: u32, height: u32) -> Device {
        let columns = (0..width)
            .map(|x| {
                if x == 0 || x == width - 1 {
                    ColumnKind::Io
                } else if width > 8 && x == width / 2 {
                    ColumnKind::Dsp
                } else if width > 8 && x == width / 4 {
                    ColumnKind::Bram
                } else {
                    ColumnKind::Clb
                }
            })
            .collect();
        Device {
            name: format!("tiny{width}x{height}"),
            width,
            height,
            columns,
            h_tracks: 60,
            v_tracks: 60,
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> u32 {
        self.width * self.height
    }

    /// The column kind at `x`.
    ///
    /// # Panics
    /// Panics if `x` is out of range.
    pub fn column(&self, x: u32) -> ColumnKind {
        self.columns[x as usize]
    }

    /// Capacity of the tile at column `x`.
    pub fn tile_capacity(&self, x: u32) -> TileCapacity {
        match self.column(x) {
            ColumnKind::Clb => TileCapacity {
                luts: 8,
                ffs: 16,
                dsps: 0,
                brams: 0,
            },
            ColumnKind::Dsp => TileCapacity {
                luts: 0,
                ffs: 0,
                dsps: 1,
                brams: 0,
            },
            ColumnKind::Bram => TileCapacity {
                luts: 0,
                ffs: 0,
                dsps: 0,
                brams: 1,
            },
            ColumnKind::Io => TileCapacity::default(),
        }
    }

    /// Device-wide totals, for utilization ratios.
    pub fn totals(&self) -> TileCapacity {
        let mut t = TileCapacity::default();
        for x in 0..self.width {
            let c = self.tile_capacity(x);
            t.luts += c.luts * self.height;
            t.ffs += c.ffs * self.height;
            t.dsps += c.dsps * self.height;
            t.brams += c.brams * self.height;
        }
        t
    }

    /// Columns of a given kind.
    pub fn columns_of(&self, kind: ColumnKind) -> Vec<u32> {
        (0..self.width)
            .filter(|&x| self.column(x) == kind)
            .collect()
    }

    /// Linear tile index for `(x, y)`.
    pub fn tile_index(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc7z020_has_all_column_kinds() {
        let d = Device::xc7z020();
        assert!(!d.columns_of(ColumnKind::Clb).is_empty());
        assert!(!d.columns_of(ColumnKind::Dsp).is_empty());
        assert!(!d.columns_of(ColumnKind::Bram).is_empty());
        assert_eq!(d.columns_of(ColumnKind::Io).len(), 2);
        assert_eq!(d.columns.len(), d.width as usize);
    }

    #[test]
    fn totals_scale_with_height() {
        let d = Device::xc7z020();
        let t = d.totals();
        // Plausible Zynq-scale numbers.
        assert!(t.luts > 20_000, "luts = {}", t.luts);
        assert!(t.dsps >= 100, "dsps = {}", t.dsps);
        assert!(t.brams >= 100, "brams = {}", t.brams);
        assert_eq!(t.ffs, 2 * t.luts);
    }

    #[test]
    fn capacities_match_column_kinds() {
        let d = Device::xc7z020();
        for x in 0..d.width {
            let c = d.tile_capacity(x);
            match d.column(x) {
                ColumnKind::Clb => assert_eq!(c.luts, 8),
                ColumnKind::Dsp => assert_eq!(c.dsps, 1),
                ColumnKind::Bram => assert_eq!(c.brams, 1),
                ColumnKind::Io => assert_eq!(c.luts + c.dsps + c.brams, 0),
            }
        }
    }

    #[test]
    fn tile_index_roundtrip() {
        let d = Device::tiny(8, 8);
        assert_eq!(d.tile_index(0, 0), 0);
        assert_eq!(d.tile_index(7, 0), 7);
        assert_eq!(d.tile_index(0, 1), 8);
        assert_eq!(d.tiles(), 64);
    }
}
