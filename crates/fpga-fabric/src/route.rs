//! Capacity-aware global routing.
//!
//! Every net is routed as a star of driver→sink connections on the tile
//! grid. Pass 1 picks the cheaper of the two L-shapes under the current
//! track usage; pass 2 rips up connections that cross overflowed tiles and
//! tries Z-shapes through less-congested midpoints. Usage is **wire
//! accurate**: a 32-bit bus consumes 32 tracks in every tile it crosses —
//! this is what makes wide, high-fan-out structures (the paper's congested
//! classifier reductions) overload regions of the device.

use crate::device::Device;
use crate::place::Placement;
use hls_synth::RtlDesign;

/// One routed driver→sink connection.
#[derive(Debug, Clone, Copy)]
pub struct ConnRoute {
    /// Net index in the RTL design.
    pub net: u32,
    /// Routed length in tiles.
    pub len: u32,
    /// Sum over crossed tiles of their overflow ratio at final state.
    pub overflow: f64,
}

/// Router output: per-tile track usage plus per-connection stats.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Horizontal track usage per tile.
    pub h_usage: Vec<u32>,
    /// Vertical track usage per tile.
    pub v_usage: Vec<u32>,
    /// All routed connections.
    pub conns: Vec<ConnRoute>,
    /// Device width (tiles).
    pub width: u32,
    /// Device height (tiles).
    pub height: u32,
}

/// Router options.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Number of rip-up/re-route refinement passes after the initial pass.
    pub refine_passes: u32,
    /// Use congestion-aware maze routing (Dijkstra) instead of Z-shape
    /// candidates when re-routing overflowed connections. Slower but finds
    /// arbitrary detours.
    pub maze: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            refine_passes: 2,
            maze: false,
        }
    }
}

impl RouterOptions {
    /// The maze-routing configuration used by the routing ablation.
    pub fn with_maze(passes: u32) -> Self {
        RouterOptions {
            refine_passes: passes,
            maze: true,
        }
    }
}

/// A connection endpoint pair.
#[derive(Debug, Clone, Copy)]
struct Conn {
    net: u32,
    from: (u32, u32),
    to: (u32, u32),
    width: u32,
}

/// Route a placed design.
pub fn route(
    rtl: &RtlDesign,
    placement: &Placement,
    device: &Device,
    opts: &RouterOptions,
) -> RouteResult {
    let tiles = device.tiles() as usize;
    let mut grid = Grid {
        h_usage: vec![0u32; tiles],
        v_usage: vec![0u32; tiles],
        width: device.width,
        h_cap: device.h_tracks,
        v_cap: device.v_tracks,
    };

    // Build connections.
    let mut conns: Vec<Conn> = Vec::new();
    for net in &rtl.nets {
        let from = placement.pos[net.driver.index()];
        for sink in &net.sinks {
            let to = placement.pos[sink.index()];
            if from == to {
                continue;
            }
            conns.push(Conn {
                net: net.id.0,
                from,
                to,
                width: net.width as u32,
            });
        }
    }

    // Pass 1: cheaper L-shape.
    let mut paths: Vec<Path> = conns
        .iter()
        .map(|c| {
            let p = best_l_shape(c, &grid);
            grid.apply(&p, c.width, 1);
            p
        })
        .collect();

    // Refinement: rip up overflowing connections, try Z-shapes.
    for _ in 0..opts.refine_passes {
        for (i, c) in conns.iter().enumerate() {
            let cur_over = grid.path_overflow(&paths[i]);
            if cur_over <= 0.0 {
                continue;
            }
            grid.apply(&paths[i], c.width, -1);
            let mut best = best_l_shape(c, &grid);
            let mut best_cost = grid.path_cost(&best, c.width);
            for cand in z_shapes(c, device) {
                let cost = grid.path_cost(&cand, c.width);
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if opts.maze {
                if let Some(cand) = maze_route(c, &grid, device) {
                    let cost = grid.path_cost(&cand, c.width);
                    if cost < best_cost {
                        best = cand;
                    }
                }
            }
            grid.apply(&best, c.width, 1);
            paths[i] = best;
        }
    }

    // Final stats.
    let out_conns = conns
        .iter()
        .zip(&paths)
        .map(|(c, p)| ConnRoute {
            net: c.net,
            len: p.len(),
            overflow: grid.path_overflow(p),
        })
        .collect();

    RouteResult {
        h_usage: grid.h_usage,
        v_usage: grid.v_usage,
        conns: out_conns,
        width: device.width,
        height: device.height,
    }
}

/// A rectilinear path: an ordered list of corner points.
#[derive(Debug, Clone)]
struct Path {
    points: Vec<(u32, u32)>,
}

impl Path {
    fn len(&self) -> u32 {
        self.points
            .windows(2)
            .map(|w| {
                let (x1, y1) = w[0];
                let (x2, y2) = w[1];
                x1.abs_diff(x2) + y1.abs_diff(y2)
            })
            .sum()
    }
}

struct Grid {
    h_usage: Vec<u32>,
    v_usage: Vec<u32>,
    width: u32,
    h_cap: u32,
    v_cap: u32,
}

impl Grid {
    fn idx(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }

    /// Visit every (tile, horizontal?) step of a path.
    fn for_each_step(&self, p: &Path, mut f: impl FnMut(usize, bool)) {
        for w in p.points.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            if y1 == y2 {
                let (a, b) = (x1.min(x2), x1.max(x2));
                for x in a..b {
                    f(self.idx(x, y1), true);
                }
            } else {
                let (a, b) = (y1.min(y2), y1.max(y2));
                for y in a..b {
                    f(self.idx(x1, y), false);
                }
            }
        }
    }

    fn apply(&mut self, p: &Path, width: u32, sign: i64) {
        let mut updates: Vec<(usize, bool)> = Vec::new();
        self.for_each_step(p, |t, horiz| updates.push((t, horiz)));
        for (t, horiz) in updates {
            let u = if horiz {
                &mut self.h_usage[t]
            } else {
                &mut self.v_usage[t]
            };
            *u = (*u as i64 + sign * width as i64).max(0) as u32;
        }
    }

    /// Congestion-aware cost of adding `width` wires along `p`.
    fn path_cost(&self, p: &Path, width: u32) -> f64 {
        let mut cost = 0.0;
        self.for_each_step(p, |t, horiz| {
            let (u, cap) = if horiz {
                (self.h_usage[t], self.h_cap)
            } else {
                (self.v_usage[t], self.v_cap)
            };
            let after = (u + width) as f64 / cap as f64;
            // Base distance cost plus a steep overflow penalty.
            cost += 1.0
                + if after > 1.0 {
                    (after - 1.0) * 20.0
                } else {
                    after
                };
        });
        cost
    }

    /// Total overflow ratio along a path (0 if uncongested).
    fn path_overflow(&self, p: &Path) -> f64 {
        let mut over = 0.0;
        self.for_each_step(p, |t, horiz| {
            let (u, cap) = if horiz {
                (self.h_usage[t], self.h_cap)
            } else {
                (self.v_usage[t], self.v_cap)
            };
            let r = u as f64 / cap as f64;
            if r > 1.0 {
                over += r - 1.0;
            }
        });
        over
    }
}

fn best_l_shape(c: &Conn, grid: &Grid) -> Path {
    let (x1, y1) = c.from;
    let (x2, y2) = c.to;
    let a = Path {
        points: vec![(x1, y1), (x2, y1), (x2, y2)],
    };
    let b = Path {
        points: vec![(x1, y1), (x1, y2), (x2, y2)],
    };
    if grid.path_cost(&a, c.width) <= grid.path_cost(&b, c.width) {
        a
    } else {
        b
    }
}

/// Candidate Z-shaped detours for a connection.
fn z_shapes(c: &Conn, device: &Device) -> Vec<Path> {
    let (x1, y1) = c.from;
    let (x2, y2) = c.to;
    let mut out = Vec::new();
    // Horizontal-vertical-horizontal via intermediate columns.
    for frac in [1, 3] {
        let xm = (x1 * (4 - frac) + x2 * frac) / 4;
        if xm != x1 && xm != x2 {
            out.push(Path {
                points: vec![(x1, y1), (xm, y1), (xm, y2), (x2, y2)],
            });
        }
        let ym = (y1 * (4 - frac) + y2 * frac) / 4;
        if ym != y1 && ym != y2 {
            out.push(Path {
                points: vec![(x1, y1), (x1, ym), (x2, ym), (x2, y2)],
            });
        }
    }
    // Detours outside the bounding box.
    let y_lo = y1.min(y2).saturating_sub(4);
    let y_hi = (y1.max(y2) + 4).min(device.height - 1);
    out.push(Path {
        points: vec![(x1, y1), (x1, y_lo), (x2, y_lo), (x2, y2)],
    });
    out.push(Path {
        points: vec![(x1, y1), (x1, y_hi), (x2, y_hi), (x2, y2)],
    });
    out
}

/// Congestion-aware maze routing: Dijkstra over the tile grid with the
/// same edge costs the path evaluator uses. Returns a rectilinear path of
/// corner points, or `None` when endpoints coincide.
fn maze_route(c: &Conn, grid: &Grid, device: &Device) -> Option<Path> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        tile: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on cost.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
        }
    }

    let w = device.width as usize;
    let h = device.height as usize;
    let n = w * h;
    let start = (c.from.1 as usize) * w + c.from.0 as usize;
    let goal = (c.to.1 as usize) * w + c.to.0 as usize;
    if start == goal {
        return None;
    }

    let step_cost = |tile: usize, horiz: bool| -> f64 {
        let (u, cap) = if horiz {
            (grid.h_usage[tile], grid.h_cap)
        } else {
            (grid.v_usage[tile], grid.v_cap)
        };
        let after = (u + c.width) as f64 / cap as f64;
        1.0 + if after > 1.0 {
            (after - 1.0) * 20.0
        } else {
            after
        }
    };

    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[start] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        tile: start,
    });
    while let Some(Entry { cost, tile }) = heap.pop() {
        if tile == goal {
            break;
        }
        if cost > dist[tile] {
            continue;
        }
        let x = tile % w;
        let y = tile / w;
        // Track usage is accounted on the tile being left, matching
        // `Grid::for_each_step`.
        let neighbors = [
            (x > 0, tile.wrapping_sub(1), true),
            (x + 1 < w, tile + 1, true),
            (y > 0, tile.wrapping_sub(w), false),
            (y + 1 < h, tile + w, false),
        ];
        for (ok, next, horiz) in neighbors {
            if !ok {
                continue;
            }
            let nd = cost + step_cost(tile.min(next), horiz);
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = tile;
                heap.push(Entry {
                    cost: nd,
                    tile: next,
                });
            }
        }
    }
    if prev[goal] == usize::MAX {
        return None;
    }

    // Reconstruct tile chain, then compress runs into corner points.
    let mut chain = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = prev[cur];
        chain.push(cur);
    }
    chain.reverse();
    let to_xy = |t: usize| ((t % w) as u32, (t / w) as u32);
    let mut points = vec![to_xy(chain[0])];
    for win in chain.windows(3) {
        let (ax, ay) = to_xy(win[0]);
        let (bx, by) = to_xy(win[1]);
        let (cx, cy) = to_xy(win[2]);
        let dir1 = (bx != ax, by != ay);
        let dir2 = (cx != bx, cy != by);
        if dir1 != dir2 {
            points.push((bx, by));
        }
    }
    points.push(to_xy(*chain.last().unwrap()));
    Some(Path { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerOptions};
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn route_src(src: &str) -> (RtlDesign, RouteResult, Device) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, &PlacerOptions::fast());
        let r = route(&d.rtl, &p, &device, &RouterOptions::default());
        (d.rtl, r, device)
    }

    #[test]
    fn usage_is_nonzero_for_real_designs() {
        let (_, r, _) = route_src(
            "int32 f(int32 a[32], int32 k) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        );
        let total_h: u64 = r.h_usage.iter().map(|&u| u as u64).sum();
        let total_v: u64 = r.v_usage.iter().map(|&u| u as u64).sum();
        assert!(total_h + total_v > 0);
        assert!(!r.conns.is_empty());
    }

    #[test]
    fn connection_lengths_are_manhattan_or_longer() {
        let (_, r, _) = route_src("int32 f(int32 x, int32 y) { return x * y + x - y; }");
        for c in &r.conns {
            // Paths are rectilinear, so length >= 1 for distinct endpoints.
            assert!(c.len >= 1);
        }
    }

    #[test]
    fn refinement_does_not_increase_overflow() {
        let m = compile(
            "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, &PlacerOptions::fast());
        let r0 = route(
            &d.rtl,
            &p,
            &device,
            &RouterOptions {
                refine_passes: 0,
                ..Default::default()
            },
        );
        let r2 = route(
            &d.rtl,
            &p,
            &device,
            &RouterOptions {
                refine_passes: 2,
                ..Default::default()
            },
        );
        let over = |r: &RouteResult| -> f64 { r.conns.iter().map(|c| c.overflow).sum() };
        assert!(
            over(&r2) <= over(&r0) * 1.2 + 1.0,
            "refinement should not blow up overflow: {} vs {}",
            over(&r2),
            over(&r0)
        );
    }

    #[test]
    fn maze_routing_relieves_overflow_at_least_as_well() {
        let m = compile(
            "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, &PlacerOptions::fast());
        let plain = route(&d.rtl, &p, &device, &RouterOptions::default());
        let maze = route(&d.rtl, &p, &device, &RouterOptions::with_maze(2));
        let over = |r: &RouteResult| -> f64 { r.conns.iter().map(|c| c.overflow).sum() };
        assert!(
            over(&maze) <= over(&plain) * 1.05 + 1.0,
            "maze should not be worse: {} vs {}",
            over(&maze),
            over(&plain)
        );
    }

    #[test]
    fn maze_route_finds_a_path_between_distinct_points() {
        let device = Device::tiny(8, 8);
        let grid = Grid {
            h_usage: vec![0; 64],
            v_usage: vec![0; 64],
            width: 8,
            h_cap: 10,
            v_cap: 10,
        };
        let c = Conn {
            net: 0,
            from: (1, 1),
            to: (6, 5),
            width: 4,
        };
        let path = maze_route(&c, &grid, &device).expect("path exists");
        assert_eq!(*path.points.first().unwrap(), (1, 1));
        assert_eq!(*path.points.last().unwrap(), (6, 5));
        // Manhattan-optimal in an empty grid.
        assert_eq!(path.len(), 5 + 4);
    }

    #[test]
    fn path_len_computation() {
        let p = Path {
            points: vec![(0, 0), (5, 0), (5, 3)],
        };
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn grid_apply_roundtrip() {
        let mut g = Grid {
            h_usage: vec![0; 100],
            v_usage: vec![0; 100],
            width: 10,
            h_cap: 10,
            v_cap: 10,
        };
        let p = Path {
            points: vec![(0, 0), (5, 0), (5, 5)],
        };
        g.apply(&p, 8, 1);
        assert!(g.h_usage.contains(&8));
        assert!(g.v_usage.contains(&8));
        g.apply(&p, 8, -1);
        assert!(g.h_usage.iter().all(|&u| u == 0));
        assert!(g.v_usage.iter().all(|&u| u == 0));
    }
}
