//! Capacity-aware global routing.
//!
//! Every net is routed as a star of driver→sink connections on the tile
//! grid. Pass 1 picks the cheaper of the two L-shapes under the current
//! track usage; refinement passes rip up only the connections that cross
//! overflowed tiles and reroute them — Z-shape candidates by default, or a
//! windowed A* maze search when [`RouterOptions::maze`] is set. Usage is
//! **wire accurate**: a 32-bit bus consumes 32 tracks in every tile it
//! crosses — this is what makes wide, high-fan-out structures (the paper's
//! congested classifier reductions) overload regions of the device.
//!
//! # The maze kernel
//!
//! The maze search is a proper routing engine rather than a plain Dijkstra
//! over the whole grid:
//!
//! * **A\* with an admissible heuristic** — remaining Manhattan distance ×
//!   the minimum possible edge cost. Every edge costs at least 1.0 (the
//!   base distance term), so the heuristic never overestimates and the
//!   search provably returns a minimum-cost path.
//! * **Bounded search windows** — the search runs inside the connection's
//!   bounding box expanded by [`RouterOptions::window_margin`] tiles. If
//!   the best path inside the window still crosses overflowed tiles, the
//!   window grows (×4 margin) and the search retries, up to the full grid.
//! * **A reusable [`RouterArena`]** — `dist` / `prev` arrays are
//!   generation-stamped, so per-connection setup is a single counter bump
//!   instead of an O(width × height) clear, and no allocation happens
//!   after the first connection warms the arena up.
//! * **A monotone bucket queue** — edge costs are quantized to integers
//!   (1/64 cost units), and because the A* heuristic is consistent, popped
//!   keys never decrease; a forward-scanning bucket array replaces the
//!   binary heap (O(1) push/pop instead of O(log n)).
//! * **Negotiated congestion (PathFinder-style)** — after every maze
//!   refinement pass, each overflowed tile's history counter is bumped,
//!   and history is added to the maze edge cost. Nets negotiate: a tile
//!   that stays overflowed becomes increasingly expensive until enough
//!   nets move away.
//!
//! The pre-change kernel (full-grid Dijkstra on a binary heap, fresh
//! arrays per connection) is kept as [`MazeKernel::ReferenceDijkstra`]: it
//! shares the quantized cost model, so property tests can assert the A*
//! kernel returns paths of exactly the same total cost, and benches can
//! measure the speedup on real designs.

use crate::device::Device;
use crate::place::Placement;
use hls_synth::RtlDesign;

/// One routed driver→sink connection.
#[derive(Debug, Clone, Copy)]
pub struct ConnRoute {
    /// Net index in the RTL design.
    pub net: u32,
    /// Routed length in tiles.
    pub len: u32,
    /// Sum over crossed tiles of their overflow ratio at final state.
    pub overflow: f64,
}

/// Search-effort counters for one [`route`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Nodes expanded (popped and processed) by the maze kernels.
    pub expanded_nodes: u64,
    /// Entries pushed into the maze priority queue (bucket or binary heap).
    pub heap_pushes: u64,
    /// Connections ripped up and rerouted across all refinement passes.
    pub rerouted_conns: u64,
    /// A* search-window enlargements (overflow not resolvable in-window).
    pub window_expansions: u64,
    /// Refinement passes actually executed (passes stop early once the
    /// grid has no overflowed tile).
    pub passes_run: u32,
}

impl RouteStats {
    /// Accumulate another route's counters into this one.
    pub fn accumulate(&mut self, other: &RouteStats) {
        self.expanded_nodes += other.expanded_nodes;
        self.heap_pushes += other.heap_pushes;
        self.rerouted_conns += other.rerouted_conns;
        self.window_expansions += other.window_expansions;
        self.passes_run += other.passes_run;
    }
}

impl std::fmt::Display for RouteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expanded {} | pushes {} | rerouted {} | window growths {} | passes {}",
            self.expanded_nodes,
            self.heap_pushes,
            self.rerouted_conns,
            self.window_expansions,
            self.passes_run
        )
    }
}

/// Router output: per-tile track usage plus per-connection stats.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Horizontal track usage per tile.
    pub h_usage: Vec<u32>,
    /// Vertical track usage per tile.
    pub v_usage: Vec<u32>,
    /// All routed connections.
    pub conns: Vec<ConnRoute>,
    /// Device width (tiles).
    pub width: u32,
    /// Device height (tiles).
    pub height: u32,
    /// Search-effort counters for this route.
    pub stats: RouteStats,
    /// Overflowed-tile count after the initial pass (index 0) and after
    /// each executed refinement pass — the router's convergence curve.
    /// Deterministic for a given design/options, so it feeds the obskit
    /// `route.pass_overflow` histogram.
    pub pass_overflow: Vec<u32>,
}

impl RouteResult {
    /// FNV-1a checksum of the final per-tile usage (golden-test anchor).
    pub fn usage_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in self.h_usage.iter().chain(self.v_usage.iter()) {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// Which search kernel maze refinement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MazeKernel {
    /// Windowed A* over the reusable arena with a monotone bucket queue.
    #[default]
    AStar,
    /// The pre-change kernel: full-grid Dijkstra on a binary heap with
    /// freshly allocated `dist`/`prev` per connection. Kept as the
    /// reference for equivalence tests and old-vs-new benchmarks.
    ReferenceDijkstra,
}

impl MazeKernel {
    /// Parse a CLI name (`astar` | `reference`).
    pub fn parse(s: &str) -> Option<MazeKernel> {
        match s {
            "astar" => Some(MazeKernel::AStar),
            "reference" => Some(MazeKernel::ReferenceDijkstra),
            _ => None,
        }
    }

    /// Canonical CLI / metrics name (the bench `meta` kernel stamp).
    pub fn name(&self) -> &'static str {
        match self {
            MazeKernel::AStar => "astar",
            MazeKernel::ReferenceDijkstra => "reference",
        }
    }
}

/// Router options.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Number of rip-up/re-route refinement passes after the initial pass.
    pub refine_passes: u32,
    /// Use congestion-aware maze routing instead of Z-shape candidates
    /// when re-routing overflowed connections. Slower but finds arbitrary
    /// detours.
    pub maze: bool,
    /// Which maze search kernel to run (ignored unless `maze`).
    pub kernel: MazeKernel,
    /// Initial A* search-window margin around a connection's bounding box,
    /// in tiles. The window expands (×4) when overflow cannot be resolved
    /// inside it.
    pub window_margin: u32,
    /// Maximum number of window expansions per connection before the best
    /// in-window path is accepted even if it still crosses overflowed
    /// tiles (history negotiation resolves those over later passes).
    pub window_growth_limit: u32,
    /// Weight of the PathFinder-style history term in the maze edge cost.
    /// Each refinement pass adds 1 to the history of every tile still
    /// overflowed, so persistent hotspots get progressively costlier.
    pub history_weight: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            refine_passes: 2,
            maze: false,
            kernel: MazeKernel::AStar,
            window_margin: 4,
            window_growth_limit: 1,
            history_weight: 1.0,
        }
    }
}

impl RouterOptions {
    /// The maze-routing configuration used by the routing ablation.
    pub fn with_maze(passes: u32) -> Self {
        RouterOptions {
            refine_passes: passes,
            maze: true,
            ..Default::default()
        }
    }

    /// Maze routing on the pre-change reference kernel (full-grid
    /// Dijkstra, binary heap) — for old-vs-new comparisons.
    pub fn with_reference_maze(passes: u32) -> Self {
        RouterOptions {
            kernel: MazeKernel::ReferenceDijkstra,
            ..Self::with_maze(passes)
        }
    }
}

/// A connection endpoint pair.
#[derive(Debug, Clone, Copy)]
struct Conn {
    net: u32,
    from: (u32, u32),
    to: (u32, u32),
    width: u32,
}

/// Route a placed design.
pub fn route(
    rtl: &RtlDesign,
    placement: &Placement,
    device: &Device,
    opts: &RouterOptions,
) -> RouteResult {
    let mut arena = RouterArena::new();
    route_with_arena(rtl, placement, device, opts, &mut arena)
}

/// [`route`], reusing a caller-owned [`RouterArena`] so consecutive
/// designs on the same thread share the search arrays (zero allocation
/// after the first warm-up).
pub fn route_with_arena(
    rtl: &RtlDesign,
    placement: &Placement,
    device: &Device,
    opts: &RouterOptions,
    arena: &mut RouterArena,
) -> RouteResult {
    // Chaos-testing injection point (faultkit): routing has no error path,
    // so injected faults surface as panics/latency for the supervisor to
    // catch and classify. A no-op unless a fault plan is armed.
    faultkit::inject_abort("route");
    let tiles = device.tiles() as usize;
    let mut grid = Grid::new(tiles, device.width, device.h_tracks, device.v_tracks);
    let mut stats = RouteStats::default();

    // Build connections.
    let mut conns: Vec<Conn> = Vec::new();
    for net in &rtl.nets {
        let from = placement.pos[net.driver.index()];
        for sink in &net.sinks {
            let to = placement.pos[sink.index()];
            if from == to {
                continue;
            }
            conns.push(Conn {
                net: net.id.0,
                from,
                to,
                width: net.width as u32,
            });
        }
    }

    // Pass 1: cheaper L-shape.
    let mut paths: Vec<Path> = conns
        .iter()
        .map(|c| {
            let p = best_l_shape(c, &grid);
            grid.apply(&p, c.width, 1);
            p
        })
        .collect();

    let mut pass_overflow = vec![grid.overflowed_tiles()];

    // Refinement: incremental rip-up of connections crossing overflowed
    // tiles. Stops early once the grid is overflow-free — uncongested
    // designs pay nothing for extra configured passes.
    for _ in 0..opts.refine_passes {
        if !grid.any_overflow() {
            break;
        }
        stats.passes_run += 1;
        for (i, c) in conns.iter().enumerate() {
            let cur_over = grid.path_overflow(&paths[i]);
            if cur_over <= 0.0 {
                continue;
            }
            grid.apply(&paths[i], c.width, -1);
            stats.rerouted_conns += 1;
            let mut best = best_l_shape(c, &grid);
            let mut best_cost = grid.path_cost(&best, c.width);
            for cand in z_shapes(c, device) {
                let cost = grid.path_cost(&cand, c.width);
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if opts.maze {
                let cand = match opts.kernel {
                    MazeKernel::AStar => {
                        maze_route_windowed(c, &grid, device, opts, cur_over, arena, &mut stats)
                    }
                    MazeKernel::ReferenceDijkstra => {
                        maze_route_dijkstra(c, &grid, device, opts.history_weight, &mut stats)
                    }
                };
                if let Some(cand) = cand {
                    let cost = grid.path_cost(&cand, c.width);
                    if cost < best_cost {
                        best = cand;
                    }
                }
            }
            grid.apply(&best, c.width, 1);
            paths[i] = best;
        }
        if opts.maze {
            // Negotiated congestion: tiles still overflowed after this
            // pass get costlier for the next one.
            grid.bump_history();
        }
        pass_overflow.push(grid.overflowed_tiles());
    }

    // Final stats.
    let out_conns = conns
        .iter()
        .zip(&paths)
        .map(|(c, p)| ConnRoute {
            net: c.net,
            len: p.len(),
            overflow: grid.path_overflow(p),
        })
        .collect();

    RouteResult {
        h_usage: grid.h_usage,
        v_usage: grid.v_usage,
        conns: out_conns,
        width: device.width,
        height: device.height,
        stats,
        pass_overflow,
    }
}

/// A rectilinear path: an ordered list of corner points.
///
/// A zero-length path (coincident endpoints) is a single point; it crosses
/// no tile and consumes no tracks.
#[derive(Debug, Clone)]
struct Path {
    points: Vec<(u32, u32)>,
}

impl Path {
    fn len(&self) -> u32 {
        self.points
            .windows(2)
            .map(|w| {
                let (x1, y1) = w[0];
                let (x2, y2) = w[1];
                x1.abs_diff(x2) + y1.abs_diff(y2)
            })
            .sum()
    }
}

/// Edge costs are quantized to 1/64 cost units so the maze kernels can use
/// integer keys (exact comparisons, bucket-queue friendly).
const COST_SCALE: f64 = 64.0;

/// Quantized cost of the cheapest possible edge (base distance term 1.0).
/// This is the per-tile value of the admissible A* heuristic.
const MIN_STEP_Q: u64 = COST_SCALE as u64;

struct Grid {
    h_usage: Vec<u32>,
    v_usage: Vec<u32>,
    /// PathFinder history: passes a tile spent overflowed, per direction.
    h_hist: Vec<u32>,
    v_hist: Vec<u32>,
    width: u32,
    h_cap: u32,
    v_cap: u32,
}

impl Grid {
    fn new(tiles: usize, width: u32, h_cap: u32, v_cap: u32) -> Grid {
        Grid {
            h_usage: vec![0; tiles],
            v_usage: vec![0; tiles],
            h_hist: vec![0; tiles],
            v_hist: vec![0; tiles],
            width,
            h_cap,
            v_cap,
        }
    }

    fn idx(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }

    /// Visit every (tile, horizontal?) step of a path.
    fn for_each_step(&self, p: &Path, mut f: impl FnMut(usize, bool)) {
        for w in p.points.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            if y1 == y2 {
                let (a, b) = (x1.min(x2), x1.max(x2));
                for x in a..b {
                    f(self.idx(x, y1), true);
                }
            } else {
                let (a, b) = (y1.min(y2), y1.max(y2));
                for y in a..b {
                    f(self.idx(x1, y), false);
                }
            }
        }
    }

    fn apply(&mut self, p: &Path, width: u32, sign: i64) {
        let mut updates: Vec<(usize, bool)> = Vec::new();
        self.for_each_step(p, |t, horiz| updates.push((t, horiz)));
        for (t, horiz) in updates {
            let u = if horiz {
                &mut self.h_usage[t]
            } else {
                &mut self.v_usage[t]
            };
            *u = (*u as i64 + sign * width as i64).max(0) as u32;
        }
    }

    /// Base (history-free) cost of one step leaving `tile` in a direction.
    fn step_cost(&self, tile: usize, horiz: bool, width: u32) -> f64 {
        let (u, cap) = if horiz {
            (self.h_usage[tile], self.h_cap)
        } else {
            (self.v_usage[tile], self.v_cap)
        };
        let after = (u + width) as f64 / cap as f64;
        // Base distance cost plus a steep overflow penalty.
        1.0 + if after > 1.0 {
            (after - 1.0) * 20.0
        } else {
            after
        }
    }

    /// Quantized maze-edge cost: base cost plus the negotiated-congestion
    /// history term, in 1/64 cost units. Shared by both maze kernels so
    /// their path costs are exactly comparable.
    fn step_cost_q(&self, tile: usize, horiz: bool, width: u32, history_weight: f64) -> u64 {
        let hist = if horiz {
            self.h_hist[tile]
        } else {
            self.v_hist[tile]
        } as f64;
        ((self.step_cost(tile, horiz, width) + history_weight * hist) * COST_SCALE).round() as u64
    }

    /// Congestion-aware cost of adding `width` wires along `p`.
    fn path_cost(&self, p: &Path, width: u32) -> f64 {
        let mut cost = 0.0;
        self.for_each_step(p, |t, horiz| {
            cost += self.step_cost(t, horiz, width);
        });
        cost
    }

    /// Quantized maze cost of `p` (the objective the maze kernels minimize).
    #[cfg(test)]
    fn path_cost_q(&self, p: &Path, width: u32, history_weight: f64) -> u64 {
        let mut cost = 0;
        self.for_each_step(p, |t, horiz| {
            cost += self.step_cost_q(t, horiz, width, history_weight);
        });
        cost
    }

    /// Total overflow ratio along a path (0 if uncongested).
    fn path_overflow(&self, p: &Path) -> f64 {
        let mut over = 0.0;
        self.for_each_step(p, |t, horiz| {
            let (u, cap) = if horiz {
                (self.h_usage[t], self.h_cap)
            } else {
                (self.v_usage[t], self.v_cap)
            };
            let r = u as f64 / cap as f64;
            if r > 1.0 {
                over += r - 1.0;
            }
        });
        over
    }

    /// True when any tile is over capacity in either direction.
    fn any_overflow(&self) -> bool {
        self.h_usage.iter().any(|&u| u > self.h_cap) || self.v_usage.iter().any(|&u| u > self.v_cap)
    }

    /// Tiles currently over capacity in either direction (each tile
    /// counted once — same definition as `RoutingUtilization`).
    fn overflowed_tiles(&self) -> u32 {
        self.h_usage
            .iter()
            .zip(&self.v_usage)
            .filter(|&(&h, &v)| h > self.h_cap || v > self.v_cap)
            .count() as u32
    }

    /// Bump the history counter of every tile currently over capacity.
    fn bump_history(&mut self) {
        for (u, h) in self.h_usage.iter().zip(self.h_hist.iter_mut()) {
            if *u > self.h_cap {
                *h += 1;
            }
        }
        for (u, h) in self.v_usage.iter().zip(self.v_hist.iter_mut()) {
            if *u > self.v_cap {
                *h += 1;
            }
        }
    }
}

fn best_l_shape(c: &Conn, grid: &Grid) -> Path {
    let (x1, y1) = c.from;
    let (x2, y2) = c.to;
    let a = Path {
        points: vec![(x1, y1), (x2, y1), (x2, y2)],
    };
    let b = Path {
        points: vec![(x1, y1), (x1, y2), (x2, y2)],
    };
    if grid.path_cost(&a, c.width) <= grid.path_cost(&b, c.width) {
        a
    } else {
        b
    }
}

/// Candidate Z-shaped detours for a connection.
fn z_shapes(c: &Conn, device: &Device) -> Vec<Path> {
    let (x1, y1) = c.from;
    let (x2, y2) = c.to;
    let mut out = Vec::new();
    // Horizontal-vertical-horizontal via intermediate columns.
    for frac in [1, 3] {
        let xm = (x1 * (4 - frac) + x2 * frac) / 4;
        if xm != x1 && xm != x2 {
            out.push(Path {
                points: vec![(x1, y1), (xm, y1), (xm, y2), (x2, y2)],
            });
        }
        let ym = (y1 * (4 - frac) + y2 * frac) / 4;
        if ym != y1 && ym != y2 {
            out.push(Path {
                points: vec![(x1, y1), (x1, ym), (x2, ym), (x2, y2)],
            });
        }
    }
    // Detours outside the bounding box.
    let y_lo = y1.min(y2).saturating_sub(4);
    let y_hi = (y1.max(y2) + 4).min(device.height - 1);
    out.push(Path {
        points: vec![(x1, y1), (x1, y_lo), (x2, y_lo), (x2, y2)],
    });
    out.push(Path {
        points: vec![(x1, y1), (x1, y_hi), (x2, y_hi), (x2, y2)],
    });
    out
}

/// An inclusive rectangular search window on the tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
}

impl Window {
    /// The connection's bounding box expanded by `margin`, clamped to the
    /// device.
    fn around(c: &Conn, margin: u32, device: &Device) -> Window {
        let (x_lo, x_hi) = (c.from.0.min(c.to.0), c.from.0.max(c.to.0));
        let (y_lo, y_hi) = (c.from.1.min(c.to.1), c.from.1.max(c.to.1));
        Window {
            x0: x_lo.saturating_sub(margin),
            y0: y_lo.saturating_sub(margin),
            x1: (x_hi + margin).min(device.width - 1),
            y1: (y_hi + margin).min(device.height - 1),
        }
    }

    fn full(device: &Device) -> Window {
        Window {
            x0: 0,
            y0: 0,
            x1: device.width - 1,
            y1: device.height - 1,
        }
    }

    fn contains(&self, x: u32, y: u32) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }
}

/// Reusable search state shared by every A* invocation of a [`route`] call
/// (and across calls via [`route_with_arena`]).
///
/// `dist`/`prev` entries are valid only where `stamp` equals the current
/// generation, so starting a new search is a counter bump, not an O(tiles)
/// clear. The bucket queue keeps its per-bucket allocations between
/// searches; only the buckets actually touched are cleared.
#[derive(Debug, Default)]
pub struct RouterArena {
    dist: Vec<u64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    buckets: Vec<Vec<u32>>,
    touched: Vec<u32>,
    cursor: usize,
}

impl RouterArena {
    /// An empty arena; arrays grow on first use and are then reused.
    pub fn new() -> RouterArena {
        RouterArena::default()
    }

    /// Start a new search over `tiles` nodes.
    fn begin(&mut self, tiles: usize) {
        if self.dist.len() < tiles {
            self.dist.resize(tiles, 0);
            self.prev.resize(tiles, u32::MAX);
            self.stamp.resize(tiles, 0);
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        for b in self.touched.drain(..) {
            self.buckets[b as usize].clear();
        }
        self.cursor = 0;
    }

    fn is_fresh(&self, tile: usize) -> bool {
        self.stamp[tile] == self.generation
    }

    fn g(&self, tile: usize) -> u64 {
        self.dist[tile]
    }

    fn set(&mut self, tile: usize, g: u64, prev: u32) {
        self.dist[tile] = g;
        self.prev[tile] = prev;
        self.stamp[tile] = self.generation;
    }

    /// Push `tile` with priority key `key` (monotone: keys never drop
    /// below the last popped key, which the consistent heuristic
    /// guarantees).
    fn push(&mut self, key: u64, tile: u32) {
        let key = key as usize;
        if key >= self.buckets.len() {
            self.buckets.resize_with(key + 1, Vec::new);
        }
        if self.buckets[key].is_empty() {
            self.touched.push(key as u32);
        }
        self.buckets[key].push(tile);
    }

    /// Pop the smallest-key entry, scanning forward from the cursor.
    fn pop(&mut self) -> Option<(u64, u32)> {
        while self.cursor < self.buckets.len() {
            if let Some(tile) = self.buckets[self.cursor].pop() {
                return Some((self.cursor as u64, tile));
            }
            self.cursor += 1;
        }
        None
    }
}

/// Windowed A* with bounded window expansion. `prev_overflow` is the
/// overflow of the path just ripped up: the in-window result is accepted
/// when it is overflow-free **or strictly improves on it** (a wider
/// search could help more, but history negotiation across passes is far
/// cheaper than re-searching). Only when the window failed to improve the
/// connection does the margin grow (×4), at most
/// [`RouterOptions::window_growth_limit`] times.
fn maze_route_windowed(
    c: &Conn,
    grid: &Grid,
    device: &Device,
    opts: &RouterOptions,
    prev_overflow: f64,
    arena: &mut RouterArena,
    stats: &mut RouteStats,
) -> Option<Path> {
    let full = Window::full(device);
    let mut margin = opts.window_margin.max(1);
    let mut growths = 0;
    loop {
        let win = Window::around(c, margin, device);
        let found = maze_route_astar(c, grid, device, &win, arena, opts.history_weight, stats);
        let done = match &found {
            Some(p) => {
                let over = grid.path_overflow(p);
                win == full || growths >= opts.window_growth_limit || over < prev_overflow
            }
            None => win == full,
        };
        if done {
            return found;
        }
        stats.window_expansions += 1;
        growths += 1;
        margin = margin.saturating_mul(4);
    }
}

/// Congestion-aware maze routing: A* over the tile grid inside `win`,
/// using the quantized edge costs of [`Grid::step_cost_q`].
///
/// Contract: coincident endpoints return an explicit **empty path** (a
/// single corner point, length 0) — never `None`. `None` means the goal
/// was not reachable inside the window, which cannot happen when `win`
/// contains both endpoints (the grid is fully connected) but is kept for
/// defensive callers.
fn maze_route_astar(
    c: &Conn,
    grid: &Grid,
    device: &Device,
    win: &Window,
    arena: &mut RouterArena,
    history_weight: f64,
    stats: &mut RouteStats,
) -> Option<Path> {
    if c.from == c.to {
        return Some(Path {
            points: vec![c.from],
        });
    }
    let w = device.width as usize;
    let h = device.height as usize;
    let start = (c.from.1 as usize) * w + c.from.0 as usize;
    let goal = (c.to.1 as usize) * w + c.to.0 as usize;
    arena.begin(w * h);

    // Admissible, consistent heuristic: Manhattan distance × cheapest
    // possible edge (every edge costs at least MIN_STEP_Q).
    let heur = |tile: usize| -> u64 {
        let x = (tile % w) as u32;
        let y = (tile / w) as u32;
        (x.abs_diff(c.to.0) + y.abs_diff(c.to.1)) as u64 * MIN_STEP_Q
    };
    // Bucket keys are offset by f(start) so the queue starts at 0.
    let f0 = heur(start);

    arena.set(start, 0, u32::MAX);
    arena.push(0, start as u32);
    stats.heap_pushes += 1;
    let mut found = false;
    while let Some((key, tile)) = arena.pop() {
        let tile = tile as usize;
        let f = arena.g(tile) + heur(tile) - f0;
        if f != key {
            continue; // stale entry superseded by a cheaper path
        }
        stats.expanded_nodes += 1;
        if tile == goal {
            found = true;
            break;
        }
        let g = arena.g(tile);
        let x = tile % w;
        let y = tile / w;
        // Track usage is accounted on the tile being left, matching
        // `Grid::for_each_step` (min of the two tiles of a step).
        let neighbors = [
            (x > 0, tile.wrapping_sub(1), true),
            (x + 1 < w, tile + 1, true),
            (y > 0, tile.wrapping_sub(w), false),
            (y + 1 < h, tile + w, false),
        ];
        for (ok, next, horiz) in neighbors {
            if !ok {
                continue;
            }
            let nx = (next % w) as u32;
            let ny = (next / w) as u32;
            if !win.contains(nx, ny) {
                continue;
            }
            let ng = g + grid.step_cost_q(tile.min(next), horiz, c.width, history_weight);
            if !arena.is_fresh(next) || ng < arena.g(next) {
                arena.set(next, ng, tile as u32);
                arena.push(ng + heur(next) - f0, next as u32);
                stats.heap_pushes += 1;
            }
        }
    }
    if !found {
        return None;
    }
    Some(reconstruct(arena, start, goal, w))
}

/// The pre-change maze kernel: full-grid Dijkstra on a binary heap with
/// per-connection array allocation. Shares the quantized cost model with
/// the A* kernel so both return paths of identical total cost.
///
/// Same zero-length contract as [`maze_route_astar`]: coincident endpoints
/// yield an explicit empty path, never `None`.
fn maze_route_dijkstra(
    c: &Conn,
    grid: &Grid,
    device: &Device,
    history_weight: f64,
    stats: &mut RouteStats,
) -> Option<Path> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if c.from == c.to {
        return Some(Path {
            points: vec![c.from],
        });
    }
    let w = device.width as usize;
    let h = device.height as usize;
    let n = w * h;
    let start = (c.from.1 as usize) * w + c.from.0 as usize;
    let goal = (c.to.1 as usize) * w + c.to.0 as usize;

    let mut dist = vec![u64::MAX; n];
    let mut prev = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    dist[start] = 0;
    heap.push(Reverse((0, start)));
    stats.heap_pushes += 1;
    let mut found = false;
    while let Some(Reverse((cost, tile))) = heap.pop() {
        if cost > dist[tile] {
            continue;
        }
        stats.expanded_nodes += 1;
        if tile == goal {
            found = true;
            break;
        }
        let x = tile % w;
        let y = tile / w;
        let neighbors = [
            (x > 0, tile.wrapping_sub(1), true),
            (x + 1 < w, tile + 1, true),
            (y > 0, tile.wrapping_sub(w), false),
            (y + 1 < h, tile + w, false),
        ];
        for (ok, next, horiz) in neighbors {
            if !ok {
                continue;
            }
            let nd = cost + grid.step_cost_q(tile.min(next), horiz, c.width, history_weight);
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = tile as u32;
                heap.push(Reverse((nd, next)));
                stats.heap_pushes += 1;
            }
        }
    }
    if !found {
        return None;
    }

    // Reuse the shared reconstruction via a throwaway arena view.
    let mut chain = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = prev[cur] as usize;
        chain.push(cur);
    }
    chain.reverse();
    Some(compress_chain(&chain, w))
}

/// Walk `prev` links in the arena back from `goal`, then compress the tile
/// chain into corner points.
fn reconstruct(arena: &RouterArena, start: usize, goal: usize, w: usize) -> Path {
    let mut chain = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = arena.prev[cur] as usize;
        chain.push(cur);
    }
    chain.reverse();
    compress_chain(&chain, w)
}

/// Compress a chain of adjacent tiles into a corner-point [`Path`].
fn compress_chain(chain: &[usize], w: usize) -> Path {
    let to_xy = |t: usize| ((t % w) as u32, (t / w) as u32);
    let mut points = vec![to_xy(chain[0])];
    for win in chain.windows(3) {
        let (ax, ay) = to_xy(win[0]);
        let (bx, by) = to_xy(win[1]);
        let (cx, cy) = to_xy(win[2]);
        let dir1 = (bx != ax, by != ay);
        let dir2 = (cx != bx, cy != by);
        if dir1 != dir2 {
            points.push((bx, by));
        }
    }
    points.push(to_xy(*chain.last().unwrap()));
    Path { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerOptions};
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};
    use proptest::prelude::*;

    fn route_src(src: &str) -> (RtlDesign, RouteResult, Device) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, &PlacerOptions::fast());
        let r = route(&d.rtl, &p, &device, &RouterOptions::default());
        (d.rtl, r, device)
    }

    #[test]
    fn usage_is_nonzero_for_real_designs() {
        let (_, r, _) = route_src(
            "int32 f(int32 a[32], int32 k) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        );
        let total_h: u64 = r.h_usage.iter().map(|&u| u as u64).sum();
        let total_v: u64 = r.v_usage.iter().map(|&u| u as u64).sum();
        assert!(total_h + total_v > 0);
        assert!(!r.conns.is_empty());
    }

    #[test]
    fn connection_lengths_are_manhattan_or_longer() {
        let (_, r, _) = route_src("int32 f(int32 x, int32 y) { return x * y + x - y; }");
        for c in &r.conns {
            // Paths are rectilinear, so length >= 1 for distinct endpoints.
            assert!(c.len >= 1);
        }
    }

    fn congested_design() -> (RtlDesign, Placement, Device) {
        let m = compile(
            "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        )
        .unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, &PlacerOptions::fast());
        (d.rtl, p, device)
    }

    #[test]
    fn refinement_does_not_increase_overflow() {
        let (rtl, p, device) = congested_design();
        let r0 = route(
            &rtl,
            &p,
            &device,
            &RouterOptions {
                refine_passes: 0,
                ..Default::default()
            },
        );
        let r2 = route(
            &rtl,
            &p,
            &device,
            &RouterOptions {
                refine_passes: 2,
                ..Default::default()
            },
        );
        let over = |r: &RouteResult| -> f64 { r.conns.iter().map(|c| c.overflow).sum() };
        assert!(
            over(&r2) <= over(&r0) * 1.2 + 1.0,
            "refinement should not blow up overflow: {} vs {}",
            over(&r2),
            over(&r0)
        );
    }

    #[test]
    fn maze_routing_relieves_overflow_at_least_as_well() {
        let (rtl, p, device) = congested_design();
        let plain = route(&rtl, &p, &device, &RouterOptions::default());
        let maze = route(&rtl, &p, &device, &RouterOptions::with_maze(2));
        let over = |r: &RouteResult| -> f64 { r.conns.iter().map(|c| c.overflow).sum() };
        assert!(
            over(&maze) <= over(&plain) * 1.05 + 1.0,
            "maze should not be worse: {} vs {}",
            over(&maze),
            over(&plain)
        );
    }

    #[test]
    fn astar_maze_is_no_worse_than_reference_and_cheaper_to_search() {
        let (rtl, p, device) = congested_design();
        let astar = route(&rtl, &p, &device, &RouterOptions::with_maze(2));
        let refr = route(&rtl, &p, &device, &RouterOptions::with_reference_maze(2));
        let over_tiles = |r: &RouteResult| {
            crate::congestion::CongestionMap::from_route(r, &device).tiles_over(100.0)
        };
        assert!(
            over_tiles(&astar) <= over_tiles(&refr),
            "A* must relieve at least as many tiles: {} vs {}",
            over_tiles(&astar),
            over_tiles(&refr)
        );
        assert!(
            astar.stats.expanded_nodes < refr.stats.expanded_nodes,
            "windowed A* must expand fewer nodes: {} vs {}",
            astar.stats.expanded_nodes,
            refr.stats.expanded_nodes
        );
    }

    #[test]
    fn stats_are_populated_only_when_work_happens() {
        let (_, r, _) = route_src("int32 f(int32 x, int32 y) { return x * y + x - y; }");
        // Tiny design: no overflow, so refinement exits early.
        assert_eq!(r.stats.passes_run, 0);
        assert_eq!(r.stats.rerouted_conns, 0);
        assert_eq!(r.stats.expanded_nodes, 0);

        let (rtl, p, device) = congested_design();
        let r = route(&rtl, &p, &device, &RouterOptions::with_maze(2));
        assert!(r.stats.passes_run >= 1);
        assert!(r.stats.rerouted_conns > 0);
        assert!(r.stats.expanded_nodes > 0);
        assert!(r.stats.heap_pushes >= r.stats.expanded_nodes);
    }

    fn test_grid(w: u32, h: u32, cap: u32) -> Grid {
        Grid::new((w * h) as usize, w, cap, cap)
    }

    #[test]
    fn maze_route_finds_a_path_between_distinct_points() {
        let device = Device::tiny(8, 8);
        let grid = test_grid(8, 8, 10);
        let c = Conn {
            net: 0,
            from: (1, 1),
            to: (6, 5),
            width: 4,
        };
        let mut arena = RouterArena::new();
        let mut stats = RouteStats::default();
        let path = maze_route_astar(
            &c,
            &grid,
            &device,
            &Window::full(&device),
            &mut arena,
            1.0,
            &mut stats,
        )
        .expect("path exists");
        assert_eq!(*path.points.first().unwrap(), (1, 1));
        assert_eq!(*path.points.last().unwrap(), (6, 5));
        // Manhattan-optimal in an empty grid.
        assert_eq!(path.len(), 5 + 4);
        assert!(stats.expanded_nodes > 0);
    }

    #[test]
    fn zero_length_connection_yields_explicit_empty_path() {
        let device = Device::tiny(8, 8);
        let grid = test_grid(8, 8, 10);
        let c = Conn {
            net: 0,
            from: (3, 3),
            to: (3, 3),
            width: 4,
        };
        let mut arena = RouterArena::new();
        let mut stats = RouteStats::default();
        for path in [
            maze_route_astar(
                &c,
                &grid,
                &device,
                &Window::full(&device),
                &mut arena,
                1.0,
                &mut stats,
            ),
            maze_route_dijkstra(&c, &grid, &device, 1.0, &mut stats),
        ] {
            let path = path.expect("empty path, not None");
            assert_eq!(path.len(), 0);
            assert_eq!(path.points, vec![(3, 3)]);
            // An empty path crosses no tile.
            let mut steps = 0;
            grid.for_each_step(&path, |_, _| steps += 1);
            assert_eq!(steps, 0);
        }
    }

    #[test]
    fn arena_generations_isolate_searches() {
        let device = Device::tiny(8, 8);
        let mut grid = test_grid(8, 8, 10);
        // Congest a column so the second search must detour.
        for y in 0..8 {
            grid.v_usage[(y * 8 + 4) as usize] = 40;
        }
        let mut arena = RouterArena::new();
        let mut stats = RouteStats::default();
        let c1 = Conn {
            net: 0,
            from: (0, 0),
            to: (7, 7),
            width: 1,
        };
        let c2 = Conn {
            net: 1,
            from: (7, 0),
            to: (0, 7),
            width: 1,
        };
        let full = Window::full(&device);
        let p1a = maze_route_astar(&c1, &grid, &device, &full, &mut arena, 1.0, &mut stats)
            .unwrap()
            .points;
        let _ = maze_route_astar(&c2, &grid, &device, &full, &mut arena, 1.0, &mut stats);
        let p1b = maze_route_astar(&c1, &grid, &device, &full, &mut arena, 1.0, &mut stats)
            .unwrap()
            .points;
        assert_eq!(p1a, p1b, "arena reuse must not leak state across searches");
    }

    #[test]
    fn path_len_computation() {
        let p = Path {
            points: vec![(0, 0), (5, 0), (5, 3)],
        };
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn grid_apply_roundtrip() {
        let mut g = test_grid(10, 10, 10);
        let p = Path {
            points: vec![(0, 0), (5, 0), (5, 5)],
        };
        g.apply(&p, 8, 1);
        assert!(g.h_usage.contains(&8));
        assert!(g.v_usage.contains(&8));
        g.apply(&p, 8, -1);
        assert!(g.h_usage.iter().all(|&u| u == 0));
        assert!(g.v_usage.iter().all(|&u| u == 0));
    }

    #[test]
    fn history_bump_targets_only_overflowed_tiles() {
        let mut g = test_grid(4, 4, 10);
        g.h_usage[3] = 11;
        g.v_usage[5] = 10; // at capacity, not over
        g.bump_history();
        assert_eq!(g.h_hist[3], 1);
        assert_eq!(g.v_hist[5], 0);
        assert!(g.any_overflow());
        // History raises the quantized cost of the hot tile.
        assert!(g.step_cost_q(3, true, 1, 1.0) > g.step_cost_q(2, true, 1, 1.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The A* kernel (full window) must return paths of exactly the
        /// same quantized cost as the reference Dijkstra kernel on random
        /// grids, usage maps, and history states.
        #[test]
        fn astar_cost_matches_reference_dijkstra(
            w in 4u32..13, h in 4u32..13,
            ax in 0u32..13, ay in 0u32..13, bx in 0u32..13, by in 0u32..13,
            width in 1u32..24,
            usage in prop::collection::vec(0u32..90, 338),
            hist in prop::collection::vec(0u32..4, 338),
        ) {
            let device = Device::tiny(w, h);
            let n = (w * h) as usize;
            let mut grid = test_grid(w, h, 30);
            grid.h_usage[..n].copy_from_slice(&usage[..n]);
            grid.v_usage[..n].copy_from_slice(&usage[n..(n + n)]);
            grid.h_hist[..n].copy_from_slice(&hist[..n]);
            grid.v_hist[..n].copy_from_slice(&hist[n..(n + n)]);
            let c = Conn {
                net: 0,
                from: (ax % w, ay % h),
                to: (bx % w, by % h),
                width,
            };
            let mut arena = RouterArena::new();
            let mut stats = RouteStats::default();
            let astar = maze_route_astar(
                &c, &grid, &device, &Window::full(&device), &mut arena, 1.0, &mut stats,
            ).expect("A* finds a path on a connected grid");
            let dij = maze_route_dijkstra(&c, &grid, &device, 1.0, &mut stats)
                .expect("Dijkstra finds a path on a connected grid");
            let ca = grid.path_cost_q(&astar, c.width, 1.0);
            let cd = grid.path_cost_q(&dij, c.width, 1.0);
            prop_assert_eq!(ca, cd, "A* path cost must equal Dijkstra's");
            prop_assert_eq!(*astar.points.first().unwrap(), c.from);
            prop_assert_eq!(*astar.points.last().unwrap(), c.to);
        }

        /// Windowed A* (small margin) never beats the unwindowed optimum,
        /// and both stay optimal when the window covers the whole grid.
        #[test]
        fn windowed_search_cost_is_bounded_below_by_optimum(
            w in 6u32..13, h in 6u32..13,
            usage in prop::collection::vec(0u32..60, 338),
        ) {
            let device = Device::tiny(w, h);
            let n = (w * h) as usize;
            let mut grid = test_grid(w, h, 30);
            grid.h_usage[..n].copy_from_slice(&usage[..n]);
            grid.v_usage[..n].copy_from_slice(&usage[n..(n + n)]);
            let c = Conn { net: 0, from: (1, 1), to: (w - 2, h - 2), width: 4 };
            let mut arena = RouterArena::new();
            let mut stats = RouteStats::default();
            let small = Window::around(&c, 1, &device);
            let windowed = maze_route_astar(&c, &grid, &device, &small, &mut arena, 1.0, &mut stats)
                .expect("window contains both endpoints");
            let optimal = maze_route_astar(
                &c, &grid, &device, &Window::full(&device), &mut arena, 1.0, &mut stats,
            ).unwrap();
            prop_assert!(
                grid.path_cost_q(&windowed, c.width, 1.0) >= grid.path_cost_q(&optimal, c.width, 1.0)
            );
        }
    }
}
