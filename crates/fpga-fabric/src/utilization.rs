//! Vivado-style post-implementation utilization report.

use crate::device::Device;
use hls_synth::{Resources, RtlDesign};
use std::fmt;

/// Used / available / percent for one resource type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationRow {
    /// Resource name (LUT/FF/DSP/BRAM).
    pub name: &'static str,
    /// Units used by the design.
    pub used: u32,
    /// Units available on the device.
    pub available: u32,
}

impl UtilizationRow {
    /// Percent utilization (0 when the device has none of this resource).
    pub fn percent(&self) -> f64 {
        if self.available == 0 {
            0.0
        } else {
            self.used as f64 / self.available as f64 * 100.0
        }
    }
}

/// A per-resource utilization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// One row per resource type, in [`Resources::NAMES`] order.
    pub rows: Vec<UtilizationRow>,
}

impl UtilizationReport {
    /// Build the report for a netlist on a device.
    pub fn new(rtl: &RtlDesign, device: &Device) -> UtilizationReport {
        let used = rtl.total_resources();
        let totals = device.totals();
        let avail = [totals.luts, totals.ffs, totals.dsps, totals.brams];
        let rows = Resources::NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| UtilizationRow {
                name,
                used: used.get(i),
                available: avail[i],
            })
            .collect();
        UtilizationReport { rows }
    }

    /// True when any resource type is oversubscribed.
    pub fn over_capacity(&self) -> bool {
        self.rows.iter().any(|r| r.used > r.available)
    }

    /// The most utilized resource type.
    pub fn bottleneck(&self) -> &UtilizationRow {
        self.rows
            .iter()
            .max_by(|a, b| a.percent().partial_cmp(&b.percent()).unwrap())
            .expect("report always has four rows")
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>10} {:>12} {:>8}",
            "Site", "Used", "Available", "Util%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>10} {:>12} {:>7.2}%",
                r.name,
                r.used,
                r.available,
                r.percent()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn report(src: &str) -> UtilizationReport {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        UtilizationReport::new(&d.rtl, &Device::xc7z020())
    }

    #[test]
    fn small_design_fits_easily() {
        let r = report("int32 f(int32 x) { return x + 1; }");
        assert!(!r.over_capacity());
        assert!(r.bottleneck().percent() < 5.0);
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn dsp_design_moves_the_bottleneck() {
        let r = report(
            "int64 f(int64 a[16], int64 k) { int64 s = 0;\n#pragma HLS array_partition variable=a complete\n#pragma HLS unroll\nfor (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        );
        assert_eq!(r.bottleneck().name, "DSP", "wide parallel muls dominate");
    }

    #[test]
    fn display_renders_all_rows() {
        let r = report("int32 f(int32 x) { return x * x; }");
        let text = r.to_string();
        for name in ["LUT", "FF", "DSP", "BRAM"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
