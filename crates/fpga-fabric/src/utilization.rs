//! Vivado-style post-implementation utilization report.

use crate::device::Device;
use crate::route::RouteResult;
use hls_synth::{Resources, RtlDesign};
use std::fmt;

/// Used / available / percent for one resource type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationRow {
    /// Resource name (LUT/FF/DSP/BRAM).
    pub name: &'static str,
    /// Units used by the design.
    pub used: u32,
    /// Units available on the device.
    pub available: u32,
}

impl UtilizationRow {
    /// Percent utilization (0 when the device has none of this resource).
    pub fn percent(&self) -> f64 {
        if self.available == 0 {
            0.0
        } else {
            self.used as f64 / self.available as f64 * 100.0
        }
    }
}

/// A per-resource utilization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// One row per resource type, in [`Resources::NAMES`] order.
    pub rows: Vec<UtilizationRow>,
}

impl UtilizationReport {
    /// Build the report for a netlist on a device.
    pub fn new(rtl: &RtlDesign, device: &Device) -> UtilizationReport {
        let used = rtl.total_resources();
        let totals = device.totals();
        let avail = [totals.luts, totals.ffs, totals.dsps, totals.brams];
        let rows = Resources::NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| UtilizationRow {
                name,
                used: used.get(i),
                available: avail[i],
            })
            .collect();
        UtilizationReport { rows }
    }

    /// True when any resource type is oversubscribed.
    pub fn over_capacity(&self) -> bool {
        self.rows.iter().any(|r| r.used > r.available)
    }

    /// The most utilized resource type.
    pub fn bottleneck(&self) -> &UtilizationRow {
        self.rows
            .iter()
            .max_by(|a, b| a.percent().partial_cmp(&b.percent()).unwrap())
            .expect("report always has four rows")
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>10} {:>12} {:>8}",
            "Site", "Used", "Available", "Util%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>10} {:>12} {:>7.2}%",
                r.name,
                r.used,
                r.available,
                r.percent()
            )?;
        }
        Ok(())
    }
}

/// Post-route summary of routing-track consumption, one row per
/// direction — the wiring counterpart of [`UtilizationReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingUtilization {
    /// Peak horizontal track utilization (%).
    pub h_peak: f64,
    /// Mean horizontal track utilization over used tiles (%).
    pub h_mean: f64,
    /// Peak vertical track utilization (%).
    pub v_peak: f64,
    /// Mean vertical track utilization over used tiles (%).
    pub v_mean: f64,
    /// Tiles over 100 % in either direction.
    pub overflowed_tiles: usize,
}

impl RoutingUtilization {
    /// Summarize a route against the device's track capacities.
    pub fn new(route: &RouteResult, device: &Device) -> RoutingUtilization {
        let dir = |usage: &[u32], cap: u32| -> (f64, f64) {
            let peak = usage.iter().copied().max().unwrap_or(0) as f64 / cap as f64 * 100.0;
            let used: Vec<f64> = usage
                .iter()
                .filter(|&&u| u > 0)
                .map(|&u| u as f64 / cap as f64 * 100.0)
                .collect();
            let mean = if used.is_empty() {
                0.0
            } else {
                used.iter().sum::<f64>() / used.len() as f64
            };
            (peak, mean)
        };
        let (h_peak, h_mean) = dir(&route.h_usage, device.h_tracks);
        let (v_peak, v_mean) = dir(&route.v_usage, device.v_tracks);
        let overflowed_tiles = (0..route.h_usage.len())
            .filter(|&i| route.h_usage[i] > device.h_tracks || route.v_usage[i] > device.v_tracks)
            .count();
        RoutingUtilization {
            h_peak,
            h_mean,
            v_peak,
            v_mean,
            overflowed_tiles,
        }
    }
}

impl fmt::Display for RoutingUtilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<6} {:>9} {:>9}", "Tracks", "Peak%", "Mean%")?;
        writeln!(f, "{:<6} {:>8.2}% {:>8.2}%", "H", self.h_peak, self.h_mean)?;
        writeln!(f, "{:<6} {:>8.2}% {:>8.2}%", "V", self.v_peak, self.v_mean)?;
        writeln!(f, "tiles over 100%: {}", self.overflowed_tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn report(src: &str) -> UtilizationReport {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        UtilizationReport::new(&d.rtl, &Device::xc7z020())
    }

    #[test]
    fn small_design_fits_easily() {
        let r = report("int32 f(int32 x) { return x + 1; }");
        assert!(!r.over_capacity());
        assert!(r.bottleneck().percent() < 5.0);
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn dsp_design_moves_the_bottleneck() {
        let r = report(
            "int64 f(int64 a[16], int64 k) { int64 s = 0;\n#pragma HLS array_partition variable=a complete\n#pragma HLS unroll\nfor (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        );
        assert_eq!(r.bottleneck().name, "DSP", "wide parallel muls dominate");
    }

    #[test]
    fn display_renders_all_rows() {
        let r = report("int32 f(int32 x) { return x * x; }");
        let text = r.to_string();
        for name in ["LUT", "FF", "DSP", "BRAM"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn routing_utilization_summarizes_usage() {
        use crate::route::RouteResult;
        let device = Device::tiny(4, 4);
        let mut h_usage = vec![0u32; 16];
        let mut v_usage = vec![0u32; 16];
        h_usage[0] = 30; // 50% of 60 tracks
        h_usage[1] = 90; // 150% — overflowed
        v_usage[5] = 60; // 100%, at capacity but not over
        let r = RouteResult {
            h_usage,
            v_usage,
            conns: vec![],
            width: 4,
            height: 4,
            stats: Default::default(),
            pass_overflow: vec![],
        };
        let u = RoutingUtilization::new(&r, &device);
        assert!((u.h_peak - 150.0).abs() < 1e-9);
        assert!((u.h_mean - 100.0).abs() < 1e-9);
        assert!((u.v_peak - 100.0).abs() < 1e-9);
        assert_eq!(u.overflowed_tiles, 1);
        let text = u.to_string();
        assert!(text.contains("tiles over 100%: 1"), "{text}");
    }
}
