//! Per-tile routing congestion maps.
//!
//! The congestion level of a tile is the percentage of its routing tracks in
//! use; "a value over 100 % means … the router has to divert routes around
//! that area" (paper §II). Both directions are tracked separately, exactly
//! like the Vivado report the paper back-traces.

use crate::device::Device;
use crate::route::RouteResult;
use std::fmt::Write;

/// Vertical + horizontal congestion per tile, in percent.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    /// Grid width (tiles).
    pub width: u32,
    /// Grid height (tiles).
    pub height: u32,
    /// Vertical congestion (%) per tile, row-major.
    pub vertical: Vec<f64>,
    /// Horizontal congestion (%) per tile, row-major.
    pub horizontal: Vec<f64>,
}

impl CongestionMap {
    /// Build the map from router usage and device capacities.
    pub fn from_route(r: &RouteResult, device: &Device) -> CongestionMap {
        let vertical = r
            .v_usage
            .iter()
            .map(|&u| u as f64 / device.v_tracks as f64 * 100.0)
            .collect();
        let horizontal = r
            .h_usage
            .iter()
            .map(|&u| u as f64 / device.h_tracks as f64 * 100.0)
            .collect();
        CongestionMap {
            width: r.width,
            height: r.height,
            vertical,
            horizontal,
        }
    }

    /// Linear index of `(x, y)`.
    pub fn idx(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }

    /// Vertical congestion at `(x, y)`.
    pub fn v_at(&self, x: u32, y: u32) -> f64 {
        self.vertical[self.idx(x, y)]
    }

    /// Horizontal congestion at `(x, y)`.
    pub fn h_at(&self, x: u32, y: u32) -> f64 {
        self.horizontal[self.idx(x, y)]
    }

    /// Mean of the two directions at `(x, y)` (the paper's "Avg (V, H)").
    pub fn avg_at(&self, x: u32, y: u32) -> f64 {
        (self.v_at(x, y) + self.h_at(x, y)) / 2.0
    }

    /// Maximum vertical congestion on the device.
    pub fn max_vertical(&self) -> f64 {
        self.vertical.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum horizontal congestion on the device.
    pub fn max_horizontal(&self) -> f64 {
        self.horizontal.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum congestion in either direction (Table I's "Max Congestion").
    pub fn max_any(&self) -> f64 {
        self.max_vertical().max(self.max_horizontal())
    }

    /// Mean vertical congestion over tiles with any usage.
    pub fn mean_vertical(&self) -> f64 {
        mean_nonzero(&self.vertical)
    }

    /// Mean horizontal congestion over tiles with any usage.
    pub fn mean_horizontal(&self) -> f64 {
        mean_nonzero(&self.horizontal)
    }

    /// Number of tiles whose congestion exceeds `threshold` percent in
    /// either direction (Table VI's "#Congested CLBs (> 100 %)").
    pub fn tiles_over(&self, threshold: f64) -> usize {
        (0..self.vertical.len())
            .filter(|&i| self.vertical[i] > threshold || self.horizontal[i] > threshold)
            .count()
    }

    /// Per-row mean of a direction (`vertical == true` for V) — the spatial
    /// profile of Fig. 5.
    pub fn row_profile(&self, vertical: bool) -> Vec<f64> {
        let data = if vertical {
            &self.vertical
        } else {
            &self.horizontal
        };
        (0..self.height)
            .map(|y| {
                let row = &data[self.idx(0, y)..self.idx(0, y) + self.width as usize];
                row.iter().sum::<f64>() / self.width as f64
            })
            .collect()
    }

    /// ASCII heat map (rows top to bottom), one glyph per tile:
    /// `.` < 25 %, `-` < 50 %, `+` < 75 %, `*` < 100 %, `#` ≥ 100 %.
    pub fn render(&self, vertical: bool) -> String {
        let data = if vertical {
            &self.vertical
        } else {
            &self.horizontal
        };
        let mut out = String::new();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let v = data[self.idx(x, y)];
                let c = if v >= 100.0 {
                    '#'
                } else if v >= 75.0 {
                    '*'
                } else if v >= 50.0 {
                    '+'
                } else if v >= 25.0 {
                    '-'
                } else {
                    '.'
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }

    /// CSV dump (x, y, vertical, horizontal).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,vertical,horizontal\n");
        for y in 0..self.height {
            for x in 0..self.width {
                let _ = writeln!(
                    out,
                    "{},{},{:.2},{:.2}",
                    x,
                    y,
                    self.v_at(x, y),
                    self.h_at(x, y)
                );
            }
        }
        out
    }
}

fn mean_nonzero(data: &[f64]) -> f64 {
    let used: Vec<f64> = data.iter().copied().filter(|&v| v > 0.0).collect();
    if used.is_empty() {
        0.0
    } else {
        used.iter().sum::<f64>() / used.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_3x3(v: Vec<f64>, h: Vec<f64>) -> CongestionMap {
        CongestionMap {
            width: 3,
            height: 3,
            vertical: v,
            horizontal: h,
        }
    }

    #[test]
    fn stats_computed() {
        let m = map_3x3(
            vec![0.0, 50.0, 120.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0; 9],
        );
        assert_eq!(m.max_vertical(), 120.0);
        assert_eq!(m.max_any(), 120.0);
        assert_eq!(m.tiles_over(100.0), 1);
        assert!((m.mean_vertical() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn either_direction_counts_for_over() {
        let m = map_3x3(vec![0.0; 9], {
            let mut h = vec![0.0; 9];
            h[4] = 150.0;
            h
        });
        assert_eq!(m.tiles_over(100.0), 1);
    }

    #[test]
    fn row_profile_averages_rows() {
        let mut v = vec![0.0; 9];
        v[3] = 30.0; // (0,1)
        v[4] = 60.0; // (1,1)
        let m = map_3x3(v, vec![0.0; 9]);
        let prof = m.row_profile(true);
        assert_eq!(prof.len(), 3);
        assert!((prof[1] - 30.0).abs() < 1e-9);
        assert_eq!(prof[0], 0.0);
    }

    #[test]
    fn render_uses_expected_glyphs() {
        let m = map_3x3(
            vec![0.0, 30.0, 60.0, 80.0, 120.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0; 9],
        );
        let art = m.render(true);
        assert!(art.contains('#'));
        assert!(art.contains('-'));
        assert!(art.contains('+'));
        assert!(art.contains('*'));
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let m = map_3x3(vec![0.0; 9], vec![0.0; 9]);
        let csv = m.to_csv();
        assert!(csv.starts_with("x,y,vertical,horizontal"));
        assert_eq!(csv.lines().count(), 10);
    }
}
