//! # fpga-fabric
//!
//! A simulated FPGA implementation flow: a 7-series-like tile-grid device
//! model, simulated-annealing placement, a capacity-aware global router, the
//! per-CLB vertical/horizontal **routing congestion map** (the label source
//! of the paper's prediction model), and static timing (WNS / Fmax).
//!
//! This crate stands in for Vivado place-and-route in the reproduction of
//! *Zhao et al. (DATE 2019)*: the paper's congestion metrics "denote the
//! estimated utilization percentage of routing resources in the vertical and
//! horizontal directions of the tiles on FPGA", which is exactly what the
//! router here produces.
//!
//! ```
//! use hls_ir::frontend::compile;
//! use hls_synth::{HlsFlow, HlsOptions};
//! use fpga_fabric::{par::run_par, device::Device, par::ParOptions};
//!
//! let m = compile("int32 f(int32 x, int32 y) { return x * y + x; }")?;
//! let design = HlsFlow::new(HlsOptions::default()).run(&m)?;
//! let result = run_par(&design, &Device::xc7z020(), &ParOptions::fast());
//! assert!(result.congestion.max_vertical() >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod congestion;
pub mod device;
pub mod par;
pub mod place;
pub mod route;
pub mod timing;
pub mod utilization;

pub use congestion::CongestionMap;
pub use device::{ColumnKind, Device};
pub use par::{run_par, run_par_timed, ImplResult, ParOptions, ParStageTimings};
pub use place::{recompute_cost, PlaceKernel, PlaceStats, Placement, PlacerOptions};
pub use route::{MazeKernel, RouteStats, RouterArena, RouterOptions};
pub use timing::TimingResult;
pub use utilization::{RoutingUtilization, UtilizationReport};
